"""Color-space conversion and color quantization.

Implements the conversions the QBIC-era feature extractors rely on:

* RGB -> grayscale using the ITU-R BT.601 luma weights (the standard of the
  paper's period),
* RGB <-> HSV with hue stored as a fraction of a full turn in ``[0, 1)``,
* uniform quantizers that map continuous pixel values to small integer
  *color codes* used by histogram, correlogram and co-occurrence features.

All functions accept and return :class:`~repro.image.core.Image` values;
array-level helpers (suffixed ``_array``) are exposed for the extractors
that work on raw channels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.image.core import Image

__all__ = [
    "rgb_to_gray",
    "rgb_to_hsv",
    "hsv_to_rgb",
    "rgb_to_hsv_array",
    "hsv_to_rgb_array",
    "quantize_uniform",
    "quantize_gray",
    "quantize_rgb",
    "quantize_hsv",
]

#: ITU-R BT.601 luma weights for R, G, B.
LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


def rgb_to_gray(image: Image) -> Image:
    """Convert an RGB image to grayscale using BT.601 luma weights.

    Grayscale input is returned unchanged.
    """
    if image.is_gray:
        return image
    gray = image.pixels @ LUMA_WEIGHTS
    return Image(np.clip(gray, 0.0, 1.0))


def rgb_to_hsv_array(rgb: np.ndarray) -> np.ndarray:
    """Convert an ``(..., 3)`` RGB array in [0, 1] to HSV in [0, 1].

    Hue is a fraction of a full turn (0 = red, 1/3 = green, 2/3 = blue);
    saturation and value follow the standard hexcone model.  Achromatic
    pixels (max == min) get hue 0 and saturation 0.
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.shape[-1] != 3:
        raise ImageError(f"expected trailing dimension 3; got shape {rgb.shape}")
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    maxc = rgb.max(axis=-1)
    minc = rgb.min(axis=-1)
    delta = maxc - minc

    value = maxc
    saturation = np.where(maxc > 0.0, delta / np.where(maxc > 0.0, maxc, 1.0), 0.0)

    # Hue: piecewise by which channel attains the max.  Use a safe divisor
    # for achromatic pixels and zero their hue afterwards.
    safe = np.where(delta > 0.0, delta, 1.0)
    hue = np.zeros_like(maxc)
    is_r = (maxc == r) & (delta > 0.0)
    is_g = (maxc == g) & (delta > 0.0) & ~is_r
    is_b = (delta > 0.0) & ~is_r & ~is_g
    hue = np.where(is_r, ((g - b) / safe) % 6.0, hue)
    hue = np.where(is_g, (b - r) / safe + 2.0, hue)
    hue = np.where(is_b, (r - g) / safe + 4.0, hue)
    hue = hue / 6.0
    return np.stack([hue, saturation, value], axis=-1)


def hsv_to_rgb_array(hsv: np.ndarray) -> np.ndarray:
    """Convert an ``(..., 3)`` HSV array in [0, 1] back to RGB in [0, 1]."""
    hsv = np.asarray(hsv, dtype=np.float64)
    if hsv.shape[-1] != 3:
        raise ImageError(f"expected trailing dimension 3; got shape {hsv.shape}")
    h, s, v = hsv[..., 0], hsv[..., 1], hsv[..., 2]
    h6 = (h % 1.0) * 6.0
    sector = np.floor(h6).astype(int) % 6
    f = h6 - np.floor(h6)
    p = v * (1.0 - s)
    q = v * (1.0 - s * f)
    t = v * (1.0 - s * (1.0 - f))

    choices_r = [v, q, p, p, t, v]
    choices_g = [t, v, v, q, p, p]
    choices_b = [p, p, t, v, v, q]
    r = np.choose(sector, choices_r)
    g = np.choose(sector, choices_g)
    b = np.choose(sector, choices_b)
    return np.clip(np.stack([r, g, b], axis=-1), 0.0, 1.0)


def rgb_to_hsv(image: Image) -> Image:
    """Convert an RGB :class:`Image` to an HSV-encoded :class:`Image`.

    The result is still a 3-channel image whose channels hold H, S, V in
    [0, 1]; it is a numeric container, not a displayable picture.
    """
    if image.is_gray:
        raise ImageError("rgb_to_hsv requires an RGB image")
    return Image(rgb_to_hsv_array(image.pixels))


def hsv_to_rgb(image: Image) -> Image:
    """Inverse of :func:`rgb_to_hsv`."""
    if image.is_gray:
        raise ImageError("hsv_to_rgb requires a 3-channel image")
    return Image(hsv_to_rgb_array(image.pixels))


def quantize_uniform(values: np.ndarray, levels: int) -> np.ndarray:
    """Uniformly quantize values in [0, 1] into integer codes ``0..levels-1``.

    The unit interval is split into ``levels`` equal cells; the value 1.0
    falls in the top cell.
    """
    if levels < 1:
        raise ImageError(f"levels must be >= 1; got {levels}")
    values = np.asarray(values, dtype=np.float64)
    codes = np.floor(values * levels).astype(np.int64)
    return np.clip(codes, 0, levels - 1)


def quantize_gray(image: Image, levels: int) -> np.ndarray:
    """Quantize a (converted-to-)grayscale image to ``levels`` codes."""
    return quantize_uniform(image.to_gray().pixels, levels)


def quantize_rgb(image: Image, levels_per_channel: int) -> np.ndarray:
    """Quantize an RGB image into joint color codes.

    Each channel is uniformly quantized to ``levels_per_channel`` cells and
    the three codes are combined into a single integer in
    ``0 .. levels_per_channel**3 - 1`` (R most significant).  Grayscale
    input is broadcast to RGB first.
    """
    rgb = image.to_rgb().pixels
    q = quantize_uniform(rgb, levels_per_channel)
    base = levels_per_channel
    return q[..., 0] * base * base + q[..., 1] * base + q[..., 2]


def quantize_hsv(image: Image, bins: tuple[int, int, int] = (18, 3, 3)) -> np.ndarray:
    """Quantize an image in HSV space into joint codes.

    The default 18x3x3 grid (162 colors) follows the classic VisualSEEk /
    QBIC practice of allotting most resolution to hue.  Returns an integer
    array in ``0 .. h_bins*s_bins*v_bins - 1`` (hue most significant).
    """
    h_bins, s_bins, v_bins = bins
    if min(h_bins, s_bins, v_bins) < 1:
        raise ImageError(f"all bin counts must be >= 1; got {bins}")
    hsv = rgb_to_hsv_array(image.to_rgb().pixels)
    h = quantize_uniform(hsv[..., 0], h_bins)
    s = quantize_uniform(hsv[..., 1], s_bins)
    v = quantize_uniform(hsv[..., 2], v_bins)
    return (h * s_bins + s) * v_bins + v
