"""Netpbm codec: PGM (P2/P5) and PPM (P3/P6) read/write.

The reproduced system stores its image corpus on disk in the simplest
portable formats of its era.  This codec is self-contained (no PIL):

* ``P2``/``P3`` — ASCII grayscale / color,
* ``P5``/``P6`` — binary grayscale / color,
* maxval up to 65535 (two-byte big-endian samples, per the spec),
* ``#`` comments anywhere in the header.

Reading returns an :class:`~repro.image.core.Image`; writing accepts one.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import CodecError
from repro.image.core import Image

__all__ = ["read_ppm", "write_ppm", "read_ppm_bytes", "write_ppm_bytes"]

_ASCII_MAGICS = {b"P2": 1, b"P3": 3}
_BINARY_MAGICS = {b"P5": 1, b"P6": 3}


def _read_header_tokens(stream: io.BufferedIOBase, count: int) -> list[int]:
    """Read ``count`` whitespace-separated integer tokens, skipping comments."""
    tokens: list[int] = []
    current = b""
    while len(tokens) < count:
        byte = stream.read(1)
        if not byte:
            raise CodecError("unexpected end of file while reading netpbm header")
        if byte == b"#":
            while byte not in (b"\n", b""):
                byte = stream.read(1)
            continue
        if byte.isspace():
            if current:
                tokens.append(_parse_int(current))
                current = b""
            continue
        if not byte.isdigit():
            raise CodecError(f"invalid header byte {byte!r} in netpbm file")
        current += byte
    return tokens


def _parse_int(token: bytes) -> int:
    try:
        return int(token)
    except ValueError as exc:  # pragma: no cover - digits only reach here
        raise CodecError(f"invalid integer token {token!r} in netpbm header") from exc


def read_ppm_bytes(data: bytes) -> Image:
    """Decode a PGM/PPM byte string into an :class:`Image`."""
    stream = io.BytesIO(data)
    magic = stream.read(2)
    if magic in _ASCII_MAGICS:
        channels = _ASCII_MAGICS[magic]
        binary = False
    elif magic in _BINARY_MAGICS:
        channels = _BINARY_MAGICS[magic]
        binary = True
    else:
        raise CodecError(f"unsupported netpbm magic {magic!r} (expected P2/P3/P5/P6)")

    width, height, maxval = _read_header_tokens(stream, 3)
    if width <= 0 or height <= 0:
        raise CodecError(f"invalid netpbm dimensions {width}x{height}")
    if not 0 < maxval < 65536:
        raise CodecError(f"invalid netpbm maxval {maxval}")

    n_samples = width * height * channels
    if binary:
        dtype = np.dtype(">u2") if maxval > 255 else np.dtype("u1")
        raw = stream.read(n_samples * dtype.itemsize)
        if len(raw) < n_samples * dtype.itemsize:
            raise CodecError(
                f"truncated netpbm payload: expected {n_samples} samples, "
                f"got {len(raw) // dtype.itemsize}"
            )
        samples = np.frombuffer(raw, dtype=dtype, count=n_samples).astype(np.float64)
    else:
        text = stream.read().split()
        if len(text) < n_samples:
            raise CodecError(
                f"truncated ASCII netpbm payload: expected {n_samples} samples, got {len(text)}"
            )
        samples = np.array([_parse_int(token) for token in text[:n_samples]], dtype=np.float64)

    if samples.size and samples.max() > maxval:
        raise CodecError("netpbm sample exceeds declared maxval")
    samples /= float(maxval)
    if channels == 1:
        return Image(samples.reshape(height, width))
    return Image(samples.reshape(height, width, 3))


def read_ppm(path: str | Path) -> Image:
    """Read a PGM/PPM file from disk."""
    return read_ppm_bytes(Path(path).read_bytes())


def write_ppm_bytes(image: Image, *, binary: bool = True, maxval: int = 255) -> bytes:
    """Encode an :class:`Image` as PGM (gray) or PPM (rgb) bytes.

    Parameters
    ----------
    binary:
        Use the binary formats P5/P6 (default) or the ASCII formats P2/P3.
    maxval:
        Sample range; 255 (one byte) or up to 65535 (two bytes, binary only
        uses big-endian as the spec requires).
    """
    if not 0 < maxval < 65536:
        raise CodecError(f"invalid maxval {maxval}")
    gray = image.is_gray
    magic = (b"P5" if gray else b"P6") if binary else (b"P2" if gray else b"P3")
    header = b"%s\n%d %d\n%d\n" % (magic, image.width, image.height, maxval)
    samples = np.round(image.pixels * maxval).astype(np.int64)

    if binary:
        dtype = np.dtype(">u2") if maxval > 255 else np.dtype("u1")
        payload = samples.astype(dtype).tobytes()
    else:
        flat = samples.reshape(image.height, -1)
        lines = [b" ".join(b"%d" % v for v in row) for row in flat]
        payload = b"\n".join(lines) + b"\n"
    return header + payload


def write_ppm(
    image: Image, path: str | Path, *, binary: bool = True, maxval: int = 255
) -> None:
    """Write an :class:`Image` to disk as PGM/PPM."""
    Path(path).write_bytes(write_ppm_bytes(image, binary=binary, maxval=maxval))
