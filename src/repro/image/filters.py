"""Spatial filtering: convolution, Gaussian smoothing, Sobel gradients.

This module is the signal-processing substrate of the edge and shape
features.  The reproduced pipeline is the classic one:

1. smooth with a Gaussian (the paper uses the 3x3 binomial ``1/16 [[1,2,1],
   [2,4,2],[1,2,1]]`` mask, which is the separable binomial approximation of
   a Gaussian),
2. take Sobel derivatives in x and y,
3. combine them into gradient magnitude (edge strength) and orientation,
4. threshold the magnitude (globally, or adaptively with Otsu's method)
   into a binary edge map.

All filters operate on 2-D float arrays; RGB images are converted to
grayscale by the convenience wrappers.  Convolution uses reflected borders
so edge statistics near the image boundary stay unbiased.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.image.core import Image

__all__ = [
    "convolve2d",
    "convolve_separable",
    "gaussian_kernel1d",
    "gaussian_blur",
    "binomial_blur3",
    "SOBEL_X",
    "SOBEL_Y",
    "sobel_gradients",
    "gradient_magnitude",
    "gradient_orientation",
    "otsu_threshold",
    "edge_map",
]

#: Sobel kernel estimating the horizontal derivative (x = columns).
SOBEL_X = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])

#: Sobel kernel estimating the vertical derivative (y = rows).
SOBEL_Y = np.array([[1.0, 2.0, 1.0], [0.0, 0.0, 0.0], [-1.0, -2.0, -1.0]])

_PAD_MODES = ("reflect", "edge", "constant")


def _as_gray_array(image: Image | np.ndarray) -> np.ndarray:
    """Accept an Image (converted to gray) or a 2-D array."""
    if isinstance(image, Image):
        return image.to_gray().pixels
    array = np.asarray(image, dtype=np.float64)
    if array.ndim != 2:
        raise ImageError(f"expected a 2-D array; got shape {array.shape}")
    return array


def convolve2d(
    array: np.ndarray, kernel: np.ndarray, *, pad_mode: str = "reflect"
) -> np.ndarray:
    """2-D correlation-style convolution with 'same' output size.

    The kernel is applied as written (no flipping), matching the convention
    of the Sobel masks in the paper.  Borders are padded according to
    ``pad_mode`` (``'reflect'``, ``'edge'`` or ``'constant'`` zero padding).

    Raises
    ------
    ImageError
        If the kernel has even dimensions (no well-defined centre) or the
        pad mode is unknown.
    """
    array = np.asarray(array, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if array.ndim != 2 or kernel.ndim != 2:
        raise ImageError("convolve2d expects 2-D array and kernel")
    kh, kw = kernel.shape
    if kh % 2 == 0 or kw % 2 == 0:
        raise ImageError(f"kernel dimensions must be odd; got {kernel.shape}")
    if pad_mode not in _PAD_MODES:
        raise ImageError(f"unknown pad mode {pad_mode!r}; expected one of {_PAD_MODES}")

    pad_args = {"mode": pad_mode} if pad_mode != "constant" else {"mode": "constant", "constant_values": 0.0}
    padded = np.pad(array, ((kh // 2, kh // 2), (kw // 2, kw // 2)), **pad_args)
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kh, kw))
    return np.einsum("ijkl,kl->ij", windows, kernel)


def convolve_separable(
    array: np.ndarray,
    kernel_rows: np.ndarray,
    kernel_cols: np.ndarray,
    *,
    pad_mode: str = "reflect",
) -> np.ndarray:
    """Convolve with a separable kernel given as its row and column factors.

    Equivalent to ``convolve2d(array, outer(kernel_rows, kernel_cols))`` but
    in O(k) instead of O(k^2) work per pixel.
    """
    rows = np.asarray(kernel_rows, dtype=np.float64).reshape(-1, 1)
    cols = np.asarray(kernel_cols, dtype=np.float64).reshape(1, -1)
    return convolve2d(convolve2d(array, cols, pad_mode=pad_mode), rows, pad_mode=pad_mode)


def gaussian_kernel1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """Sampled, normalized 1-D Gaussian kernel.

    ``radius`` defaults to ``ceil(3 * sigma)``, capturing 99.7% of the mass.
    """
    if sigma <= 0.0:
        raise ImageError(f"sigma must be positive; got {sigma}")
    if radius is None:
        radius = int(np.ceil(3.0 * sigma))
    radius = max(radius, 1)
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-(xs * xs) / (2.0 * sigma * sigma))
    return kernel / kernel.sum()


def gaussian_blur(
    image: Image | np.ndarray, sigma: float, *, pad_mode: str = "reflect"
) -> np.ndarray:
    """Gaussian smoothing by separable convolution; returns a 2-D array."""
    array = _as_gray_array(image)
    kernel = gaussian_kernel1d(sigma)
    return convolve_separable(array, kernel, kernel, pad_mode=pad_mode)


def binomial_blur3(image: Image | np.ndarray) -> np.ndarray:
    """The paper's 3x3 ``1/16`` binomial smoothing mask (separable [1,2,1]/4)."""
    kernel = np.array([1.0, 2.0, 1.0]) / 4.0
    return convolve_separable(_as_gray_array(image), kernel, kernel)


def sobel_gradients(image: Image | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sobel derivative estimates ``(gx, gy)`` of a grayscale image."""
    array = _as_gray_array(image)
    return convolve2d(array, SOBEL_X), convolve2d(array, SOBEL_Y)


def gradient_magnitude(gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
    """Euclidean gradient magnitude ``sqrt(gx^2 + gy^2)``."""
    return np.hypot(np.asarray(gx, dtype=np.float64), np.asarray(gy, dtype=np.float64))


def gradient_orientation(gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
    """Edge orientation in ``[0, pi)``.

    Gradients pointing in opposite directions describe the same edge, so
    orientations are folded modulo pi.
    """
    theta = np.arctan2(np.asarray(gy, dtype=np.float64), np.asarray(gx, dtype=np.float64))
    return np.mod(theta, np.pi)


def otsu_threshold(values: np.ndarray, *, bins: int = 256) -> float:
    """Otsu's adaptive threshold over an array of non-negative values.

    Returns the threshold that maximizes between-class variance of the
    value histogram.  Used to binarize gradient magnitude into an edge map
    without a hand-tuned constant (the paper calls for an adaptive scheme).
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ImageError("cannot threshold an empty array")
    lo = float(values.min())
    hi = float(values.max())
    if hi <= lo:
        return lo
    hist, edges = np.histogram(values, bins=bins, range=(lo, hi))
    hist = hist.astype(np.float64)
    total = hist.sum()
    centers = (edges[:-1] + edges[1:]) / 2.0

    weight_bg = np.cumsum(hist)
    weight_fg = total - weight_bg
    cum_mass = np.cumsum(hist * centers)
    total_mass = cum_mass[-1]

    valid = (weight_bg > 0) & (weight_fg > 0)
    mean_bg = np.where(valid, cum_mass / np.where(weight_bg > 0, weight_bg, 1), 0.0)
    mean_fg = np.where(
        valid, (total_mass - cum_mass) / np.where(weight_fg > 0, weight_fg, 1), 0.0
    )
    between = weight_bg * weight_fg * (mean_bg - mean_fg) ** 2
    if not np.any(valid):
        return lo
    scores = np.where(valid, between, -1.0)
    best = scores.max()
    # For perfectly separated modes every threshold in the gap ties; take
    # the middle of the plateau rather than its first bin.
    plateau = centers[scores >= best * (1.0 - 1e-12)]
    return float(plateau.mean())


def edge_map(
    image: Image | np.ndarray,
    *,
    sigma: float = 1.0,
    threshold: float | None = None,
) -> np.ndarray:
    """Binary edge map: Gaussian smoothing, Sobel, magnitude threshold.

    Parameters
    ----------
    sigma:
        Gaussian pre-smoothing width; ``0`` skips smoothing.
    threshold:
        Magnitude cutoff.  ``None`` selects it adaptively with Otsu's
        method on the magnitude distribution.

    Returns
    -------
    numpy.ndarray
        Boolean array, True at edge pixels.
    """
    array = _as_gray_array(image)
    if sigma > 0.0:
        array = gaussian_blur(array, sigma)
    gx, gy = sobel_gradients(array)
    magnitude = gradient_magnitude(gx, gy)
    if threshold is None:
        threshold = otsu_threshold(magnitude)
    return magnitude > threshold
