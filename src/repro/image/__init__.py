"""Image substrate: value type, color ops, filtering, codecs, synthesis.

Everything in this subpackage is implemented on top of numpy only; it is the
foundation the feature extractors (:mod:`repro.features`) build on.

Public surface
--------------
:class:`~repro.image.core.Image`
    Immutable float64 image value type (grayscale or RGB, values in [0, 1]).
:mod:`~repro.image.color`
    Color-space conversion (RGB/gray/HSV) and color quantization.
:mod:`~repro.image.resize`
    Nearest-neighbour and bilinear resampling.
:mod:`~repro.image.filters`
    Convolution, Gaussian smoothing, Sobel gradients, thresholding.
:mod:`~repro.image.io_ppm` / :mod:`~repro.image.io_bmp`
    Self-contained PPM/PGM and 24-bit BMP codecs.
:mod:`~repro.image.synth`
    Synthetic image generators (gradients, checkerboards, stripes, scenes).
:mod:`~repro.image.transforms`
    Geometric and photometric transforms used by the invariance studies.
"""

from repro.image.core import Image
from repro.image.color import (
    hsv_to_rgb,
    quantize_gray,
    quantize_hsv,
    quantize_rgb,
    rgb_to_gray,
    rgb_to_hsv,
)
from repro.image.resize import resize
from repro.image.filters import (
    convolve2d,
    edge_map,
    gaussian_blur,
    gradient_magnitude,
    gradient_orientation,
    otsu_threshold,
    sobel_gradients,
)
from repro.image.io_ppm import read_ppm, write_ppm
from repro.image.io_bmp import read_bmp, write_bmp

__all__ = [
    "Image",
    "rgb_to_gray",
    "rgb_to_hsv",
    "hsv_to_rgb",
    "quantize_gray",
    "quantize_rgb",
    "quantize_hsv",
    "resize",
    "convolve2d",
    "gaussian_blur",
    "sobel_gradients",
    "gradient_magnitude",
    "gradient_orientation",
    "edge_map",
    "otsu_threshold",
    "read_ppm",
    "write_ppm",
    "read_bmp",
    "write_bmp",
]
