"""Synthetic image generation.

The 1994 evaluation ran over proprietary photo collections that no longer
exist; per the reproduction's substitution rule this module generates the
corpus instead.  It provides deterministic, seedable primitives —
gradients, checkerboards, oriented stripes, value noise, and simple shapes
composited onto backgrounds — from which :mod:`repro.eval.datasets` builds
labelled image classes with controllable intra-class variation.

All generators take explicit sizes and (where randomized) an explicit
``numpy.random.Generator``; nothing reads global random state.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ImageError
from repro.image.core import Image

__all__ = [
    "solid",
    "linear_gradient",
    "radial_gradient",
    "checkerboard",
    "stripes",
    "value_noise",
    "gaussian_noise_image",
    "draw_disk",
    "draw_rectangle",
    "draw_triangle",
    "compose_scene",
]

ColorLike = float | Sequence[float]


def _as_rgb(color: ColorLike) -> np.ndarray:
    """Normalize a scalar or 3-sequence into an RGB triple in [0, 1]."""
    rgb = np.asarray(color, dtype=np.float64)
    if rgb.ndim == 0:
        rgb = np.full(3, float(rgb))
    if rgb.shape != (3,):
        raise ImageError(f"color must be a scalar or 3-sequence; got shape {rgb.shape}")
    if rgb.min() < 0.0 or rgb.max() > 1.0:
        raise ImageError(f"color components must lie in [0, 1]; got {rgb}")
    return rgb


def _grid(width: int, height: int) -> tuple[np.ndarray, np.ndarray]:
    """Pixel-centre coordinate grids (xs, ys) of shape (H, W)."""
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    return xs, ys


def solid(width: int, height: int, color: ColorLike) -> Image:
    """A constant-color RGB image."""
    return Image.full(width, height, _as_rgb(color), mode="rgb")


def linear_gradient(
    width: int,
    height: int,
    start_color: ColorLike,
    end_color: ColorLike,
    *,
    angle: float = 0.0,
) -> Image:
    """RGB image interpolating from ``start_color`` to ``end_color``.

    ``angle`` (radians) gives the gradient direction: 0 runs left-to-right,
    ``pi/2`` top-to-bottom.
    """
    start = _as_rgb(start_color)
    end = _as_rgb(end_color)
    xs, ys = _grid(width, height)
    projection = xs * np.cos(angle) + ys * np.sin(angle)
    lo, hi = projection.min(), projection.max()
    t = np.zeros_like(projection) if hi == lo else (projection - lo) / (hi - lo)
    pixels = start[None, None, :] + t[:, :, None] * (end - start)[None, None, :]
    return Image(pixels)


def radial_gradient(
    width: int,
    height: int,
    center_color: ColorLike,
    edge_color: ColorLike,
    *,
    center: tuple[float, float] | None = None,
) -> Image:
    """RGB image shading radially from ``center_color`` to ``edge_color``."""
    inner = _as_rgb(center_color)
    outer = _as_rgb(edge_color)
    cx, cy = center if center is not None else ((width - 1) / 2.0, (height - 1) / 2.0)
    xs, ys = _grid(width, height)
    radius = np.hypot(xs - cx, ys - cy)
    max_radius = radius.max()
    t = radius / max_radius if max_radius > 0 else np.zeros_like(radius)
    pixels = inner[None, None, :] + t[:, :, None] * (outer - inner)[None, None, :]
    return Image(pixels)


def checkerboard(
    width: int,
    height: int,
    cell: int,
    color_a: ColorLike = 0.0,
    color_b: ColorLike = 1.0,
) -> Image:
    """A checkerboard with square cells of side ``cell`` pixels."""
    if cell <= 0:
        raise ImageError(f"cell size must be positive; got {cell}")
    a = _as_rgb(color_a)
    b = _as_rgb(color_b)
    xs, ys = _grid(width, height)
    parity = ((xs // cell) + (ys // cell)) % 2
    pixels = np.where(parity[:, :, None] == 0, a[None, None, :], b[None, None, :])
    return Image(pixels)


def stripes(
    width: int,
    height: int,
    period: float,
    *,
    angle: float = 0.0,
    color_a: ColorLike = 0.0,
    color_b: ColorLike = 1.0,
    duty: float = 0.5,
) -> Image:
    """Oriented square-wave stripes.

    Parameters
    ----------
    period:
        Stripe wavelength in pixels (one a-band plus one b-band).
    angle:
        Stripe normal direction in radians (0 = vertical stripes).
    duty:
        Fraction of each period painted in ``color_a``.
    """
    if period <= 0:
        raise ImageError(f"period must be positive; got {period}")
    if not 0.0 < duty < 1.0:
        raise ImageError(f"duty cycle must lie strictly inside (0, 1); got {duty}")
    a = _as_rgb(color_a)
    b = _as_rgb(color_b)
    xs, ys = _grid(width, height)
    phase = (xs * np.cos(angle) + ys * np.sin(angle)) / period % 1.0
    pixels = np.where(phase[:, :, None] < duty, a[None, None, :], b[None, None, :])
    return Image(pixels)


def value_noise(
    width: int,
    height: int,
    rng: np.random.Generator,
    *,
    scale: int = 8,
    channels: int = 1,
) -> Image:
    """Smooth 'value noise' texture: a coarse random grid bilinearly upsampled.

    ``scale`` controls the blob size; larger scales produce smoother,
    lower-frequency textures.  ``channels=3`` yields colored noise.
    """
    if scale <= 0:
        raise ImageError(f"scale must be positive; got {scale}")
    if channels not in (1, 3):
        raise ImageError(f"channels must be 1 or 3; got {channels}")
    coarse_w = max(2, width // scale + 1)
    coarse_h = max(2, height // scale + 1)
    from repro.image.resize import resize

    if channels == 1:
        coarse = Image(rng.random((coarse_h, coarse_w)))
    else:
        coarse = Image(rng.random((coarse_h, coarse_w, 3)))
    return resize(coarse, width, height, method="bilinear")


def gaussian_noise_image(
    width: int,
    height: int,
    rng: np.random.Generator,
    *,
    mean: float = 0.5,
    std: float = 0.15,
    channels: int = 1,
) -> Image:
    """White Gaussian noise, clipped to [0, 1]."""
    shape = (height, width) if channels == 1 else (height, width, 3)
    if channels not in (1, 3):
        raise ImageError(f"channels must be 1 or 3; got {channels}")
    return Image(np.clip(rng.normal(mean, std, shape), 0.0, 1.0))


def _blend_mask(base: np.ndarray, mask: np.ndarray, color: np.ndarray) -> np.ndarray:
    """Paint ``color`` where ``mask`` is True (returns a new array)."""
    out = base.copy()
    out[mask] = color
    return out


def draw_disk(
    image: Image, center: tuple[float, float], radius: float, color: ColorLike
) -> Image:
    """Return a copy of ``image`` with a filled disk painted on it."""
    if radius <= 0:
        raise ImageError(f"radius must be positive; got {radius}")
    rgb = _as_rgb(color)
    base = image.to_rgb().pixels
    xs, ys = _grid(image.width, image.height)
    mask = (xs - center[0]) ** 2 + (ys - center[1]) ** 2 <= radius * radius
    return Image(_blend_mask(base, mask, rgb))


def draw_rectangle(
    image: Image,
    top_left: tuple[float, float],
    bottom_right: tuple[float, float],
    color: ColorLike,
) -> Image:
    """Return a copy of ``image`` with a filled axis-aligned rectangle."""
    x0, y0 = top_left
    x1, y1 = bottom_right
    if x1 <= x0 or y1 <= y0:
        raise ImageError("rectangle corners must satisfy x0 < x1 and y0 < y1")
    rgb = _as_rgb(color)
    base = image.to_rgb().pixels
    xs, ys = _grid(image.width, image.height)
    mask = (xs >= x0) & (xs <= x1) & (ys >= y0) & (ys <= y1)
    return Image(_blend_mask(base, mask, rgb))


def draw_triangle(
    image: Image,
    vertices: Sequence[tuple[float, float]],
    color: ColorLike,
) -> Image:
    """Return a copy of ``image`` with a filled triangle.

    Vertices may be given in either winding order; the fill uses barycentric
    half-plane tests.
    """
    if len(vertices) != 3:
        raise ImageError(f"triangle needs exactly 3 vertices; got {len(vertices)}")
    rgb = _as_rgb(color)
    base = image.to_rgb().pixels
    xs, ys = _grid(image.width, image.height)

    (x0, y0), (x1, y1), (x2, y2) = vertices

    def edge(ax: float, ay: float, bx: float, by: float) -> np.ndarray:
        return (xs - ax) * (by - ay) - (ys - ay) * (bx - ax)

    e0 = edge(x0, y0, x1, y1)
    e1 = edge(x1, y1, x2, y2)
    e2 = edge(x2, y2, x0, y0)
    mask = ((e0 >= 0) & (e1 >= 0) & (e2 >= 0)) | ((e0 <= 0) & (e1 <= 0) & (e2 <= 0))
    return Image(_blend_mask(base, mask, rgb))


def compose_scene(
    width: int,
    height: int,
    rng: np.random.Generator,
    *,
    background: Image | None = None,
    n_shapes: int = 3,
    palette: Sequence[ColorLike] | None = None,
    shape_kinds: Sequence[str] = ("disk", "rect", "triangle"),
    min_size_frac: float = 0.08,
    max_size_frac: float = 0.3,
) -> Image:
    """Compose a random scene: a background with simple shapes on top.

    This is the workhorse behind the labelled corpus classes — fixing the
    palette, the shape kinds, or the background while letting positions and
    sizes vary yields a class of visually related images.

    Parameters
    ----------
    background:
        Base image; defaults to a mid-gray canvas.
    palette:
        Colors to draw shapes with (chosen uniformly); defaults to saturated
        primaries.
    """
    if background is None:
        background = solid(width, height, (0.5, 0.5, 0.5))
    if background.width != width or background.height != height:
        raise ImageError("background size must match the requested scene size")
    if palette is None:
        palette = [(0.9, 0.1, 0.1), (0.1, 0.8, 0.2), (0.15, 0.2, 0.9), (0.95, 0.85, 0.1)]
    if not shape_kinds:
        raise ImageError("shape_kinds must be non-empty")

    scene = background.to_rgb()
    smaller = min(width, height)
    for _ in range(n_shapes):
        kind = shape_kinds[int(rng.integers(len(shape_kinds)))]
        color = palette[int(rng.integers(len(palette)))]
        size = float(rng.uniform(min_size_frac, max_size_frac)) * smaller
        cx = float(rng.uniform(size, width - size)) if width > 2 * size else width / 2
        cy = float(rng.uniform(size, height - size)) if height > 2 * size else height / 2
        if kind == "disk":
            scene = draw_disk(scene, (cx, cy), size / 2.0, color)
        elif kind == "rect":
            scene = draw_rectangle(
                scene, (cx - size / 2, cy - size / 2), (cx + size / 2, cy + size / 2), color
            )
        elif kind == "triangle":
            angles = rng.uniform(0.0, 2.0 * np.pi, 3)
            vertices = [
                (cx + (size / 2.0) * np.cos(a), cy + (size / 2.0) * np.sin(a)) for a in angles
            ]
            scene = draw_triangle(scene, vertices, color)
        else:
            raise ImageError(f"unknown shape kind {kind!r}")
    return scene
