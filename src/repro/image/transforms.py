"""Geometric and photometric transforms for the invariance studies.

Experiment F4 measures how stable each feature signature is when the same
picture is re-photographed: rotated, mirrored, cropped, re-exposed, or
corrupted by sensor noise.  These transforms generate those perturbed
variants.  Each function returns a new :class:`~repro.image.core.Image`;
inputs are never modified.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.image.core import Image

__all__ = [
    "rotate90",
    "flip_horizontal",
    "flip_vertical",
    "crop",
    "center_crop",
    "adjust_brightness",
    "adjust_contrast",
    "adjust_gamma",
    "add_gaussian_noise",
    "add_salt_pepper",
    "occlude",
]


def rotate90(image: Image, turns: int = 1) -> Image:
    """Rotate counter-clockwise by ``turns`` quarter turns (any integer)."""
    return Image(np.rot90(image.pixels, k=turns % 4, axes=(0, 1)).copy())


def flip_horizontal(image: Image) -> Image:
    """Mirror left-right."""
    return Image(image.pixels[:, ::-1].copy())


def flip_vertical(image: Image) -> Image:
    """Mirror top-bottom."""
    return Image(image.pixels[::-1].copy())


def crop(image: Image, x: int, y: int, width: int, height: int) -> Image:
    """Extract the rectangle with top-left corner (x, y).

    Raises
    ------
    ImageError
        If the rectangle is empty or extends past the image bounds.
    """
    if width <= 0 or height <= 0:
        raise ImageError(f"crop size must be positive; got {width}x{height}")
    if x < 0 or y < 0 or x + width > image.width or y + height > image.height:
        raise ImageError(
            f"crop ({x},{y},{width},{height}) exceeds image bounds "
            f"{image.width}x{image.height}"
        )
    return Image(image.pixels[y : y + height, x : x + width].copy())


def center_crop(image: Image, fraction: float) -> Image:
    """Keep the central ``fraction`` of each dimension (0 < fraction <= 1)."""
    if not 0.0 < fraction <= 1.0:
        raise ImageError(f"fraction must lie in (0, 1]; got {fraction}")
    width = max(1, int(round(image.width * fraction)))
    height = max(1, int(round(image.height * fraction)))
    x = (image.width - width) // 2
    y = (image.height - height) // 2
    return crop(image, x, y, width, height)


def adjust_brightness(image: Image, delta: float) -> Image:
    """Add ``delta`` to every pixel (clipped to [0, 1])."""
    return Image(np.clip(image.pixels + delta, 0.0, 1.0))


def adjust_contrast(image: Image, factor: float) -> Image:
    """Scale contrast around mid-gray: ``0.5 + factor * (p - 0.5)``.

    ``factor > 1`` increases contrast, ``0 <= factor < 1`` flattens it.
    """
    if factor < 0.0:
        raise ImageError(f"contrast factor must be non-negative; got {factor}")
    return Image(np.clip(0.5 + factor * (image.pixels - 0.5), 0.0, 1.0))


def adjust_gamma(image: Image, gamma: float) -> Image:
    """Apply the power-law transfer ``p ** gamma`` (gamma > 0)."""
    if gamma <= 0.0:
        raise ImageError(f"gamma must be positive; got {gamma}")
    return Image(np.power(image.pixels, gamma))


def add_gaussian_noise(image: Image, rng: np.random.Generator, std: float) -> Image:
    """Add zero-mean Gaussian noise with standard deviation ``std``."""
    if std < 0.0:
        raise ImageError(f"noise std must be non-negative; got {std}")
    noisy = image.pixels + rng.normal(0.0, std, image.shape)
    return Image(np.clip(noisy, 0.0, 1.0))


def add_salt_pepper(image: Image, rng: np.random.Generator, fraction: float) -> Image:
    """Set a random ``fraction`` of pixels to pure black or pure white."""
    if not 0.0 <= fraction <= 1.0:
        raise ImageError(f"fraction must lie in [0, 1]; got {fraction}")
    pixels = image.pixels.copy()
    n_corrupt = int(round(fraction * image.n_pixels))
    if n_corrupt == 0:
        return Image(pixels)
    flat_index = rng.choice(image.n_pixels, size=n_corrupt, replace=False)
    values = rng.integers(0, 2, size=n_corrupt).astype(np.float64)
    rows, cols = np.unravel_index(flat_index, (image.height, image.width))
    if image.is_gray:
        pixels[rows, cols] = values
    else:
        pixels[rows, cols, :] = values[:, None]
    return Image(pixels)


def occlude(
    image: Image,
    x: int,
    y: int,
    width: int,
    height: int,
    *,
    color: float = 0.0,
) -> Image:
    """Paint a solid rectangle over part of the image (simulated occlusion)."""
    if width <= 0 or height <= 0:
        raise ImageError(f"occlusion size must be positive; got {width}x{height}")
    if x < 0 or y < 0 or x + width > image.width or y + height > image.height:
        raise ImageError("occlusion rectangle exceeds image bounds")
    pixels = image.pixels.copy()
    pixels[y : y + height, x : x + width] = color
    return Image(pixels)
