"""The :class:`Image` value type.

An :class:`Image` wraps a read-only ``float64`` numpy array with values in
``[0, 1]``.  Grayscale images have shape ``(height, width)``; RGB images
have shape ``(height, width, 3)``.  The wrapper exists so that every other
subsystem (features, database, evaluation) can rely on one validated,
immutable representation instead of re-checking dtypes and ranges.

Images are cheap value objects: construction copies the input array once
and then marks it read-only, so sharing an :class:`Image` between threads,
caches, and result sets is safe.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ImageError

__all__ = ["Image"]

#: Modes an image can be in, keyed by number of array dimensions.
_MODE_BY_NDIM = {2: "gray", 3: "rgb"}

#: Tolerance when validating that pixel values sit inside [0, 1].
_RANGE_TOL = 1e-9


class Image:
    """An immutable grayscale or RGB image with float64 pixels in [0, 1].

    Parameters
    ----------
    pixels:
        Array of shape ``(H, W)`` (grayscale) or ``(H, W, 3)`` (RGB).  Any
        numeric dtype is accepted and converted to ``float64``; values must
        already lie in ``[0, 1]`` (use :meth:`from_uint8` for byte images).

    Raises
    ------
    ImageError
        If the shape is not 2-D or (H, W, 3), the image is empty, or any
        value is non-finite or outside ``[0, 1]``.

    Examples
    --------
    >>> import numpy as np
    >>> img = Image(np.zeros((4, 6)))
    >>> img.width, img.height, img.mode
    (6, 4, 'gray')
    """

    __slots__ = ("_pixels",)

    def __init__(self, pixels: np.ndarray) -> None:
        array = np.asarray(pixels, dtype=np.float64)
        if array.ndim not in _MODE_BY_NDIM:
            raise ImageError(
                f"image array must be 2-D (gray) or 3-D (rgb); got shape {array.shape}"
            )
        if array.ndim == 3 and array.shape[2] != 3:
            raise ImageError(
                f"rgb image must have exactly 3 channels; got {array.shape[2]}"
            )
        if array.shape[0] == 0 or array.shape[1] == 0:
            raise ImageError(f"image must be non-empty; got shape {array.shape}")
        if not np.all(np.isfinite(array)):
            raise ImageError("image contains NaN or infinite values")
        lo = float(array.min())
        hi = float(array.max())
        if lo < -_RANGE_TOL or hi > 1.0 + _RANGE_TOL:
            raise ImageError(
                f"pixel values must lie in [0, 1]; got range [{lo:.6g}, {hi:.6g}]"
            )
        array = np.clip(array, 0.0, 1.0)
        array.setflags(write=False)
        self._pixels = array

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_uint8(cls, pixels: np.ndarray) -> "Image":
        """Build an image from a uint8 array (values 0..255 map to [0, 1])."""
        array = np.asarray(pixels)
        if array.dtype != np.uint8:
            raise ImageError(f"from_uint8 expects dtype uint8; got {array.dtype}")
        return cls(array.astype(np.float64) / 255.0)

    @classmethod
    def from_array(cls, pixels: np.ndarray, *, normalize: bool = False) -> "Image":
        """Build an image from any numeric array.

        With ``normalize=True`` the array is min-max rescaled into [0, 1]
        first (a constant array maps to all zeros); otherwise values must
        already be valid.
        """
        array = np.asarray(pixels, dtype=np.float64)
        if normalize:
            lo = float(array.min()) if array.size else 0.0
            hi = float(array.max()) if array.size else 0.0
            span = hi - lo
            array = np.zeros_like(array) if span == 0.0 else (array - lo) / span
        return cls(array)

    @classmethod
    def zeros(cls, width: int, height: int, mode: str = "gray") -> "Image":
        """Return an all-black image of the given size and mode."""
        return cls._constant(width, height, mode, 0.0)

    @classmethod
    def full(
        cls, width: int, height: int, value: float | Sequence[float], mode: str = "gray"
    ) -> "Image":
        """Return a constant image.

        ``value`` is a scalar for grayscale or a 3-sequence for RGB.
        """
        return cls._constant(width, height, mode, value)

    @classmethod
    def _constant(
        cls, width: int, height: int, mode: str, value: float | Sequence[float]
    ) -> "Image":
        if width <= 0 or height <= 0:
            raise ImageError(f"image size must be positive; got {width}x{height}")
        if mode == "gray":
            return cls(np.full((height, width), float(np.asarray(value))))
        if mode == "rgb":
            rgb = np.asarray(value, dtype=np.float64)
            if rgb.ndim == 0:
                rgb = np.full(3, float(rgb))
            if rgb.shape != (3,):
                raise ImageError(f"rgb constant must have 3 components; got {rgb.shape}")
            return cls(np.broadcast_to(rgb, (height, width, 3)).copy())
        raise ImageError(f"unknown image mode {mode!r} (expected 'gray' or 'rgb')")

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def pixels(self) -> np.ndarray:
        """The underlying read-only float64 array."""
        return self._pixels

    @property
    def width(self) -> int:
        """Number of columns."""
        return self._pixels.shape[1]

    @property
    def height(self) -> int:
        """Number of rows."""
        return self._pixels.shape[0]

    @property
    def shape(self) -> tuple[int, ...]:
        """Raw numpy shape: ``(H, W)`` or ``(H, W, 3)``."""
        return self._pixels.shape

    @property
    def mode(self) -> str:
        """``'gray'`` or ``'rgb'``."""
        return _MODE_BY_NDIM[self._pixels.ndim]

    @property
    def is_gray(self) -> bool:
        """True for single-channel images."""
        return self._pixels.ndim == 2

    @property
    def n_pixels(self) -> int:
        """Total pixel count (width x height)."""
        return self.width * self.height

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_uint8(self) -> np.ndarray:
        """Return the image as a uint8 array with values in 0..255."""
        return np.round(self._pixels * 255.0).astype(np.uint8)

    def to_gray(self) -> "Image":
        """Return a grayscale version (identity for gray images)."""
        if self.is_gray:
            return self
        from repro.image.color import rgb_to_gray

        return rgb_to_gray(self)

    def to_rgb(self) -> "Image":
        """Return an RGB version (gray replicated into 3 channels)."""
        if not self.is_gray:
            return self
        return Image(np.repeat(self._pixels[:, :, None], 3, axis=2))

    def channel(self, index: int) -> np.ndarray:
        """Return one channel as a 2-D array (RGB images only)."""
        if self.is_gray:
            raise ImageError("grayscale images have no separate channels")
        if not 0 <= index < 3:
            raise ImageError(f"channel index must be 0..2; got {index}")
        return self._pixels[:, :, index]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def resize(self, width: int, height: int, method: str = "bilinear") -> "Image":
        """Return a resampled copy; see :func:`repro.image.resize.resize`."""
        from repro.image.resize import resize

        return resize(self, width, height, method=method)

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Image":
        """Apply ``fn`` to the pixel array and rewrap (clipping to [0, 1])."""
        result = np.asarray(fn(self._pixels), dtype=np.float64)
        return Image(np.clip(result, 0.0, 1.0))

    def allclose(self, other: "Image", *, atol: float = 1e-8) -> bool:
        """True if the two images have equal shape and near-equal pixels."""
        return self.shape == other.shape and bool(
            np.allclose(self._pixels, other._pixels, atol=atol)
        )

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return self.shape == other.shape and bool(
            np.array_equal(self._pixels, other._pixels)
        )

    def __hash__(self) -> int:
        return hash((self.shape, self._pixels.tobytes()))

    def __repr__(self) -> str:
        return f"Image(mode={self.mode!r}, width={self.width}, height={self.height})"

    @staticmethod
    def stack_channels(channels: Iterable[np.ndarray]) -> "Image":
        """Build an RGB image from three 2-D arrays (R, G, B order)."""
        arrays = [np.asarray(c, dtype=np.float64) for c in channels]
        if len(arrays) != 3:
            raise ImageError(f"stack_channels needs exactly 3 channels; got {len(arrays)}")
        if any(a.shape != arrays[0].shape or a.ndim != 2 for a in arrays):
            raise ImageError("all channels must be 2-D arrays of identical shape")
        return Image(np.stack(arrays, axis=2))
