"""Image resampling: nearest-neighbour and bilinear.

Feature extraction in the reproduced system normalizes every image to a
fixed working size before computing signatures (the paper's pipeline scales
to 512x512 before histogramming and to a power-of-two square before the
wavelet transform), so resampling quality and determinism matter.

Both resamplers use the half-pixel-centre convention: output pixel ``i``
samples source coordinate ``(i + 0.5) * scale - 0.5``, which keeps images
centred and makes down-then-up scaling stable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.image.core import Image

__all__ = ["resize", "resize_nearest", "resize_bilinear"]


def _source_coords(out_size: int, in_size: int) -> np.ndarray:
    """Continuous source coordinates for each output index."""
    scale = in_size / out_size
    return (np.arange(out_size, dtype=np.float64) + 0.5) * scale - 0.5


def _resample_nearest(pixels: np.ndarray, width: int, height: int) -> np.ndarray:
    rows = np.clip(np.round(_source_coords(height, pixels.shape[0])), 0, pixels.shape[0] - 1)
    cols = np.clip(np.round(_source_coords(width, pixels.shape[1])), 0, pixels.shape[1] - 1)
    return pixels[rows.astype(int)[:, None], cols.astype(int)[None, :]]


def _resample_bilinear(pixels: np.ndarray, width: int, height: int) -> np.ndarray:
    in_h, in_w = pixels.shape[:2]
    ys = np.clip(_source_coords(height, in_h), 0.0, in_h - 1.0)
    xs = np.clip(_source_coords(width, in_w), 0.0, in_w - 1.0)

    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]

    if pixels.ndim == 3:
        wy = wy[:, :, None]
        wx = wx[:, :, None]

    top = pixels[y0[:, None], x0[None, :]] * (1.0 - wx) + pixels[y0[:, None], x1[None, :]] * wx
    bottom = pixels[y1[:, None], x0[None, :]] * (1.0 - wx) + pixels[y1[:, None], x1[None, :]] * wx
    return top * (1.0 - wy) + bottom * wy


def resize_nearest(image: Image, width: int, height: int) -> Image:
    """Resample with nearest-neighbour interpolation."""
    return resize(image, width, height, method="nearest")


def resize_bilinear(image: Image, width: int, height: int) -> Image:
    """Resample with bilinear interpolation."""
    return resize(image, width, height, method="bilinear")


def resize(image: Image, width: int, height: int, method: str = "bilinear") -> Image:
    """Resample ``image`` to ``width`` x ``height``.

    Parameters
    ----------
    method:
        ``'bilinear'`` (default) or ``'nearest'``.

    Raises
    ------
    ImageError
        On non-positive target sizes or unknown methods.
    """
    if width <= 0 or height <= 0:
        raise ImageError(f"target size must be positive; got {width}x{height}")
    if (width, height) == (image.width, image.height):
        return image
    if method == "nearest":
        return Image(_resample_nearest(image.pixels, width, height))
    if method == "bilinear":
        return Image(np.clip(_resample_bilinear(image.pixels, width, height), 0.0, 1.0))
    raise ImageError(f"unknown resize method {method!r} (expected 'nearest' or 'bilinear')")
