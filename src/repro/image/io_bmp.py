"""24-bit uncompressed BMP codec.

Windows bitmaps were the other interchange format of the reproduced
system's era.  This codec handles the common profile:

* ``BITMAPFILEHEADER`` + ``BITMAPINFOHEADER`` (40-byte info header),
* 24 bits per pixel, ``BI_RGB`` (no compression), no palette,
* bottom-up rows (positive height) and top-down rows (negative height),
* 4-byte row padding.

Grayscale images are expanded to RGB on write (BMP has no native 8-bit
grayscale without a palette; keeping to one profile keeps the codec exact).
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import CodecError
from repro.image.core import Image

__all__ = ["read_bmp", "write_bmp", "read_bmp_bytes", "write_bmp_bytes"]

_FILE_HEADER = struct.Struct("<2sIHHI")  # magic, file size, res1, res2, data offset
_INFO_HEADER = struct.Struct("<IiiHHIIiiII")  # size, w, h, planes, bpp, comp, ...

_BI_RGB = 0


def read_bmp_bytes(data: bytes) -> Image:
    """Decode a 24-bit uncompressed BMP byte string into an :class:`Image`."""
    if len(data) < _FILE_HEADER.size + _INFO_HEADER.size:
        raise CodecError("BMP data shorter than its mandatory headers")
    magic, _file_size, _r1, _r2, data_offset = _FILE_HEADER.unpack_from(data, 0)
    if magic != b"BM":
        raise CodecError(f"not a BMP file (magic {magic!r})")

    (
        info_size,
        width,
        height,
        planes,
        bpp,
        compression,
        _image_size,
        _xppm,
        _yppm,
        _colors_used,
        _colors_important,
    ) = _INFO_HEADER.unpack_from(data, _FILE_HEADER.size)

    if info_size < 40:
        raise CodecError(f"unsupported BMP info header size {info_size}")
    if planes != 1:
        raise CodecError(f"BMP planes must be 1; got {planes}")
    if bpp != 24:
        raise CodecError(f"only 24-bit BMPs are supported; got {bpp} bpp")
    if compression != _BI_RGB:
        raise CodecError(f"only uncompressed (BI_RGB) BMPs are supported; got {compression}")
    if width <= 0 or height == 0:
        raise CodecError(f"invalid BMP dimensions {width}x{height}")

    top_down = height < 0
    rows = abs(height)
    row_bytes = width * 3
    stride = (row_bytes + 3) & ~3
    needed = data_offset + stride * rows
    if len(data) < needed:
        raise CodecError(f"truncated BMP payload: need {needed} bytes, have {len(data)}")

    raw = np.frombuffer(data, dtype=np.uint8, offset=data_offset, count=stride * rows)
    raw = raw.reshape(rows, stride)[:, :row_bytes].reshape(rows, width, 3)
    bgr = raw if top_down else raw[::-1]
    rgb = bgr[:, :, ::-1].astype(np.float64) / 255.0
    return Image(rgb)


def read_bmp(path: str | Path) -> Image:
    """Read a 24-bit BMP file from disk."""
    return read_bmp_bytes(Path(path).read_bytes())


def write_bmp_bytes(image: Image) -> bytes:
    """Encode an :class:`Image` as a bottom-up 24-bit BMP byte string."""
    rgb = image.to_rgb().to_uint8()
    height, width = rgb.shape[:2]
    row_bytes = width * 3
    stride = (row_bytes + 3) & ~3

    rows = np.zeros((height, stride), dtype=np.uint8)
    rows[:, :row_bytes] = rgb[:, :, ::-1].reshape(height, row_bytes)
    payload = rows[::-1].tobytes()  # bottom-up

    data_offset = _FILE_HEADER.size + _INFO_HEADER.size
    file_header = _FILE_HEADER.pack(b"BM", data_offset + len(payload), 0, 0, data_offset)
    info_header = _INFO_HEADER.pack(
        _INFO_HEADER.size, width, height, 1, 24, _BI_RGB, len(payload), 2835, 2835, 0, 0
    )
    return file_header + info_header + payload


def write_bmp(image: Image, path: str | Path) -> None:
    """Write an :class:`Image` to disk as a 24-bit BMP."""
    Path(path).write_bytes(write_bmp_bytes(image))
