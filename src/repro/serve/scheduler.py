"""Micro-batch coalescing scheduler: concurrent requests → large batches.

The batched engine (PR 1/2) is fast when someone hands it a big query
matrix — but an online service receives *independent* single queries
from many clients.  This module closes that gap with the standard
serving trick (micro-batching): admit requests into a bounded queue,
let a worker collect them for up to ``max_wait_ms`` (or until
``max_batch`` arrive — whichever happens first), group the formed batch
by ``(kind, feature, parameter)``, and execute each group through one
``query_batch`` / ``range_query_batch`` call.  Callers get
:class:`~concurrent.futures.Future` objects that resolve to
:class:`ServedResult`.

**Parity is the contract.**  The scheduler only *regroups* work: a
group's vectors go through the same batched entry points whose results
are bit-identical to per-query ``ImageDatabase.query`` /
``range_query`` calls (ids, distance floats, tie-breaks, and per-query
cost counters — see ``repro.index.base``).  Coalescing therefore never
changes an answer, only when it is computed; the concurrency parity
suite (``tests/test_serve.py``) replays every served request directly
against the database and demands equality.

Request lifecycle::

    submit_query/submit_range
      ├─ validate (feature, k/radius, dimensionality) — errors raise
      │  in the caller, never poison a batch
      ├─ cache lookup at the current generation — a fresh hit resolves
      │  the future immediately; a stale-generation entry is first
      │  checked against the mutation delta log (a provably unchanged
      │  entry is re-stamped and served — a *revalidation*), otherwise
      │  evicted (counted) and the request proceeds
      └─ enqueue (bounded; ServeError when full) ──► worker
    submit_add/submit_remove                          ├─ collect ≤ max_batch
      └─ enqueue (same queue, same                    │  for ≤ max_wait_ms
         bound) ─────────────────────────────────────►├─ replay arrival order:
                                                      │  queries coalesce into
                                                      │  segments, adjacent
                                                      │  same-kind mutations
                                                      │  coalesce into one
                                                      │  barrier between them
                                                      ├─ per segment: group by
                                                      │  (kind, feature,
                                                      │  parameter), dedup
                                                      │  byte-identical vectors
                                                      ├─ one engine call per
                                                      │  group; per-request
                                                      │  stats attributed from
                                                      │  index.last_batch_stats
                                                      └─ resolve futures; fill
                                                         cache stamped with the
                                                         feature's generation

**Mutations serialize with query batches.**  ``submit_add`` /
``submit_remove`` ride the same admission queue as queries and are
applied by the same single worker thread, in arrival order: every query
admitted before a mutation is answered against the pre-mutation
database, every query admitted after it against the post-mutation one —
the service is linearizable without a single lock reaching the engine.
Results are cached stamped with the feature's
:meth:`~repro.db.database.ImageDatabase.generation` at execution time;
a later lookup under a newer generation lazily evicts the entry
(``ServiceStats.cache_invalidations``) instead of flushing the cache.

The worker is a single thread, so the underlying ``ImageDatabase`` and
its indexes are only ever touched serially — no locks reach the engine,
and ``last_batch_stats`` attribution is race-free by construction.

**Sharding.**  With ``shards > 1`` the scheduler fronts a
:class:`~repro.serve.shard.ShardedEngine` instead of the database
directly: the item set is partitioned by id hash into N independent
shard views, every formed query group scatters to all shards in
parallel (one dedicated thread each) and the per-shard answers are
gathered with an exact k-way merge on ``(distance, id)`` —
bit-identical to the unsharded answer, ids and floats and tie-breaks
(see ``repro.serve.shard``).  Mutations route rows to their home
shards and still act as barriers: the worker waits for every shard
before the next query segment runs.  Cached results are stamped with
the **tuple** of per-shard generations, so a mutation on any one shard
invalidates exactly the entries that depended on it.

**Admission control.**  Beyond the bounded queue (503-style
``ServeError`` when full), an optional token bucket
(``rate_limit_qps`` / ``rate_limit_burst``) throttles sustained
request rates: an empty bucket fails the submission fast with
:class:`~repro.errors.RateLimitError` (HTTP 429) — *throttled* and
*overloaded* are distinct signals to a client deciding between backoff
and failover.

**Observability.**  The scheduler feeds a
:class:`~repro.serve.metrics.MetricsRegistry` on the hot path:
per-route latency histograms (fixed log-spaced buckets), admission
counters by outcome, formed-batch-size histograms, and scrape-time
gauges for queue depth, per-shard item counts and request balance, and
cache counters — rendered in Prometheus text format by
:meth:`QueryScheduler.render_metrics` (the HTTP ``GET /metrics``
body).

**Tracing.**  With ``trace_depth > 0`` (the default) every request also
carries a :class:`~repro.serve.trace.Trace`: one span per pipeline
stage (``admit``, ``cache-lookup``, ``queue-wait``, ``batch-form``, one
``engine`` span per shard call with that shard's exact
``distance_computations`` for the request, ``merge``,
``journal-append`` / ``journal-fsync`` on the write path, ``respond``).
Completed traces land in a bounded flight recorder and — past
``slow_query_ms`` — a slow-query log, both served by the HTTP
``/debug/*`` endpoints; span durations additionally feed the
``repro_stage_seconds`` histogram.  ``trace_depth=0`` turns the whole
machinery off (no per-request allocation).  See
``docs/observability.md``.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import Counter
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.db.database import ImageDatabase
from repro.db.journal import JournalSet
from repro.db.recovery import compact
from repro.db.query import RetrievalResult
from repro.errors import (
    QueryError,
    RateLimitError,
    ServeError,
    ShuttingDownError,
)
from repro.image.core import Image
from repro.index.stats import SearchStats
from repro.serve.cache import CacheKey, ResultCache
from repro.serve.metrics import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    read_process_stats,
)
from repro.serve.shard import ShardedEngine
from repro.serve.stats import ServiceStats, StatsCollector
from repro.serve.trace import FlightRecorder, SlowQueryLog, Trace

__all__ = ["ServedResult", "MutationResult", "TokenBucket", "QueryScheduler"]


class TokenBucket:
    """Non-blocking token-bucket rate limiter.

    ``rate`` tokens accrue per second up to ``burst``;
    :meth:`try_acquire` takes one token or reports failure immediately
    (the scheduler turns failure into
    :class:`~repro.errors.RateLimitError` at admission — callers back
    off, they never queue behind the limiter).
    """

    def __init__(self, rate: float, burst: float | None = None) -> None:
        if rate <= 0.0:
            raise ServeError(f"rate must be > 0 tokens/s; got {rate}")
        burst = float(burst) if burst is not None else max(1.0, float(rate))
        if burst < 1.0:
            raise ServeError(f"burst must be >= 1 token; got {burst}")
        self._rate = float(rate)
        self._burst = burst
        self._tokens = burst
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    @property
    def rate(self) -> float:
        """Sustained tokens per second."""
        return self._rate

    @property
    def burst(self) -> float:
        """Bucket capacity (largest tolerated burst)."""
        return self._burst

    def try_acquire(self) -> bool:
        """Take one token if available; never blocks."""
        now = time.monotonic()
        with self._lock:
            self._tokens = min(
                self._burst, self._tokens + (now - self._updated) * self._rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


@dataclass(frozen=True)
class ServedResult:
    """What a request's future resolves to.

    Attributes
    ----------
    results:
        The ranked answers — identical to the matching direct
        ``ImageDatabase.query`` / ``range_query`` call.
    stats:
        This request's exact engine cost counters, attributed from the
        executing group's ``last_batch_stats`` (``None`` on a cache hit:
        no engine work happened).
    batch_size:
        Size of the engine group that answered the request, after
        in-flight dedup — how much company the query had in its kernel
        call (1 on a cache hit).
    cache_hit:
        True when the result came from the LRU cache.
    latency_s:
        Submit-to-resolution wall time.
    trace_id:
        Id of the trace that followed this request through the pipeline
        (the key into ``GET /debug/trace?id=`` and ``repro trace
        --id``); ``None`` when tracing is off (``trace_depth=0``).
    """

    results: list[RetrievalResult]
    stats: SearchStats | None
    batch_size: int
    cache_hit: bool
    latency_s: float
    trace_id: str | None = None


@dataclass(frozen=True)
class MutationResult:
    """What an add/remove request's future resolves to.

    Attributes
    ----------
    kind:
        ``'add'``, ``'remove'``, or ``'save'`` (compaction barrier).
    ids:
        The image ids allocated (add) or removed (remove), in order
        (empty for ``'save'``).
    generations:
        Every feature's generation stamp *after* the mutation applied —
        what subsequent cached results will be validated against.
        Scalars on an unsharded scheduler, per-shard tuples on a
        sharded one.
    latency_s:
        Submit-to-application wall time.
    trace_id:
        Id of the mutation's trace (``None`` when tracing is off).
    """

    kind: str
    ids: list[int]
    generations: dict[str, Hashable]
    latency_s: float
    trace_id: str | None = None


class _Request:
    """One admitted query riding the queue to the worker.

    ``trace`` (when tracing is on) travels with the request; the queue
    hand-off is the happens-before edge that lets the worker append
    spans to it without a lock.  ``enqueued``/``dequeued`` bound the
    ``queue-wait`` span.
    """

    __slots__ = (
        "kind",
        "feature",
        "parameter",
        "vector",
        "key",
        "future",
        "submitted",
        "trace",
        "enqueued",
        "dequeued",
    )

    def __init__(
        self,
        kind: str,
        feature: str,
        parameter: int | float,
        vector: np.ndarray,
        key: CacheKey | None,
        trace: Trace | None = None,
    ) -> None:
        self.kind = kind
        self.feature = feature
        self.parameter = parameter
        self.vector = vector
        self.key = key
        self.trace = trace
        self.future: Future[ServedResult] = Future()
        self.submitted = time.monotonic()
        self.enqueued: float | None = None
        self.dequeued: float | None = None


class _Mutation:
    """One admitted add/remove riding the same queue as the queries.

    Its position in the queue *is* its serialization point: the worker
    applies it between the query segments that arrived around it.
    """

    __slots__ = (
        "kind",
        "payload",
        "labels",
        "names",
        "staged",
        "future",
        "submitted",
        "trace",
        "enqueued",
        "dequeued",
    )

    def __init__(
        self,
        kind: str,
        payload: object,
        labels: Sequence[str | None] | None = None,
        names: Sequence[str] | None = None,
        trace: Trace | None = None,
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.labels = labels
        self.names = names
        #: Pre-validated add payload ``(matrices, n_rows)``, filled by
        #: the worker when this mutation joins a coalesced run.
        self.staged: tuple[dict[str, np.ndarray], int] | None = None
        self.trace = trace
        self.future: Future[MutationResult] = Future()
        self.submitted = time.monotonic()
        self.enqueued: float | None = None
        self.dequeued: float | None = None


#: Queue sentinel: drain what is already admitted, then stop.
_SHUTDOWN = None


class QueryScheduler:
    """Coalesces concurrent k-NN/range requests into engine batches.

    Parameters
    ----------
    db:
        The database to serve.  It may mutate while serving — but only
        through :meth:`submit_add` / :meth:`submit_remove`, which
        serialize with query batches on the worker thread.  Mutating
        the database directly while the scheduler is running would race
        the worker; do that only with the scheduler closed.
    max_batch:
        Largest formed batch (default 32).  ``1`` degenerates to
        one-request-at-a-time handling — the benchmark baseline.
    max_wait_ms:
        Longest a request waits for company before its batch executes
        anyway (default 2.0).  The knob trades a little latency for
        larger batches under light load; under heavy load batches fill
        to ``max_batch`` without waiting.
    max_queue:
        Admission-queue bound (default 1024).  Submissions beyond it
        fail fast with :class:`~repro.errors.ServeError` — backpressure
        instead of unbounded memory.
    cache_size / quantize_decimals:
        :class:`~repro.serve.cache.ResultCache` configuration
        (``cache_size=0`` disables caching).
    shards:
        Partition the item set into this many shard views served by a
        scatter-gather :class:`~repro.serve.shard.ShardedEngine`
        (default 1 = unsharded pass-through).  Results stay
        bit-identical; only where the work runs changes.  With
        ``shards > 1`` the engine owns the live item set from
        construction on — don't query or mutate ``db`` directly
        afterwards.
    rate_limit_qps / rate_limit_burst:
        Optional token-bucket admission throttle: sustained requests
        per second and bucket capacity (default burst = max(1, qps)).
        An empty bucket fails submissions fast with
        :class:`~repro.errors.RateLimitError` (HTTP 429); ``None``
        disables throttling.
    journal:
        Optional :class:`~repro.db.journal.JournalSet` for crash-safe
        durability (see ``docs/durability.md``).  Mutations are
        journaled on the worker before they apply, and their futures
        only resolve after one *group fsync* at the end of the formed
        batch — an acknowledged mutation is always durable.
        :meth:`submit_save` compacts the journal into a fresh snapshot
        as a barrier between batches.  The scheduler owns the set and
        closes it on :meth:`close`.
    trace_depth:
        Flight-recorder capacity: the newest ``trace_depth`` completed
        request traces are retained for ``GET /debug/traces`` /
        ``GET /debug/trace?id=`` (default 256).  ``0`` disables tracing
        entirely — no per-request trace allocation, no span recording —
        the configuration the overhead benchmark compares against.
    slow_query_ms:
        Requests whose end-to-end latency reaches this threshold are
        *also* kept in the slow-query log (``GET /debug/slow``), which
        fast traffic cannot flush (default 100.0).  ``None`` disables
        the slow log while leaving the flight recorder on.
    autostart:
        Start the worker thread immediately (default).  Pass ``False``
        to stage requests first and call :meth:`start` explicitly —
        load tests use this to exercise the admission bound
        deterministically.
    """

    def __init__(
        self,
        db: ImageDatabase,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        cache_size: int = 1024,
        quantize_decimals: int | None = 12,
        shards: int = 1,
        rate_limit_qps: float | None = None,
        rate_limit_burst: float | None = None,
        journal: JournalSet | None = None,
        trace_depth: int = 256,
        slow_query_ms: float | None = 100.0,
        autostart: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1; got {max_batch}")
        if max_wait_ms < 0.0:
            raise ServeError(f"max_wait_ms must be >= 0; got {max_wait_ms}")
        if max_queue < 1:
            raise ServeError(f"max_queue must be >= 1; got {max_queue}")
        if trace_depth < 0:
            raise ServeError(f"trace_depth must be >= 0; got {trace_depth}")
        if slow_query_ms is not None and slow_query_ms < 0.0:
            raise ServeError(
                f"slow_query_ms must be >= 0 or None; got {slow_query_ms}"
            )
        self._db = db
        self._journal = journal
        self._engine = ShardedEngine(db, shards, journal=journal)
        self._limiter = (
            TokenBucket(rate_limit_qps, rate_limit_burst)
            if rate_limit_qps is not None
            else None
        )
        self._max_batch = int(max_batch)
        self._max_wait_s = float(max_wait_ms) / 1e3
        self._queue: queue.Queue[_Request | _Mutation | None] = queue.Queue(
            maxsize=max_queue
        )
        self._cache = ResultCache(cache_size, quantize_decimals=quantize_decimals)
        self._stats = StatsCollector()
        self._recorder = FlightRecorder(trace_depth)
        self._slow_log = SlowQueryLog(
            threshold_s=None if slow_query_ms is None else slow_query_ms / 1e3
        )
        self._metrics = MetricsRegistry()
        self._m_requests = self._metrics.counter(
            "repro_requests_total",
            "Requests admitted, by route (knn/range/add/remove).",
            ("route",),
        )
        self._m_refused = self._metrics.counter(
            "repro_refused_total",
            "Submissions refused at admission, by reason "
            "(queue_full/rate_limited).",
            ("reason",),
        )
        self._m_latency = self._metrics.histogram(
            "repro_request_latency_seconds",
            "Submit-to-result latency, by route.",
            ("route",),
        )
        self._m_batch_size = self._metrics.histogram(
            "repro_batch_size",
            "Requests per formed micro-batch (queries only).",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._g_queue_depth = self._metrics.gauge(
            "repro_queue_depth", "Requests waiting in the admission queue."
        )
        self._g_items = self._metrics.gauge(
            "repro_items", "Live items served (all shards)."
        )
        self._g_shards = self._metrics.gauge(
            "repro_shards", "Number of shards behind the scheduler."
        )
        self._g_shard_items = self._metrics.gauge(
            "repro_shard_items", "Live items per shard.", ("shard",)
        )
        self._g_shard_requests = self._metrics.gauge(
            "repro_shard_requests",
            "Engine calls served per shard since startup (monotonic).",
            ("shard",),
        )
        self._g_cache = self._metrics.gauge(
            "repro_cache_lookups",
            "Result-cache counters by outcome "
            "(hit/miss/invalidated/revalidated).",
            ("outcome",),
        )
        self._g_journal = self._metrics.gauge(
            "repro_journal",
            "Write-ahead journal state (records/bytes/syncs since the "
            "last compaction; replayed = records applied at startup "
            "recovery).  Absent families read 0 when journaling is off.",
            ("figure",),
        )
        self._g_backend_pool = self._metrics.gauge(
            "repro_backend_pool",
            "Vector-backend buffer-pool state "
            "(hits/misses/evictions/resident/capacity pages).  All 0 on "
            "the unbounded in-memory backend — see docs/storage.md.",
            ("figure",),
        )
        self._m_journal_fsync = self._metrics.histogram(
            "repro_journal_fsync_seconds",
            "Wall time of journal group-commit fsyncs.",
        )
        self._m_stage = self._metrics.histogram(
            "repro_stage_seconds",
            "Wall time per traced pipeline stage (admit, cache-lookup, "
            "queue-wait, batch-form, engine, merge, journal-append, "
            "journal-fsync, apply, respond, compact).  Populated only "
            "while tracing is on (trace_depth > 0).",
            ("stage",),
        )
        self._g_process = self._metrics.gauge(
            "repro_process",
            "Process-level health at scrape time "
            "(rss_bytes / open_fds / threads).",
            ("figure",),
        )
        self._g_gc = self._metrics.gauge(
            "repro_process_gc_collections",
            "Cumulative CPython garbage collections, per GC generation.",
            ("generation",),
        )
        if journal is not None:
            journal.on_fsync = self._m_journal_fsync.observe
        self._closed = False
        self._abandon = False
        self._lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-worker", daemon=True
        )
        self._started = False
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryScheduler":
        """Launch the batch-forming worker (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServeError("scheduler is closed")
            if not self._started:
                self._worker.start()
                self._started = True
        return self

    def close(self, timeout: float | None = None, *, drain: bool = True) -> None:
        """Stop accepting requests, settle the queue, join the worker.

        Submissions after ``close`` begins raise
        :class:`~repro.errors.ShuttingDownError`.  With ``drain`` (the
        default) every request admitted before the close is still
        served.  With ``drain=False`` — the SIGTERM path — the batch the
        worker is currently executing completes and its mutations reach
        the journal (an acknowledged write is never abandoned), but
        everything still *queued* fails fast with ``ShuttingDownError``
        instead of hanging a terminating process on a backlog.  Either
        way the engine (and its journal, when configured) is synced and
        closed.  On a scheduler that never started, staged requests fail
        with ``ShuttingDownError`` instead of stranding their futures (a
        blocking sentinel put could also deadlock on a full queue with
        no consumer).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._abandon = not drain
            started = self._started
        if started:
            self._queue.put(_SHUTDOWN)
            self._worker.join(timeout)
            self._engine.close()
            return
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                self._fail_shutting_down(item, "scheduler closed before starting")
        self._engine.close()

    @staticmethod
    def _fail_shutting_down(
        item: "_Request | _Mutation", message: str
    ) -> None:
        if item.future.set_running_or_notify_cancel():
            item.future.set_exception(ShuttingDownError(message))

    def __enter__(self) -> "QueryScheduler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache(self) -> ResultCache:
        """The service's result cache (counters, clear())."""
        return self._cache

    @property
    def engine(self) -> ShardedEngine:
        """The scatter-gather engine (shard views, balance counters)."""
        return self._engine

    @property
    def metrics(self) -> MetricsRegistry:
        """The Prometheus metric families (see :meth:`render_metrics`)."""
        return self._metrics

    @property
    def flight_recorder(self) -> FlightRecorder:
        """Ring buffer of the newest completed traces (``/debug/traces``)."""
        return self._recorder

    @property
    def slow_log(self) -> SlowQueryLog:
        """Threshold-triggered slow-trace keep (``/debug/slow``)."""
        return self._slow_log

    @property
    def tracing_enabled(self) -> bool:
        """True unless constructed with ``trace_depth=0``."""
        return self._recorder.enabled

    def new_trace(
        self,
        route: str,
        traceparent: str | None = None,
        *,
        owned: bool = False,
    ) -> Trace | None:
        """Open a trace for one request, or ``None`` when tracing is off.

        The HTTP front end calls this with ``owned=False`` (it appends
        its own ``respond`` span and calls :meth:`finish_trace` before
        serializing the response); ``owned=True`` asks the scheduler to
        finish the trace itself when the request's future resolves —
        what :meth:`submit_query` does automatically when no trace is
        handed in.  A parseable W3C ``traceparent`` donates the trace
        id; anything else gets a fresh one.
        """
        if not self._recorder.enabled:
            return None
        return Trace(route, traceparent=traceparent, owned=owned)

    def finish_trace(self, trace: Trace, status: str = "ok") -> None:
        """Seal a trace and publish it to the recorder + slow log.

        Idempotent (the underlying :meth:`Trace.finish` is): only the
        first call records; span durations feed the
        ``repro_stage_seconds`` histogram then.
        """
        if trace.finish(status):
            for span in trace.spans:
                self._m_stage.observe(span.duration_s, stage=span.stage)
            self._recorder.record(trace)
            self._slow_log.offer(trace)

    def _resolve_trace(self, trace: Trace | None, status: str = "ok") -> None:
        """Finish an *owned* trace (no-op for handler-owned ones).

        The scheduler must never finish a trace the HTTP handler owns:
        the handler still appends its ``respond`` span after the future
        resolves, and a published trace is visible to ``/debug`` readers.
        """
        if trace is not None and trace.owned:
            self.finish_trace(trace, status)

    @property
    def n_shards(self) -> int:
        """Shards behind this scheduler (1 = unsharded)."""
        return self._engine.n_shards

    @property
    def n_items(self) -> int:
        """Live items served, summed across shards."""
        return self._engine.size

    def generations(self) -> dict[str, Hashable]:
        """Current per-feature data-version stamps (see the engine)."""
        return self._engine.generations()

    @property
    def is_closed(self) -> bool:
        """True after :meth:`close` began."""
        return self._closed

    @property
    def journal(self) -> JournalSet | None:
        """The write-ahead journal set (``None`` when journaling is off)."""
        return self._journal

    def journal_info(self) -> dict[str, int] | None:
        """Journal state for ``GET /healthz`` (``None`` when off).

        ``records``/``bytes`` count since the last compaction, ``syncs``
        the group fsyncs performed, ``replayed`` the records applied by
        startup recovery.
        """
        if self._journal is None:
            return None
        return {
            "records": self._journal.n_records,
            "bytes": self._journal.size_bytes,
            "syncs": self._journal.n_syncs,
            "replayed": self._journal.replayed_records,
        }

    def stats(self) -> ServiceStats:
        """A point-in-time :class:`~repro.serve.stats.ServiceStats`.

        Cache figures come from one locked
        :meth:`~repro.serve.cache.ResultCache.counters` snapshot, so
        ``/stats`` can never report hits and misses that disagree
        mid-update.
        """
        info = self.journal_info()
        cache = self._cache.counters()
        backend = self._db.backend_info()
        pool = backend["pool"]
        return self._stats.snapshot(
            queue_depth=self._queue.qsize(),
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_invalidations=cache.invalidations,
            cache_revalidations=cache.revalidations,
            n_shards=self._engine.n_shards,
            shard_sizes=tuple(self._engine.shard_sizes()),
            shard_requests=tuple(self._engine.shard_requests()),
            journaled=info is not None,
            journal_records=info["records"] if info else 0,
            journal_syncs=info["syncs"] if info else 0,
            journal_replayed=info["replayed"] if info else 0,
            backend=backend["name"],
            pool_hits=pool["hits"],
            pool_misses=pool["misses"],
            pool_evictions=pool["evictions"],
            pool_resident=pool["resident"],
            pool_capacity=pool["capacity"],
        )

    def render_metrics(self) -> str:
        """The Prometheus text exposition body (``GET /metrics``).

        Hot-path families (request counters, latency and batch-size
        histograms) accumulate as requests flow; values that already
        live elsewhere — queue depth, shard sizes and balance, cache
        counters — are set as gauges here, at scrape time.
        """
        self._g_queue_depth.set(self._queue.qsize())
        self._g_items.set(self._engine.size)
        self._g_shards.set(self._engine.n_shards)
        for shard, size in enumerate(self._engine.shard_sizes()):
            self._g_shard_items.set(size, shard=str(shard))
        for shard, count in enumerate(self._engine.shard_requests()):
            self._g_shard_requests.set(count, shard=str(shard))
        cache = self._cache.counters()
        self._g_cache.set(cache.hits, outcome="hit")
        self._g_cache.set(cache.misses, outcome="miss")
        self._g_cache.set(cache.invalidations, outcome="invalidated")
        self._g_cache.set(cache.revalidations, outcome="revalidated")
        info = self.journal_info()
        if info is not None:
            for figure, value in info.items():
                self._g_journal.set(value, figure=figure)
        for figure, value in self._db.backend_info()["pool"].items():
            self._g_backend_pool.set(value, figure=figure)
        process = read_process_stats()
        self._g_process.set(process["rss_bytes"], figure="rss_bytes")
        self._g_process.set(process["open_fds"], figure="open_fds")
        self._g_process.set(process["threads"], figure="threads")
        for generation, count in enumerate(process["gc_collections"]):
            self._g_gc.set(count, generation=str(generation))
        return self._metrics.render()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_query(
        self,
        query: Image | np.ndarray,
        k: int = 10,
        *,
        feature: str | None = None,
        trace: Trace | None = None,
    ) -> Future[ServedResult]:
        """Admit a k-NN request; returns a future of :class:`ServedResult`.

        ``trace`` hands in an externally-owned trace (the HTTP front
        end's); left ``None``, the scheduler opens — and finishes — its
        own when tracing is on.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1; got {k}")
        return self._submit("knn", query, int(k), feature, trace)

    def submit_range(
        self,
        query: Image | np.ndarray,
        radius: float,
        *,
        feature: str | None = None,
        trace: Trace | None = None,
    ) -> Future[ServedResult]:
        """Admit a range request; returns a future of :class:`ServedResult`."""
        if radius < 0.0:
            raise QueryError(f"radius must be non-negative; got {radius}")
        return self._submit("range", query, float(radius), feature, trace)

    def _submit(
        self,
        kind: str,
        query: Image | np.ndarray,
        parameter: int | float,
        feature: str | None,
        trace: Trace | None = None,
    ) -> Future[ServedResult]:
        if self._closed:
            raise ShuttingDownError("scheduler is closed (shutting down)")
        self._check_rate_limit()
        if self._engine.size == 0:
            raise QueryError("database is empty")
        feature = feature or self._db.default_feature
        if trace is None and self._recorder.enabled:
            # A validation failure below just discards the trace — an
            # admitted request is the unit the recorder tracks.
            trace = Trace(kind, owned=True)
        admit_start = time.monotonic()
        # Extraction/validation happens on the caller's thread: a bad
        # request fails here, loudly, instead of poisoning a batch.
        vector = self._db.extract_query_vector(query, feature)
        started = time.monotonic()
        if trace is not None:
            trace.annotate(feature=feature, parameter=parameter)
            trace.add_span("admit", admit_start, started - admit_start)
        self._stats.record_submitted()
        self._m_requests.inc(route=kind)

        key = None
        if self._cache.enabled:
            key = self._cache.key(kind, feature, parameter, vector)
            # The generation check makes the hit safe under mutation: a
            # result computed under an older item set is evicted here
            # (counted as an invalidation) instead of being served.
            # Sharded stamps are per-shard tuples, so any one shard's
            # movement invalidates every entry that gathered from it.
            # Before evicting, the revalidator gets a chance to prove
            # the entry unchanged from the mutation delta log — a
            # confirmed entry is re-stamped and served (counted as a
            # revalidation, never as a stale serve).
            lookup_start = time.monotonic()
            generation = self._engine.generation(feature)

            def revalidate(stored: Hashable, results: list) -> bool:
                return self._entry_still_valid(
                    kind, feature, parameter, vector, stored, generation, results
                )

            cached = self._cache.get(key, generation, revalidator=revalidate)
            if trace is not None:
                trace.add_span(
                    "cache-lookup",
                    lookup_start,
                    time.monotonic() - lookup_start,
                    hit=cached is not None,
                )
            if cached is not None:
                future: Future[ServedResult] = Future()
                latency = time.monotonic() - started
                if trace is not None:
                    trace.annotate(cache_hit=True)
                    self._resolve_trace(trace)
                future.set_result(
                    ServedResult(
                        cached,
                        None,
                        1,
                        True,
                        latency,
                        trace.trace_id if trace is not None else None,
                    )
                )
                self._stats.record_completed(latency)
                self._m_latency.observe(latency, route=kind)
                return future

        request = _Request(kind, feature, parameter, vector, key, trace)
        request.submitted = started
        request.enqueued = time.monotonic()
        self._enqueue(request)
        return request.future

    def _entry_still_valid(
        self,
        kind: str,
        feature: str,
        parameter: int | float,
        vector: np.ndarray,
        old: Hashable,
        new: Hashable,
        results: list[RetrievalResult],
    ) -> bool:
        """Prove a stale-stamped cache entry still equals a fresh query.

        The proof walks the engine's mutation delta log from the
        entry's stamp to the current one.  A k-NN entry survives iff no
        cached result id was removed and every inserted item orders
        *strictly after* the kth result under the engine's total
        ``(distance, id)`` ranking — an insert tying the kth distance
        with a larger id stays outside the top-k, exactly as a fresh
        query would place it.  A range entry survives iff no result id
        was removed and no insert landed inside the closed ball
        (``distance <= radius`` would be reported).  Removals of items
        *outside* the cached result never matter: they ranked after the
        kth (or outside the ball), so dropping them cannot change it.
        Anything unprovable — deltas past the bounded window, a short
        k-NN list that an insert could extend — returns False and the
        entry is invalidated; revalidation can only ever upgrade a miss
        to a hit that matches a fresh query bit for bit.

        Distances are computed with the feature's own metric over the
        same float64 rows the engine indexed, so the comparison floats
        are the ones a fresh query would rank by.  Runs on the caller's
        thread against the locked delta log; the engine itself is never
        touched.
        """
        deltas = self._engine.deltas_between(feature, old, new)
        if deltas is None:
            return False
        removed: set[int] = set()
        inserted: list[tuple[tuple[int, ...], np.ndarray]] = []
        for delta_kind, ids, vectors in deltas:
            if delta_kind == "remove":
                removed.update(ids)
            elif vectors is not None and len(ids):
                inserted.append((ids, vectors))
        if removed and any(result.image_id in removed for result in results):
            return False
        if not inserted:
            return True
        metric = self._db.metric_for(feature)
        if kind == "knn":
            if len(results) < int(parameter):
                # Fewer hits than k means the corpus was smaller than k:
                # any insert could extend the list.  (An empty corpus
                # cannot be queried, so results is never empty here.)
                return False
            kth = results[-1]
            kth_key = (kth.distance, kth.image_id)
            for ids, vectors in inserted:
                distances = metric.distance_batch(vector, vectors)
                for image_id, distance in zip(ids, distances):
                    if (float(distance), image_id) < kth_key:
                        return False
            return True
        radius = float(parameter)
        for _ids, vectors in inserted:
            distances = metric.distance_batch(vector, vectors)
            if np.any(distances <= radius):
                return False
        return True

    def _check_rate_limit(self) -> None:
        if self._limiter is not None and not self._limiter.try_acquire():
            self._stats.record_rate_limited()
            self._m_refused.inc(reason="rate_limited")
            raise RateLimitError(
                f"rate limit exceeded ({self._limiter.rate:g} requests/s, "
                f"burst {self._limiter.burst:g}); back off and retry"
            )

    def submit_add(
        self,
        signatures: Mapping[str, np.ndarray] | np.ndarray,
        *,
        labels: Sequence[str | None] | None = None,
        names: Sequence[str] | None = None,
        trace: Trace | None = None,
    ) -> Future[MutationResult]:
        """Admit an insert of precomputed signatures; future of ids.

        ``signatures`` follows :meth:`ImageDatabase.add_vectors`: a
        ``{feature: (n, d) matrix}`` mapping covering every schema
        feature, or a bare matrix for a single-feature schema.  The
        mutation applies on the worker thread, strictly ordered with
        query batches; validation errors resolve the returned future
        exceptionally and never poison queued queries.
        """
        return self._submit_mutation(
            _Mutation("add", signatures, labels, names, trace)
        )

    def submit_remove(
        self,
        image_ids: Sequence[int],
        *,
        trace: Trace | None = None,
    ) -> Future[MutationResult]:
        """Admit a removal by image id; future of the removed ids.

        Serialized with query batches like :meth:`submit_add`; an
        unknown id fails only this future (the database validates every
        id before touching anything).  A batch naming the same id twice
        is rejected here, at admission, with a
        :class:`~repro.errors.ServeError`: the engine's validate-all-
        first remove treats ids as a set, and silently collapsing the
        duplicates would acknowledge a removal the caller described
        twice.  (Adds never carry caller ids — the allocator hands out
        distinct ones — so this check has no add-side counterpart.)
        """
        ids = [int(image_id) for image_id in image_ids]
        if len(set(ids)) != len(ids):
            counts = Counter(ids)
            duplicates = sorted(i for i, count in counts.items() if count > 1)
            raise ServeError(
                f"duplicate image ids in one remove batch: {duplicates}; "
                f"each id may be named once per batch"
            )
        return self._submit_mutation(_Mutation("remove", ids, trace=trace))

    def submit_save(
        self, *, trace: Trace | None = None
    ) -> Future[MutationResult]:
        """Admit a snapshot-compaction barrier; future of a save marker.

        Requires a configured journal.  The save rides the queue like a
        mutation: the worker folds everything applied so far into a
        fresh snapshot, flips the manifest, and resets the journals
        (``repro.db.recovery.compact``) — strictly ordered between query
        segments, so the snapshot is a point-in-time image.  Resolves to
        a :class:`MutationResult` with ``kind='save'``; without a
        journal the future fails with :class:`~repro.errors.ServeError`.
        Not rate-limited: compaction is an operator action, not traffic.
        """
        if self._closed:
            raise ShuttingDownError("scheduler is closed (shutting down)")
        mutation = _Mutation("save", None, trace=trace)
        self._stats.record_submitted()
        self._m_requests.inc(route="save")
        self._trace_mutation(mutation)
        self._enqueue(mutation)
        return mutation.future

    def _submit_mutation(self, mutation: _Mutation) -> Future[MutationResult]:
        if self._closed:
            raise ShuttingDownError("scheduler is closed (shutting down)")
        self._check_rate_limit()
        self._stats.record_submitted()
        self._m_requests.inc(route=mutation.kind)
        self._trace_mutation(mutation)
        self._enqueue(mutation)
        return mutation.future

    def _trace_mutation(self, mutation: _Mutation) -> None:
        """Open a scheduler-owned trace for an untraced mutation."""
        if mutation.trace is None and self._recorder.enabled:
            mutation.trace = Trace(mutation.kind, owned=True)
        mutation.enqueued = time.monotonic()

    def _enqueue(self, item: "_Request | _Mutation") -> None:
        # The closed-check and the enqueue share the lock close() takes
        # before posting the shutdown sentinel, so a request can never
        # land *behind* the sentinel and strand its future.
        with self._lock:
            if self._closed:
                raise ShuttingDownError("scheduler is closed (shutting down)")
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self._stats.record_rejected()
                self._m_refused.inc(reason="queue_full")
                raise ServeError(
                    f"admission queue full ({self._queue.maxsize} requests); "
                    f"retry later or raise max_queue"
                ) from None

    # ------------------------------------------------------------------
    # Worker: batch forming + execution
    # ------------------------------------------------------------------
    def _run(self) -> None:
        stop = False
        while not stop:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            if self._abandon:
                # Abandoning close (SIGTERM): fail queued work fast with
                # the distinct shutdown signal instead of serving out a
                # backlog on a terminating process.
                self._fail_shutting_down(
                    item, "scheduler is shutting down; request abandoned"
                )
                continue
            item.dequeued = time.monotonic()
            batch = [item]
            deadline = time.monotonic() + self._max_wait_s
            while len(batch) < self._max_batch:
                timeout = deadline - time.monotonic()
                try:
                    # Past the deadline, still drain whatever already
                    # queued up — waiting is over, coalescing is free.
                    more = (
                        self._queue.get_nowait()
                        if timeout <= 0.0
                        else self._queue.get(timeout=timeout)
                    )
                except queue.Empty:
                    break
                if more is _SHUTDOWN:
                    stop = True
                    break
                more.dequeued = time.monotonic()
                batch.append(more)
            self._execute(batch)

    def _execute(self, batch: list["_Request | _Mutation"]) -> None:
        """Replay one formed batch in arrival order.

        Queries coalesce into segments; each mutation *run* is a
        barrier between them — queries admitted before it are answered
        against the pre-mutation database, queries after it against the
        post-mutation one.  Adjacent same-kind mutations coalesce into
        one engine call (one journal record set, one generation bump)
        the way queries coalesce into groups; see :meth:`_collect_run`
        for when a neighbour may join a run.  One formed batch still
        records one ``record_batch`` (queries only), so the coalescing
        figures keep their meaning under mixed traffic.
        """
        n_queries = 0
        group_sizes: list[int] = []
        segment: list[_Request] = []
        # Mutations applied in-memory but not yet acknowledged: their
        # futures resolve only after one *group fsync* at the end of the
        # formed batch (log-before-ack — see docs/durability.md).  A
        # save barrier flushes the pending list early, because the
        # snapshot it writes already makes those mutations durable.
        pending: list[tuple[_Mutation, list[int]]] = []
        position = 0
        while position < len(batch):
            item = batch[position]
            if isinstance(item, _Request):
                segment.append(item)
                position += 1
                continue
            if segment:
                group_sizes.extend(self._execute_queries(segment))
                n_queries += len(segment)
                segment = []
            if item.kind == "save":
                self._apply_save(item, pending)
                position += 1
                continue
            run, position = self._collect_run(batch, position)
            if len(run) == 1:
                self._apply_mutation(run[0], pending)
            else:
                self._apply_coalesced(run, pending)
        if segment:
            group_sizes.extend(self._execute_queries(segment))
            n_queries += len(segment)
        self._ack_pending(pending)
        if n_queries:
            self._stats.record_batch(n_queries, group_sizes)
            self._m_batch_size.observe(n_queries)

    def _collect_run(
        self, batch: list["_Request | _Mutation"], position: int
    ) -> tuple[list[_Mutation], int]:
        """Gather the longest coalescible mutation run starting at ``position``.

        A neighbour joins the run only when applying the merged engine
        call is observably identical to applying the members one by one:

        * same kind (adjacent adds, or adjacent removes — never mixed,
          and a ``save`` barrier always stands alone);
        * adds: every member validates on its own (a malformed payload
          must fail only its future, so it breaks the run and applies —
          and fails — alone) and explicit/default naming is uniform
          (default names derive from allocated ids and cannot be mixed
          into one engine call with explicit ones);
        * removes: every member's ids are live and disjoint from the
          ids already claimed by the run (an overlap or unknown id must
          fail exactly the member that would have failed serially, so
          that member starts its own run and gets the engine's own
          error).

        Returns the run and the position just past it.  The run is
        never empty; an unstageable head is returned alone and takes
        the single-apply path.
        """
        head = batch[position]
        run = [head]
        position += 1
        if head.kind == "add":
            extendable = self._stage_add(head)
            while extendable and position < len(batch):
                nxt = batch[position]
                if (
                    not isinstance(nxt, _Mutation)
                    or nxt.kind != "add"
                    or (nxt.names is None) != (head.names is None)
                    or not self._stage_add(nxt)
                ):
                    break
                run.append(nxt)
                position += 1
        else:
            claimed: set[int] = set()
            extendable = self._stage_remove(head, claimed)
            while extendable and position < len(batch):
                nxt = batch[position]
                if (
                    not isinstance(nxt, _Mutation)
                    or nxt.kind != "remove"
                    or not self._stage_remove(nxt, claimed)
                ):
                    break
                run.append(nxt)
                position += 1
        return run, position

    def _stage_add(self, mutation: _Mutation) -> bool:
        """Pre-validate an add for coalescing; False keeps it solitary."""
        if mutation.staged is not None:
            return True
        try:
            mutation.staged = self._engine.validate_add(
                mutation.payload,  # type: ignore[arg-type]
                labels=mutation.labels,
                names=mutation.names,
            )
        except Exception:
            return False
        return True

    def _stage_remove(self, mutation: _Mutation, claimed: set[int]) -> bool:
        """Check a remove's ids are live and unclaimed by the run."""
        ids = mutation.payload
        assert isinstance(ids, list)
        if any(image_id in claimed for image_id in ids):
            return False
        if not all(self._engine.has_id(image_id) for image_id in ids):
            return False
        claimed.update(ids)
        return True

    def _apply_coalesced(
        self, run: list[_Mutation], pending: list[tuple[_Mutation, list[int]]]
    ) -> None:
        """Apply one coalesced same-kind mutation run as a single barrier.

        One engine call covers every live member — one journal record
        set, one group-fsync share, one generation bump — and the
        result ids are attributed back per future in arrival order
        (adds slice the allocated id range by each member's row count;
        removes keep their own id lists).  An engine failure fails
        every live member: by construction (see :meth:`_collect_run`)
        the merged call only contains members that would each have
        succeeded serially, so a failure here is environmental (e.g. a
        journal write error) and would have hit the serial path too.
        """
        live = [
            mutation
            for mutation in run
            if mutation.future.set_running_or_notify_cancel()
        ]
        if not live:
            return
        kind = live[0].kind
        apply_start = time.monotonic()
        for mutation in live:
            trace = mutation.trace
            if trace is not None and mutation.dequeued is not None:
                if mutation.enqueued is not None:
                    trace.add_span(
                        "queue-wait",
                        mutation.enqueued,
                        mutation.dequeued - mutation.enqueued,
                    )
                trace.add_span(
                    "batch-form",
                    mutation.dequeued,
                    apply_start - mutation.dequeued,
                    coalesced=len(live),
                )
        try:
            if kind == "add":
                staged = [mutation.staged for mutation in live]
                assert all(entry is not None for entry in staged)
                counts = [n_rows for _matrices, n_rows in staged]  # type: ignore[misc]
                merged = {
                    feature: np.vstack(
                        [matrices[feature] for matrices, _n in staged]  # type: ignore[misc]
                    )
                    for feature in staged[0][0]  # type: ignore[index]
                }
                if live[0].names is None:
                    merged_names = None
                else:
                    merged_names = [
                        name for mutation in live for name in mutation.names  # type: ignore[union-attr]
                    ]
                if all(mutation.labels is None for mutation in live):
                    merged_labels = None
                else:
                    merged_labels = []
                    for mutation, n_rows in zip(live, counts):
                        if mutation.labels is None:
                            merged_labels.extend([None] * n_rows)
                        else:
                            merged_labels.extend(mutation.labels)
                ids = self._engine.add_vectors(
                    merged, labels=merged_labels, names=merged_names, sync=False
                )
                id_slices: list[list[int]] = []
                offset = 0
                for n_rows in counts:
                    id_slices.append(ids[offset : offset + n_rows])
                    offset += n_rows
            else:
                all_ids = [
                    image_id for mutation in live for image_id in mutation.payload  # type: ignore[union-attr]
                ]
                self._engine.remove(all_ids, sync=False)
                id_slices = [list(mutation.payload) for mutation in live]  # type: ignore[arg-type]
        except Exception as error:
            for mutation in live:
                if mutation.trace is not None:
                    mutation.trace.annotate(error=str(error))
                    self._resolve_trace(mutation.trace, "error")
                mutation.future.set_exception(error)
            return
        append = self._engine.last_journal_append
        apply_end = time.monotonic()
        for mutation in live:
            trace = mutation.trace
            if trace is None:
                continue
            span_start = apply_start
            if append is not None:
                append_start, append_duration = append
                trace.add_span("journal-append", append_start, append_duration)
                span_start = append_start + append_duration
            trace.add_span("apply", span_start, apply_end - span_start)
        self._stats.record_coalesced(len(live) - 1)
        for mutation, mutation_ids in zip(live, id_slices):
            pending.append((mutation, mutation_ids))

    def _apply_mutation(
        self, mutation: _Mutation, pending: list[tuple[_Mutation, list[int]]]
    ) -> None:
        """Journal + apply one mutation; acknowledgement is deferred.

        ``sync=False`` leaves the journal record buffered: one group
        fsync at the end of the formed batch covers every mutation in
        it (:meth:`_ack_pending`), amortising the durability cost the
        same way coalescing amortises query cost.  Validation errors
        resolve the future exceptionally right here — nothing was
        journaled or applied for a rejected mutation (the engine writes
        the record only after validation, and aborts it if the apply
        itself fails).
        """
        if not mutation.future.set_running_or_notify_cancel():
            return
        trace = mutation.trace
        apply_start = time.monotonic()
        if trace is not None and mutation.dequeued is not None:
            if mutation.enqueued is not None:
                trace.add_span(
                    "queue-wait",
                    mutation.enqueued,
                    mutation.dequeued - mutation.enqueued,
                )
            trace.add_span(
                "batch-form", mutation.dequeued, apply_start - mutation.dequeued
            )
        try:
            if mutation.kind == "add":
                ids = self._engine.add_vectors(
                    mutation.payload,  # type: ignore[arg-type]
                    labels=mutation.labels,
                    names=mutation.names,
                    sync=False,
                )
            else:
                ids = self._engine.remove(
                    mutation.payload, sync=False  # type: ignore[arg-type]
                )
        except Exception as error:
            if trace is not None:
                trace.annotate(error=str(error))
                self._resolve_trace(trace, "error")
            mutation.future.set_exception(error)
            return
        if trace is not None:
            # The append happened inside the engine call; splitting it
            # out keeps the spans non-overlapping (apply = what remains
            # of the engine call after the journal write).
            append = self._engine.last_journal_append
            apply_end = time.monotonic()
            if append is not None:
                append_start, append_duration = append
                trace.add_span("journal-append", append_start, append_duration)
                apply_start = append_start + append_duration
            trace.add_span("apply", apply_start, apply_end - apply_start)
        pending.append((mutation, ids))

    def _ack_pending(
        self,
        pending: list[tuple[_Mutation, list[int]]],
        *,
        sync: bool = True,
    ) -> None:
        """Resolve deferred mutation futures after a group fsync.

        With ``sync=False`` (the post-compaction path) the fsync is
        skipped: the snapshot just written already holds the pending
        mutations, which is a *stronger* durability guarantee than a
        journal record.  A failed fsync fails every pending future —
        the in-memory state is ahead of disk at that point, and
        acknowledging would break the acked-implies-durable contract
        (the process keeps serving; the operator decides whether the
        volume is trustworthy).
        """
        if not pending:
            return
        fsync_start = fsync_duration = 0.0
        if sync:
            fsync_start = time.monotonic()
            try:
                self._engine.sync_journal()
            except Exception as error:
                for mutation, _ids in pending:
                    self._resolve_trace(mutation.trace, "error")
                    mutation.future.set_exception(error)
                pending.clear()
                return
            fsync_duration = time.monotonic() - fsync_start
        generations = self._engine.generations()
        for mutation, ids in pending:
            self._stats.record_mutation()
            trace = mutation.trace
            if trace is not None and sync and self._journal is not None:
                # One group fsync covered every pending mutation; each
                # trace carries the same span — that sharing *is* the
                # group-commit story, visible in the waterfall.
                trace.add_span("journal-fsync", fsync_start, fsync_duration)
            respond_start = time.monotonic()
            latency = time.monotonic() - mutation.submitted
            self._m_latency.observe(latency, route=mutation.kind)
            result = MutationResult(
                kind=mutation.kind,
                ids=ids,
                generations=generations,
                latency_s=latency,
                trace_id=trace.trace_id if trace is not None else None,
            )
            if trace is not None and trace.owned:
                trace.add_span(
                    "respond", respond_start, time.monotonic() - respond_start
                )
                self.finish_trace(trace)
            mutation.future.set_result(result)
        pending.clear()

    def _apply_save(
        self, save: _Mutation, pending: list[tuple[_Mutation, list[int]]]
    ) -> None:
        """Run the snapshot-compaction barrier (``submit_save``).

        On success the fresh snapshot *is* the durability of every
        pending mutation, so they are acknowledged without an extra
        fsync.  On failure the pending mutations still get their normal
        group fsync (the journals are untouched until the manifest
        flip) and only the save future carries the error.
        """
        if not save.future.set_running_or_notify_cancel():
            return
        trace = save.trace
        if trace is not None and save.dequeued is not None:
            if save.enqueued is not None:
                trace.add_span(
                    "queue-wait", save.enqueued, save.dequeued - save.enqueued
                )
        if self._journal is None:
            self._ack_pending(pending)
            self._resolve_trace(trace, "error")
            save.future.set_exception(
                ServeError(
                    "no journal configured; construct the scheduler with "
                    "journal= (repro serve --journal DIR) to enable snapshots"
                )
            )
            return
        compact_start = time.monotonic()
        try:
            compact(self._journal, self._engine.merged_database())
        except Exception as error:
            self._ack_pending(pending)
            if trace is not None:
                trace.annotate(error=str(error))
                self._resolve_trace(trace, "error")
            save.future.set_exception(error)
            return
        if trace is not None:
            trace.add_span(
                "compact", compact_start, time.monotonic() - compact_start
            )
        self._ack_pending(pending, sync=False)
        self._stats.record_save()
        respond_start = time.monotonic()
        latency = time.monotonic() - save.submitted
        self._m_latency.observe(latency, route="save")
        result = MutationResult(
            kind="save",
            ids=[],
            generations=self._engine.generations(),
            latency_s=latency,
            trace_id=trace.trace_id if trace is not None else None,
        )
        if trace is not None and trace.owned:
            trace.add_span(
                "respond", respond_start, time.monotonic() - respond_start
            )
            self.finish_trace(trace)
        save.future.set_result(result)

    def _execute_queries(self, segment: list[_Request]) -> list[int]:
        """Run one mutation-free query segment; returns its group sizes."""
        groups: dict[tuple[str, str, int | float], list[_Request]] = {}
        for request in segment:
            groups.setdefault(
                (request.kind, request.feature, request.parameter), []
            ).append(request)
        for (kind, feature, parameter), members in groups.items():
            live = [
                request
                for request in members
                if request.future.set_running_or_notify_cancel()
            ]
            if not live:
                continue
            # In-flight dedup: identical queries inside one formed group
            # (same kind/feature/parameter by grouping, byte-identical
            # vector here) are evaluated once; every duplicate's future
            # is fanned the same results.  Byte equality implies the same
            # floats, so the engine answer — and the per-request stats
            # attribution — is bit-identical to evaluating each copy.
            slots: dict[bytes, int] = {}
            unique: list[_Request] = []
            assignment: list[int] = []
            for request in live:
                digest = request.vector.tobytes()
                slot = slots.get(digest)
                if slot is None:
                    slot = len(unique)
                    slots[digest] = slot
                    unique.append(request)
                assignment.append(slot)
            if len(unique) < len(live):
                self._stats.record_dedup(len(live) - len(unique))
            vectors = np.stack([request.vector for request in unique])
            group_start = time.monotonic()
            for request in live:
                if request.trace is not None and request.dequeued is not None:
                    if request.enqueued is not None:
                        request.trace.add_span(
                            "queue-wait",
                            request.enqueued,
                            request.dequeued - request.enqueued,
                        )
                    request.trace.add_span(
                        "batch-form",
                        request.dequeued,
                        group_start - request.dequeued,
                        group_size=len(unique),
                    )
            try:
                if kind == "knn":
                    result_lists, per_slot_stats = self._engine.query_batch(
                        vectors, int(parameter), feature
                    )
                else:
                    result_lists, per_slot_stats = self._engine.range_query_batch(
                        vectors, float(parameter), feature
                    )
            except Exception as error:  # pragma: no cover - defensive
                for request in live:
                    self._resolve_trace(request.trace, "error")
                    request.future.set_exception(error)
                continue
            # Per-shard call timing + per-row cost from the engine's
            # scatter report (single-caller: the worker thread is the
            # only reader, and the report is from *this* call).
            scatter = self._engine.last_scatter
            # Stamp cached entries with the generation the engine call
            # ran under — the worker serializes mutations, so this read
            # cannot race a concurrent add/remove.  Sharded schedulers
            # stamp the per-shard generation tuple.
            generation = self._engine.generation(feature)
            for request, slot in zip(live, assignment):
                trace = request.trace
                if trace is not None and scatter is not None:
                    for call in scatter.shard_calls:
                        trace.add_span(
                            "engine",
                            call.start,
                            call.duration_s,
                            shard=call.shard,
                            distance_computations=call.stats[
                                slot
                            ].distance_computations,
                        )
                    trace.add_span(
                        "merge", scatter.merge_start, scatter.merge_duration_s
                    )
                respond_start = time.monotonic()
                results = result_lists[slot]
                if request.key is not None:
                    self._cache.put(request.key, results, generation)
                latency = time.monotonic() - request.submitted
                served = ServedResult(
                    list(results),
                    per_slot_stats[slot],
                    len(unique),
                    False,
                    latency,
                    trace.trace_id if trace is not None else None,
                )
                if trace is not None and trace.owned:
                    trace.add_span(
                        "respond", respond_start, time.monotonic() - respond_start
                    )
                    self.finish_trace(trace)
                request.future.set_result(served)
                self._stats.record_completed(latency)
                self._m_latency.observe(latency, route=kind)
        return [len(members) for members in groups.values()]

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("running" if self._started else "staged")
        return (
            f"QueryScheduler({state}, max_batch={self._max_batch}, "
            f"max_wait_ms={self._max_wait_s * 1e3:g}, "
            f"shards={self._engine.n_shards}, items={self._engine.size})"
        )
