"""Operational metrics: log-spaced histograms, counters, gauges, Prometheus text.

The :class:`~repro.serve.stats.ServiceStats` snapshot answers "how is
the service doing right now" for a human; this module is the machine
counterpart — the fixed-cost, scrape-oriented surface a fleet monitor
watches.  Everything is plain stdlib + O(1) per observation:

* :class:`LatencyHistogram` — fixed **log-spaced** buckets (each bound
  double the last), so one array of integers covers 100 µs to ~3 s with
  constant relative error and no per-request allocation.  Cumulative
  bucket counts follow Prometheus histogram semantics (``le`` upper
  bounds, ``+Inf`` implicit in ``count``).
* :class:`CounterFamily`, :class:`GaugeFamily`,
  :class:`HistogramFamily` — labelled metric families with one fixed
  label schema each (``route=...``, ``shard=...``).
* :class:`MetricsRegistry` — owns the families and renders the standard
  `Prometheus text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_, the
  body of the HTTP front end's ``GET /metrics``.

The scheduler owns one registry and feeds it on the hot path (one lock
plus one integer increment per observation); scrape-time values that
already live elsewhere (queue depth, shard sizes, cache counters) are
set as gauges immediately before rendering rather than double-counted.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

from repro.errors import ServeError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "LatencyHistogram",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "read_process_stats",
    "parse_exposition",
    "validate_exposition",
]

#: Log-spaced latency bounds in seconds: 100 µs doubling to ~3.3 s.
#: 16 buckets cover a cache hit (~0.1 ms) to a badly saturated queue
#: with ~2x relative resolution everywhere in between.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-4 * (2.0**i) for i in range(16)
)

#: Log-spaced size bounds (requests per formed batch / group).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def _format_value(value: float | int) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    body = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(names, values)
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class LatencyHistogram:
    """Fixed-bucket histogram: O(1) observe, cumulative-count snapshot.

    Parameters
    ----------
    buckets:
        Ascending upper bounds (``le`` values).  The overflow bucket
        (``+Inf``) is implicit; :attr:`count` includes it.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = [float(bound) for bound in buckets]
        if not bounds:
            raise ServeError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ServeError(f"bucket bounds must be strictly ascending: {bounds}")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> list[float]:
        """The bucket upper bounds (ascending, ``+Inf`` implicit)."""
        return list(self._bounds)

    @property
    def count(self) -> int:
        """Total observations (all buckets, overflow included)."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one value into its bucket."""
        value = float(value)
        slot = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per bound (Prometheus ``le`` semantics),
        *excluding* the implicit ``+Inf`` bucket (that one is
        :attr:`count`)."""
        with self._lock:
            out = []
            running = 0
            for count in self._counts[:-1]:
                running += count
                out.append(running)
            return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket containing the ``q``-th observation; 0.0 when empty)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, int(q * self._count + 0.999999))
            running = 0
            for slot, count in enumerate(self._counts):
                running += count
                if running >= rank:
                    return (
                        self._bounds[slot]
                        if slot < len(self._bounds)
                        else float("inf")
                    )
            return float("inf")  # pragma: no cover - unreachable


class _Family:
    """Shared shape of one named metric family with fixed label names."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str]) -> None:
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ServeError(
                f"metric {self.name} takes labels {list(self.label_names)}; "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class CounterFamily(_Family):
    """Monotonic counters, one per label combination."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple[str, ...], int] = {}

    def inc(self, amount: int = 1, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> int:
        """Current count for one label combination (0 if never touched)."""
        return self._values.get(self._key(labels), 0)

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            if not self._values and not self.label_names:
                lines.append(f"{self.name} 0")
            for key in sorted(self._values):
                lines.append(
                    f"{self.name}{_format_labels(self.label_names, key)} "
                    f"{_format_value(self._values[key])}"
                )
        return lines


class GaugeFamily(_Family):
    """Point-in-time values, one per label combination."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._values):
                lines.append(
                    f"{self.name}{_format_labels(self.label_names, key)} "
                    f"{_format_value(self._values[key])}"
                )
        return lines


class HistogramFamily(_Family):
    """One :class:`LatencyHistogram` per label combination."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        self._buckets = tuple(float(bound) for bound in buckets)
        self._histograms: dict[tuple[str, ...], LatencyHistogram] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = LatencyHistogram(self._buckets)
        histogram.observe(value)

    def histogram(self, **labels: str) -> LatencyHistogram | None:
        """The per-label histogram, or ``None`` if never observed."""
        return self._histograms.get(self._key(labels))

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._histograms.items())
        for key, histogram in items:
            cumulative = histogram.cumulative()
            for bound, running in zip(histogram.bounds, cumulative):
                labels = _format_labels(
                    self.label_names + ("le",), key + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{labels} {running}")
            inf_labels = _format_labels(self.label_names + ("le",), key + ("+Inf",))
            lines.append(f"{self.name}_bucket{inf_labels} {histogram.count}")
            plain = _format_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(histogram.sum)}")
            lines.append(f"{self.name}_count{plain} {histogram.count}")
        return lines


class MetricsRegistry:
    """Owns metric families in registration order; renders exposition text.

    The scheduler registers its families once at construction and holds
    direct references for the hot path; :meth:`render` walks the
    registry for ``GET /metrics``.
    """

    #: Content type of the rendered exposition body.
    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def counter(
        self, name: str, help_text: str, label_names: Sequence[str] = ()
    ) -> CounterFamily:
        return self._register(CounterFamily(name, help_text, label_names))

    def gauge(
        self, name: str, help_text: str, label_names: Sequence[str] = ()
    ) -> GaugeFamily:
        return self._register(GaugeFamily(name, help_text, label_names))

    def histogram(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        return self._register(
            HistogramFamily(name, help_text, label_names, buckets)
        )

    def _register(self, family: _Family) -> "_Family":
        with self._lock:
            if family.name in self._families:
                raise ServeError(f"metric {family.name!r} is already registered")
            self._families[family.name] = family
        return family

    def render(self) -> str:
        """The Prometheus text exposition body (trailing newline included)."""
        with self._lock:
            families = list(self._families.values())
        lines: list[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Process-level resource figures (GET /metrics gauges)
# ---------------------------------------------------------------------------
def read_process_stats() -> dict:
    """Point-in-time resource figures for this process.

    Returns ``rss_bytes`` (resident set size), ``open_fds`` (open file
    descriptors), ``threads`` (live Python threads), and
    ``gc_collections`` (completed collections per GC generation).  Reads
    ``/proc/self`` where available (Linux); elsewhere RSS falls back to
    ``resource.getrusage`` peak-RSS (the closest portable figure) and
    ``open_fds`` to 0.  Never raises: a figure that cannot be read
    reports 0 rather than failing a metrics scrape.
    """
    rss_bytes = 0
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    rss_bytes = int(line.split()[1]) * 1024  # kB field
                    break
    except (OSError, ValueError, IndexError):
        try:
            import resource

            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # ru_maxrss is bytes on macOS, kilobytes on Linux.
            rss_bytes = int(peak) if sys.platform == "darwin" else int(peak) * 1024
        except Exception:
            rss_bytes = 0
    try:
        open_fds = len(os.listdir("/proc/self/fd"))
    except OSError:
        open_fds = 0
    return {
        "rss_bytes": rss_bytes,
        "open_fds": open_fds,
        "threads": threading.active_count(),
        "gc_collections": [
            int(generation.get("collections", 0)) for generation in gc.get_stats()
        ],
    }


# ---------------------------------------------------------------------------
# Exposition-format parsing + validation (tests, CI live-scrape check)
# ---------------------------------------------------------------------------
def _parse_label_block(block: str, line: str) -> dict[str, str]:
    """Parse ``name="value",...`` with the \\\\, \\", \\n escapes."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(block):
        eq = block.find("=", i)
        if eq < 0:
            raise ServeError(f"malformed label block in line: {line!r}")
        name = block[i:eq].strip()
        if not name or block[eq + 1 : eq + 2] != '"':
            raise ServeError(f"malformed label block in line: {line!r}")
        value_chars: list[str] = []
        j = eq + 2
        while j < len(block):
            char = block[j]
            if char == "\\":
                if j + 1 >= len(block):
                    raise ServeError(f"dangling escape in line: {line!r}")
                escaped = block[j + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escaped, "\\" + escaped)
                )
                j += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            j += 1
        else:
            raise ServeError(f"unterminated label value in line: {line!r}")
        if name in labels:
            raise ServeError(f"duplicate label {name!r} in line: {line!r}")
        labels[name] = "".join(value_chars)
        i = j + 1
        if i < len(block):
            if block[i] != ",":
                raise ServeError(f"malformed label separator in line: {line!r}")
            i += 1
    return labels


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse Prometheus text format 0.0.4 into families.

    Returns ``{family_name: {"help": str, "type": str, "samples":
    [(sample_name, labels_dict, value), ...]}}``.  Raises
    :class:`~repro.errors.ServeError` on grammatical violations: a
    sample before its ``# TYPE``, a malformed label block, a
    non-numeric value.  Semantic histogram checks live in
    :func:`validate_exposition`.
    """
    families: dict[str, dict] = {}

    def family_of(sample_name: str) -> str | None:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base]["type"] == "histogram":
                return base
        return sample_name if sample_name in families else None

    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ServeError(f"malformed HELP line: {line!r}")
            name, help_text = parts[2], parts[3]
            entry = families.setdefault(
                name, {"help": None, "type": None, "samples": []}
            )
            if entry["help"] is not None:
                raise ServeError(f"duplicate HELP for {name!r}")
            entry["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ServeError(f"malformed TYPE line: {line!r}")
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ServeError(f"unknown metric type {kind!r} in line: {line!r}")
            entry = families.setdefault(
                name, {"help": None, "type": None, "samples": []}
            )
            if entry["type"] is not None:
                raise ServeError(f"duplicate TYPE for {name!r}")
            if entry["samples"]:
                raise ServeError(f"TYPE for {name!r} appears after its samples")
            entry["type"] = kind
            continue
        if line.startswith("#"):
            continue  # plain comment
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ServeError(f"unbalanced braces in line: {line!r}")
            sample_name = line[:brace]
            labels = _parse_label_block(line[brace + 1 : close], line)
            value_text = line[close + 1 :].strip()
        else:
            pieces = line.split()
            if len(pieces) not in (2, 3):  # optional trailing timestamp
                raise ServeError(f"malformed sample line: {line!r}")
            sample_name, value_text = pieces[0], pieces[1]
            labels = {}
        try:
            value = float(value_text.split()[0])
        except (ValueError, IndexError):
            raise ServeError(f"non-numeric sample value in line: {line!r}") from None
        base = family_of(sample_name)
        if base is None or families[base]["type"] is None:
            raise ServeError(
                f"sample {sample_name!r} has no preceding # TYPE declaration"
            )
        families[base]["samples"].append((sample_name, labels, value))
    return families


def validate_exposition(text: str) -> dict[str, dict]:
    """Parse *and* semantically validate an exposition body.

    On top of :func:`parse_exposition`'s grammar checks, enforces per
    family: HELP and TYPE both present; counter/gauge samples use the
    bare family name with no duplicate label sets; histograms have
    strictly ascending finite ``le`` bounds, non-decreasing cumulative
    bucket counts, a ``+Inf`` bucket exactly equal to ``_count``, and a
    ``_sum`` per label set.  Returns the parsed families (so tests can
    roundtrip values); raises :class:`~repro.errors.ServeError` on the
    first violation.  The CI serve smoke runs this against a live
    ``GET /metrics`` scrape.
    """
    families = parse_exposition(text)
    for name, entry in families.items():
        if entry["help"] is None:
            raise ServeError(f"family {name!r} has no # HELP line")
        if entry["type"] is None:
            raise ServeError(f"family {name!r} has no # TYPE line")
        if entry["type"] in ("counter", "gauge"):
            seen: set[tuple] = set()
            for sample_name, labels, _value in entry["samples"]:
                if sample_name != name:
                    raise ServeError(
                        f"{entry['type']} family {name!r} has stray sample "
                        f"{sample_name!r}"
                    )
                key = tuple(sorted(labels.items()))
                if key in seen:
                    raise ServeError(
                        f"duplicate sample {sample_name!r} labels {labels!r}"
                    )
                seen.add(key)
        elif entry["type"] == "histogram":
            series: dict[tuple, dict] = {}
            for sample_name, labels, value in entry["samples"]:
                plain = {k: v for k, v in labels.items() if k != "le"}
                key = tuple(sorted(plain.items()))
                slot = series.setdefault(key, {"buckets": [], "sum": None, "count": None})
                if sample_name == f"{name}_bucket":
                    if "le" not in labels:
                        raise ServeError(f"bucket sample without le: {labels!r}")
                    slot["buckets"].append((labels["le"], value))
                elif sample_name == f"{name}_sum":
                    slot["sum"] = value
                elif sample_name == f"{name}_count":
                    slot["count"] = value
                else:
                    raise ServeError(
                        f"histogram family {name!r} has stray sample {sample_name!r}"
                    )
            for key, slot in series.items():
                if slot["count"] is None or slot["sum"] is None:
                    raise ServeError(
                        f"histogram {name!r} series {dict(key)!r} missing _sum/_count"
                    )
                bounds: list[float] = []
                counts: list[float] = []
                inf_count = None
                for le_text, value in slot["buckets"]:
                    if le_text == "+Inf":
                        inf_count = value
                        continue
                    try:
                        bounds.append(float(le_text))
                    except ValueError:
                        raise ServeError(
                            f"histogram {name!r} has non-numeric le {le_text!r}"
                        ) from None
                    counts.append(value)
                if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                    raise ServeError(
                        f"histogram {name!r} le bounds not ascending: {bounds}"
                    )
                if any(c2 < c1 for c1, c2 in zip(counts, counts[1:])):
                    raise ServeError(
                        f"histogram {name!r} bucket counts not cumulative: {counts}"
                    )
                if inf_count is None:
                    raise ServeError(
                        f"histogram {name!r} series {dict(key)!r} has no +Inf bucket"
                    )
                if counts and counts[-1] > inf_count:
                    raise ServeError(
                        f"histogram {name!r} finite buckets exceed +Inf: "
                        f"{counts[-1]} > {inf_count}"
                    )
                if inf_count != slot["count"]:
                    raise ServeError(
                        f"histogram {name!r} +Inf bucket {inf_count} != _count "
                        f"{slot['count']}"
                    )
    return families
