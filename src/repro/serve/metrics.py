"""Operational metrics: log-spaced histograms, counters, gauges, Prometheus text.

The :class:`~repro.serve.stats.ServiceStats` snapshot answers "how is
the service doing right now" for a human; this module is the machine
counterpart — the fixed-cost, scrape-oriented surface a fleet monitor
watches.  Everything is plain stdlib + O(1) per observation:

* :class:`LatencyHistogram` — fixed **log-spaced** buckets (each bound
  double the last), so one array of integers covers 100 µs to ~3 s with
  constant relative error and no per-request allocation.  Cumulative
  bucket counts follow Prometheus histogram semantics (``le`` upper
  bounds, ``+Inf`` implicit in ``count``).
* :class:`CounterFamily`, :class:`GaugeFamily`,
  :class:`HistogramFamily` — labelled metric families with one fixed
  label schema each (``route=...``, ``shard=...``).
* :class:`MetricsRegistry` — owns the families and renders the standard
  `Prometheus text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_, the
  body of the HTTP front end's ``GET /metrics``.

The scheduler owns one registry and feeds it on the hot path (one lock
plus one integer increment per observation); scrape-time values that
already live elsewhere (queue depth, shard sizes, cache counters) are
set as gauges immediately before rendering rather than double-counted.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

from repro.errors import ServeError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "LatencyHistogram",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
]

#: Log-spaced latency bounds in seconds: 100 µs doubling to ~3.3 s.
#: 16 buckets cover a cache hit (~0.1 ms) to a badly saturated queue
#: with ~2x relative resolution everywhere in between.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-4 * (2.0**i) for i in range(16)
)

#: Log-spaced size bounds (requests per formed batch / group).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def _format_value(value: float | int) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    body = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(names, values)
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class LatencyHistogram:
    """Fixed-bucket histogram: O(1) observe, cumulative-count snapshot.

    Parameters
    ----------
    buckets:
        Ascending upper bounds (``le`` values).  The overflow bucket
        (``+Inf``) is implicit; :attr:`count` includes it.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = [float(bound) for bound in buckets]
        if not bounds:
            raise ServeError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ServeError(f"bucket bounds must be strictly ascending: {bounds}")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> list[float]:
        """The bucket upper bounds (ascending, ``+Inf`` implicit)."""
        return list(self._bounds)

    @property
    def count(self) -> int:
        """Total observations (all buckets, overflow included)."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def observe(self, value: float) -> None:
        """Record one value into its bucket."""
        value = float(value)
        slot = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per bound (Prometheus ``le`` semantics),
        *excluding* the implicit ``+Inf`` bucket (that one is
        :attr:`count`)."""
        with self._lock:
            out = []
            running = 0
            for count in self._counts[:-1]:
                running += count
                out.append(running)
            return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket containing the ``q``-th observation; 0.0 when empty)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, int(q * self._count + 0.999999))
            running = 0
            for slot, count in enumerate(self._counts):
                running += count
                if running >= rank:
                    return (
                        self._bounds[slot]
                        if slot < len(self._bounds)
                        else float("inf")
                    )
            return float("inf")  # pragma: no cover - unreachable


class _Family:
    """Shared shape of one named metric family with fixed label names."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str]) -> None:
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ServeError(
                f"metric {self.name} takes labels {list(self.label_names)}; "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class CounterFamily(_Family):
    """Monotonic counters, one per label combination."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple[str, ...], int] = {}

    def inc(self, amount: int = 1, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> int:
        """Current count for one label combination (0 if never touched)."""
        return self._values.get(self._key(labels), 0)

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            if not self._values and not self.label_names:
                lines.append(f"{self.name} 0")
            for key in sorted(self._values):
                lines.append(
                    f"{self.name}{_format_labels(self.label_names, key)} "
                    f"{_format_value(self._values[key])}"
                )
        return lines


class GaugeFamily(_Family):
    """Point-in-time values, one per label combination."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._values):
                lines.append(
                    f"{self.name}{_format_labels(self.label_names, key)} "
                    f"{_format_value(self._values[key])}"
                )
        return lines


class HistogramFamily(_Family):
    """One :class:`LatencyHistogram` per label combination."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        self._buckets = tuple(float(bound) for bound in buckets)
        self._histograms: dict[tuple[str, ...], LatencyHistogram] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = LatencyHistogram(self._buckets)
        histogram.observe(value)

    def histogram(self, **labels: str) -> LatencyHistogram | None:
        """The per-label histogram, or ``None`` if never observed."""
        return self._histograms.get(self._key(labels))

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._histograms.items())
        for key, histogram in items:
            cumulative = histogram.cumulative()
            for bound, running in zip(histogram.bounds, cumulative):
                labels = _format_labels(
                    self.label_names + ("le",), key + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{labels} {running}")
            inf_labels = _format_labels(self.label_names + ("le",), key + ("+Inf",))
            lines.append(f"{self.name}_bucket{inf_labels} {histogram.count}")
            plain = _format_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(histogram.sum)}")
            lines.append(f"{self.name}_count{plain} {histogram.count}")
        return lines


class MetricsRegistry:
    """Owns metric families in registration order; renders exposition text.

    The scheduler registers its families once at construction and holds
    direct references for the hot path; :meth:`render` walks the
    registry for ``GET /metrics``.
    """

    #: Content type of the rendered exposition body.
    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def counter(
        self, name: str, help_text: str, label_names: Sequence[str] = ()
    ) -> CounterFamily:
        return self._register(CounterFamily(name, help_text, label_names))

    def gauge(
        self, name: str, help_text: str, label_names: Sequence[str] = ()
    ) -> GaugeFamily:
        return self._register(GaugeFamily(name, help_text, label_names))

    def histogram(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        return self._register(
            HistogramFamily(name, help_text, label_names, buckets)
        )

    def _register(self, family: _Family) -> "_Family":
        with self._lock:
            if family.name in self._families:
                raise ServeError(f"metric {family.name!r} is already registered")
            self._families[family.name] = family
        return family

    def render(self) -> str:
        """The Prometheus text exposition body (trailing newline included)."""
        with self._lock:
            families = list(self._families.values())
        lines: list[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n"
