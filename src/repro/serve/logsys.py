"""Structured JSON event logging: sampled, rate-limited, one line per event.

The HTTP front end used to silence per-request logging outright —
``http.server``'s default apache-style lines are unparseable noise at
service rates, and printing them unconditionally would melt a hot
serve loop.  This module is the replacement: an opt-in
:class:`StructuredLog` that emits **one JSON object per line** (the
format every log shipper ingests natively), with two independent
pressure valves so logging can stay on in production:

* **sampling** — ``sample_every=N`` keeps 1 in N events
  (deterministic round-robin, not random, so a test can predict which
  events survive);
* **rate limiting** — at most ``rate_limit_per_s`` emitted events per
  wall-clock second (fixed one-second windows, O(1) per event).  Events
  dropped by the limiter are *counted*, and the next emitted line
  carries ``"dropped": n`` so the gap is visible in the stream instead
  of silent.

The HTTP layer (``repro serve --access-log``) feeds it one
``http_request`` event per handled request — method, path, status,
latency, and the request's trace id, which is the join key into
``GET /debug/trace?id=`` — plus ``http_error`` events for the
handler-level notices ``log_message`` used to swallow.

Everything is stdlib, thread-safe, and O(1) per event; an event that
loses the sample/rate race costs one lock acquisition and two integer
updates.  See ``docs/observability.md``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO

from repro.errors import ServeError

__all__ = ["StructuredLog"]


class StructuredLog:
    """Thread-safe JSON-lines event sink with sampling + rate limiting.

    Parameters
    ----------
    stream:
        Where lines go (default ``sys.stderr``).  Anything with
        ``write``/``flush``; a test hands in ``io.StringIO``.
    sample_every:
        Keep 1 event in N (default 1 = keep everything).  Applied
        before rate limiting, so the limiter budget is spent on the
        events sampling already chose.
    rate_limit_per_s:
        Maximum emitted events per wall-clock second (default 200);
        ``None`` disables limiting.  Excess events are dropped and
        counted; the next emitted line reports the gap.
    clock:
        Injectable time source (tests); defaults to ``time.time``.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        sample_every: int = 1,
        rate_limit_per_s: float | None = 200.0,
        clock=time.time,
    ) -> None:
        if sample_every < 1:
            raise ServeError(f"sample_every must be >= 1; got {sample_every}")
        if rate_limit_per_s is not None and rate_limit_per_s <= 0.0:
            raise ServeError(
                f"rate_limit_per_s must be > 0 or None; got {rate_limit_per_s}"
            )
        self._stream = stream if stream is not None else sys.stderr
        self._sample_every = int(sample_every)
        self._rate_limit = rate_limit_per_s
        self._clock = clock
        self._lock = threading.Lock()
        self._seen = 0
        self._emitted = 0
        self._sampled_out = 0
        self._rate_dropped = 0
        self._dropped_unreported = 0
        self._window_start = 0.0
        self._window_count = 0

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    @property
    def emitted(self) -> int:
        """Lines actually written."""
        return self._emitted

    @property
    def sampled_out(self) -> int:
        """Events skipped by 1-in-N sampling."""
        return self._sampled_out

    @property
    def rate_dropped(self) -> int:
        """Events dropped because the per-second budget was spent."""
        return self._rate_dropped

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def event(self, name: str, *, force: bool = False, **fields: object) -> bool:
        """Emit one event line; returns True when a line was written.

        ``force`` bypasses sampling and rate limiting — for events that
        must never be lost (startup/shutdown markers).  Field values
        that are not JSON-native are stringified rather than failing the
        request that logged them.
        """
        now = self._clock()
        with self._lock:
            self._seen += 1
            if not force:
                if self._sample_every > 1 and (self._seen % self._sample_every) != 0:
                    self._sampled_out += 1
                    return False
                if self._rate_limit is not None:
                    if now - self._window_start >= 1.0:
                        self._window_start = now
                        self._window_count = 0
                    if self._window_count >= self._rate_limit:
                        self._rate_dropped += 1
                        self._dropped_unreported += 1
                        return False
                    self._window_count += 1
            payload: dict = {"ts": round(now, 6), "event": name}
            if self._dropped_unreported:
                payload["dropped"] = self._dropped_unreported
                self._dropped_unreported = 0
            payload.update(fields)
            line = json.dumps(payload, default=str, separators=(",", ":"))
            self._emitted += 1
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):  # closed/broken stream: never
                pass  # let logging take down the request being logged
            return True

    def __repr__(self) -> str:
        return (
            f"StructuredLog(emitted={self._emitted}, "
            f"sampled_out={self._sampled_out}, rate_dropped={self._rate_dropped})"
        )
