"""End-to-end request tracing: spans, flight recorder, slow-query log.

The paper's cost model is exact — distance computations per query — and
``/stats`` / ``/metrics`` aggregate faithfully, but aggregates cannot
answer the forensic question *"why was THIS request slow?"*.  This
module gives every request a **trace**: an id (accepted from an inbound
W3C ``traceparent`` header or generated fresh, echoed back as
``X-Repro-Trace-Id``) plus one :class:`Span` per pipeline stage —
``admit``, ``cache-lookup``, ``queue-wait``, ``batch-form``, one
``engine`` span per shard call (carrying that shard's exact
``SearchStats.distance_computations`` for this query), ``merge``,
``journal-append`` / ``journal-fsync`` on the write path, and
``respond``.

Hot-path cost is O(1) per stage: a span is one ``time.monotonic()``
read and one list append; completing a trace is one bounded-deque
append.  No locks are taken while a trace is *open* — a trace is only
ever touched by one thread at a time (the submitting thread hands it to
the worker through the admission queue, which is the happens-before
edge; the HTTP handler touches it again only after the request's future
resolves).

Completed traces land in two bounded sinks:

* :class:`FlightRecorder` — a ring buffer of the most recent traces
  (default depth 256).  Old traces fall off the back; the recorder
  never grows.  Served raw by ``GET /debug/traces`` and
  ``GET /debug/trace?id=``.
* :class:`SlowQueryLog` — traces whose end-to-end latency crossed a
  threshold (default 100 ms) are *also* kept here, so a burst of fast
  traffic cannot flush the evidence of the one slow request out of the
  ring.  Served by ``GET /debug/slow``.

Both sinks store plain :class:`Trace` objects; :meth:`Trace.to_dict`
is the wire form and :func:`format_trace` renders a human waterfall
(the ``repro trace`` CLI subcommand).

Span-sum sanity: stages are recorded back-to-back on a single worker
(engine shard calls being the exception — they run concurrently on the
shard threads), so for an unsharded service the span durations sum to
within the trace's end-to-end latency; the gap that remains *is* the
untraced residue (queue hand-off, future wake-up), and the acceptance
test pins it.  See ``docs/observability.md``.
"""

from __future__ import annotations

import os
import re
import threading
import time
from collections import deque
from typing import Iterator

__all__ = [
    "Span",
    "Trace",
    "FlightRecorder",
    "SlowQueryLog",
    "parse_traceparent",
    "format_trace",
]

#: W3C trace-context ``traceparent``: version-traceid-parentid-flags.
_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """Parse a W3C ``traceparent`` header into ``(trace_id, parent_id)``.

    Returns ``None`` for a missing or malformed header (the caller then
    generates a fresh id — a bad header must never fail a request), or
    for the all-zero trace id the spec declares invalid.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    version, trace_id, parent_id = match.group(1), match.group(2), match.group(3)
    if version == "ff" or trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return trace_id, parent_id


def _new_trace_id() -> str:
    """A fresh 16-byte trace id, hex-encoded (W3C width)."""
    return os.urandom(16).hex()


class Span:
    """One timed pipeline stage inside a trace.

    ``start`` is an absolute ``time.monotonic()`` timestamp — the trace
    knows its own start, so offsets fall out at render time, and spans
    recorded on different threads (shard calls) stay on one clock.
    ``annotations`` carries stage-specific facts: the engine spans carry
    ``shard`` and ``distance_computations``.
    """

    __slots__ = ("stage", "start", "duration_s", "annotations")

    def __init__(
        self,
        stage: str,
        start: float,
        duration_s: float,
        annotations: dict | None = None,
    ) -> None:
        self.stage = stage
        self.start = start
        self.duration_s = duration_s
        self.annotations = annotations

    def to_dict(self, trace_start: float) -> dict:
        """Wire form, with the offset made relative to the trace start."""
        payload = {
            "stage": self.stage,
            "offset_ms": (self.start - trace_start) * 1e3,
            "duration_ms": self.duration_s * 1e3,
        }
        if self.annotations:
            payload.update(self.annotations)
        return payload

    def __repr__(self) -> str:
        extra = f", {self.annotations}" if self.annotations else ""
        return f"Span({self.stage!r}, {self.duration_s * 1e3:.3f}ms{extra})"


class Trace:
    """One request's journey through the serving pipeline.

    Parameters
    ----------
    route:
        The request kind (``knn`` / ``range`` / ``add`` / ``remove`` /
        ``save``).
    traceparent:
        Optional inbound W3C ``traceparent`` header; a parseable header
        donates its trace id (and records the caller's span id as
        ``parent_id``), anything else gets a fresh id.
    owned:
        True when the scheduler created the trace internally and must
        finish it when the request's future resolves; False when an
        outer layer (the HTTP handler) owns completion and will add its
        own ``respond`` span first.

    A trace is deliberately lock-free: exactly one thread appends spans
    at any moment (see module docstring), and the sinks only see it
    after :meth:`finish` — which is idempotent, so a scheduler-side
    error path and an HTTP-side completion can race benignly.
    """

    __slots__ = (
        "trace_id",
        "parent_id",
        "route",
        "owned",
        "started",
        "started_unix",
        "spans",
        "status",
        "latency_s",
        "annotations",
        "_finished",
    )

    def __init__(
        self,
        route: str,
        *,
        traceparent: str | None = None,
        owned: bool = False,
    ) -> None:
        parsed = parse_traceparent(traceparent)
        if parsed is not None:
            self.trace_id, self.parent_id = parsed
        else:
            self.trace_id, self.parent_id = _new_trace_id(), None
        self.route = route
        self.owned = owned
        self.started = time.monotonic()
        self.started_unix = time.time()
        self.spans: list[Span] = []
        self.status = "pending"
        self.latency_s = 0.0
        self.annotations: dict = {}
        self._finished = False

    def add_span(
        self,
        stage: str,
        start: float,
        duration_s: float,
        **annotations: object,
    ) -> None:
        """Record one stage: O(1), no locks, negative durations clamped
        (clock reads on different threads can disagree by a tick)."""
        self.spans.append(
            Span(stage, start, max(0.0, duration_s), annotations or None)
        )

    def annotate(self, **fields: object) -> None:
        """Attach trace-level facts (feature, k, cache_hit, ...)."""
        self.annotations.update(fields)

    def finish(self, status: str = "ok") -> bool:
        """Seal the trace: stamp status + end-to-end latency.

        Returns True the first time (the caller should then publish the
        trace to the recorder); idempotent afterwards so double-finish
        on error paths is harmless.
        """
        if self._finished:
            return False
        self._finished = True
        self.status = status
        self.latency_s = time.monotonic() - self.started
        return True

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` sealed the trace."""
        return self._finished

    def stage_names(self) -> list[str]:
        """The span stages in recording order (duplicates preserved)."""
        return [span.stage for span in self.spans]

    def to_dict(self) -> dict:
        """The wire form served by ``GET /debug/trace?id=``."""
        payload = {
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "route": self.route,
            "status": self.status,
            "started_unix": self.started_unix,
            "latency_ms": self.latency_s * 1e3,
            "spans": [span.to_dict(self.started) for span in self.spans],
        }
        if self.annotations:
            payload.update(self.annotations)
        return payload

    def summary(self) -> dict:
        """The compact form listed by ``GET /debug/traces``."""
        return {
            "trace_id": self.trace_id,
            "route": self.route,
            "status": self.status,
            "started_unix": self.started_unix,
            "latency_ms": self.latency_s * 1e3,
            "n_spans": len(self.spans),
        }

    def __repr__(self) -> str:
        return (
            f"Trace({self.trace_id[:8]}…, {self.route}, {self.status}, "
            f"{len(self.spans)} spans, {self.latency_s * 1e3:.2f}ms)"
        )


class FlightRecorder:
    """Bounded ring buffer of the most recent completed traces.

    ``depth`` caps memory exactly: the ring holds at most ``depth``
    traces and :meth:`record` is an O(1) deque append (the deque evicts
    the oldest itself).  ``depth=0`` disables recording entirely —
    :meth:`record` becomes a no-op, which is the tracing-off
    configuration the overhead benchmark compares against.
    """

    def __init__(self, depth: int = 256) -> None:
        if depth < 0:
            raise ValueError(f"recorder depth must be >= 0; got {depth}")
        self._depth = int(depth)
        self._ring: deque[Trace] = deque(maxlen=max(1, self._depth))
        self._recorded = 0
        self._lock = threading.Lock()

    @property
    def depth(self) -> int:
        """Maximum retained traces (0 = recording disabled)."""
        return self._depth

    @property
    def enabled(self) -> bool:
        """False when constructed with ``depth=0``."""
        return self._depth > 0

    @property
    def recorded(self) -> int:
        """Traces ever recorded (monotonic; the ring holds the tail)."""
        return self._recorded

    def __len__(self) -> int:
        return len(self._ring) if self.enabled else 0

    def record(self, trace: Trace) -> None:
        """Append one completed trace (evicting the oldest when full)."""
        if not self.enabled:
            return
        with self._lock:
            self._ring.append(trace)
            self._recorded += 1

    def traces(self) -> list[Trace]:
        """The retained traces, newest first."""
        with self._lock:
            return list(reversed(self._ring))

    def find(self, trace_id: str) -> Trace | None:
        """The newest retained trace with this id, or ``None``.

        Linear over the ring — the depth is small and bounded, and a
        dict index would have to mirror the deque's evictions for no
        measurable win at forensic lookup rates.
        """
        with self._lock:
            for trace in reversed(self._ring):
                if trace.trace_id == trace_id:
                    return trace
        return None

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces())

    def __repr__(self) -> str:
        return f"FlightRecorder({len(self)}/{self._depth}, recorded={self._recorded})"


class SlowQueryLog:
    """Threshold-triggered keep of slow traces, separate from the ring.

    The flight recorder answers "what happened recently"; this log
    answers "what happened *slowly*" — a trace whose end-to-end latency
    reached ``threshold_s`` is retained here even after fast traffic
    has cycled it out of the ring.  Bounded like the recorder
    (``depth`` newest slow traces); ``threshold_s=None`` disables the
    log (nothing is ever offered in).
    """

    def __init__(self, threshold_s: float | None = 0.1, depth: int = 128) -> None:
        if threshold_s is not None and threshold_s < 0.0:
            raise ValueError(f"slow threshold must be >= 0; got {threshold_s}")
        if depth < 1:
            raise ValueError(f"slow-log depth must be >= 1; got {depth}")
        self._threshold_s = threshold_s
        self._ring: deque[Trace] = deque(maxlen=int(depth))
        self._captured = 0
        self._lock = threading.Lock()

    @property
    def threshold_s(self) -> float | None:
        """Latency at/above which a trace is captured (None = off)."""
        return self._threshold_s

    @property
    def captured(self) -> int:
        """Slow traces ever captured (monotonic)."""
        return self._captured

    def __len__(self) -> int:
        return len(self._ring)

    def offer(self, trace: Trace) -> bool:
        """Capture the trace if it crossed the threshold; True if kept."""
        if self._threshold_s is None or trace.latency_s < self._threshold_s:
            return False
        with self._lock:
            self._ring.append(trace)
            self._captured += 1
        return True

    def traces(self) -> list[Trace]:
        """The retained slow traces, newest first."""
        with self._lock:
            return list(reversed(self._ring))

    def __repr__(self) -> str:
        threshold = (
            f"{self._threshold_s * 1e3:g}ms" if self._threshold_s is not None else "off"
        )
        return f"SlowQueryLog(>{threshold}, {len(self)} kept, captured={self._captured})"


# ---------------------------------------------------------------------------
# Pretty printing (repro trace, examples/serve_demo.py)
# ---------------------------------------------------------------------------
def format_trace(trace: dict, *, width: int = 28) -> str:
    """Render one wire-form trace (:meth:`Trace.to_dict`) as a waterfall.

    Works on the *dict* form so the CLI can render traces fetched over
    HTTP without reconstructing objects.  Each span gets a bar placed at
    its offset and scaled to its share of the end-to-end latency::

        trace 4bf92f35…  route=knn  status=ok  latency=3.21 ms
          admit          0.00ms  0.05ms |#          |
          queue-wait     0.05ms  1.40ms | ####      |
          engine         1.50ms  1.50ms |     ##### | shard=0 dist=123
    """
    latency_ms = float(trace.get("latency_ms", 0.0))
    header = (
        f"trace {trace.get('trace_id', '?')}  route={trace.get('route', '?')}  "
        f"status={trace.get('status', '?')}  latency={latency_ms:.2f} ms"
    )
    if trace.get("parent_id"):
        header += f"  parent={trace['parent_id']}"
    lines = [header]
    spans = trace.get("spans", [])
    if not spans:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    stage_width = max(len(str(span.get("stage", ""))) for span in spans)
    for span in spans:
        offset = float(span.get("offset_ms", 0.0))
        duration = float(span.get("duration_ms", 0.0))
        if latency_ms > 0.0:
            left = int(width * max(0.0, min(1.0, offset / latency_ms)))
            length = max(1, int(width * min(1.0, duration / latency_ms)))
            left = min(left, width - 1)
            length = min(length, width - left)
        else:
            left, length = 0, 1
        bar = " " * left + "#" * length + " " * (width - left - length)
        extras = " ".join(
            f"{key}={value}"
            for key, value in span.items()
            if key not in ("stage", "offset_ms", "duration_ms")
        )
        lines.append(
            f"  {str(span.get('stage', '')):<{stage_width}}  "
            f"{offset:8.2f}ms  {duration:8.2f}ms |{bar}|"
            + (f" {extras}" if extras else "")
        )
    return "\n".join(lines)
