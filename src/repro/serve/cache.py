"""LRU result cache with generation-stamped lazy invalidation.

Interactive image search traffic is heavily repetitive — popular query
images, retried requests, paging over the same example — so the serving
layer keeps a bounded LRU map from *query identity* to the finished
result list.

A cache key is ``(kind, feature, parameter, digest)`` where ``kind`` is
``'knn'`` or ``'range'``, the parameter is ``k`` or the radius, and the
digest hashes the query signature's bytes after rounding to
``quantize_decimals`` decimals.  Quantization exists to merge float
noise far below any extractor's precision (the default keeps 12
decimals, ~1e-12 — two signatures that close produce the same ranking
in any real corpus); pass ``quantize_decimals=None`` for exact-bytes
keys when even that is too permissive.  Entries hold fully materialized
:class:`~repro.db.query.RetrievalResult` lists, which are frozen
dataclasses over an immutable catalog record — safe to hand to many
readers.

Mutable databases: generation stamps
------------------------------------
The database is allowed to mutate while the service runs (see
``docs/mutability.md``).  Instead of flushing the cache on every
mutation, each entry is stamped with the **generation** the database's
feature was at when the result was computed
(:meth:`~repro.db.database.ImageDatabase.generation`).  A lookup passes
the *current* generation; a stamped entry from an older generation is
treated as a miss, evicted on the spot, and counted in
:attr:`ResultCache.invalidations` — invalidation is lazy and per-entry,
never a global flush, so untouched hot entries keep serving the moment
their feature stops changing.  Entries stored without a stamp
(``generation=None``) never invalidate — the static-snapshot behaviour,
still available to callers that close the scheduler around mutations
and :meth:`ResultCache.clear` by hand.

Stamps are opaque hashables compared with ``!=``, not ordered ints.
The unsharded scheduler stamps with the database's scalar generation;
the sharded engine stamps with the **tuple of per-shard generations**,
because a merged result depends on every shard it gathered from.
Collapsing the tuple to a scalar (say, the max) would let a mutation on
one shard hide behind another shard's older stamp and revalidate a
stale entry — the regression pinned in ``tests/test_serve.py`` and
``tests/test_sharded_serving.py``.

Check-on-hit revalidation
-------------------------
A generation mismatch does not always mean the cached answer changed:
a k-NN entry is provably still correct when every item inserted since
it was computed lands *strictly after* its kth result under the engine
ordering ``(distance, id)`` and none of its result ids was removed (a
range entry: no insert within the closed query ball, no result
removed).  :meth:`ResultCache.get` therefore accepts an optional
``revalidator`` callback: on a stale stamp the cache hands the entry
out for inspection instead of evicting it, and a confirmed entry is
re-stamped at the current generation and served as a hit — counted in
:attr:`ResultCache.revalidations`, separately from
:attr:`ResultCache.invalidations` (entries that genuinely changed).
The proof obligations live with the caller: the scheduler feeds the
callback from :class:`MutationDeltaLog`, a bounded per-generation
record of exactly which vectors each mutation inserted and which ids
it removed.  A delta outside the retained window (or recorded before
the log was attached) makes the callback return False — revalidation
degrades to plain invalidation, never to a stale answer.

Hit/miss/invalidation/revalidation counters are monotonic and
thread-safe; read them together via :meth:`ResultCache.counters` (one
locked snapshot — the individual properties are each consistent but
can tear *across* properties mid-update).  The scheduler folds the
snapshot into its :class:`~repro.serve.stats.ServiceStats`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Hashable, NamedTuple, Sequence

import numpy as np

from repro.db.query import RetrievalResult
from repro.errors import ServeError

__all__ = ["CacheCounters", "MutationDeltaLog", "ResultCache"]

#: Cache keys: (kind, feature, parameter, digest).
CacheKey = tuple[str, str, Hashable, str]

#: Revalidation callback: (stale entry's stamp, its results) -> still valid?
Revalidator = Callable[[Hashable, list[RetrievalResult]], bool]

#: One mutation's effect on one (feature, shard) slice:
#: ``("add", inserted ids, (m, d) vectors)`` or
#: ``("remove", removed ids, None)``.
MutationDelta = tuple[str, tuple[int, ...], "np.ndarray | None"]


class CacheCounters(NamedTuple):
    """One consistent snapshot of the cache's lookup counters.

    Taken under the cache lock, so ``hits + misses`` always equals the
    number of lookups even while other threads are counting —
    the guarantee the individual properties cannot give across
    separate reads.
    """

    hits: int
    misses: int
    invalidations: int
    revalidations: int

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MutationDeltaLog:
    """Bounded per-generation record of what each mutation changed.

    Keyed by an opaque hashable — the sharded engine uses
    ``(feature, shard_index)`` — each key maps **generation after the
    mutation applied** to the :data:`MutationDelta` that produced it.
    Only the newest ``window`` generations per key are retained;
    :meth:`between` returns ``None`` as soon as any generation in the
    requested range has been dropped (or was never recorded), which
    callers must treat as "cannot prove validity".

    Thread-safe: the engine's worker records while caller threads read
    during cache lookups.
    """

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise ServeError(f"delta window must be >= 1; got {window}")
        self._window = int(window)
        self._logs: dict[Hashable, OrderedDict[int, MutationDelta]] = {}
        self._lock = threading.Lock()

    @property
    def window(self) -> int:
        """Generations retained per key."""
        return self._window

    def record_add(
        self,
        key: Hashable,
        generation: int,
        ids: Sequence[int],
        vectors: np.ndarray,
    ) -> None:
        """Record an insert that produced ``generation`` under ``key``.

        ``vectors`` is copied: the log must outlive the caller's batch
        buffers, and revalidation reads it from other threads.
        """
        rows = np.array(vectors, dtype=np.float64, copy=True)
        self._record(
            key, int(generation), ("add", tuple(int(i) for i in ids), rows)
        )

    def record_remove(
        self, key: Hashable, generation: int, ids: Sequence[int]
    ) -> None:
        """Record a removal that produced ``generation`` under ``key``."""
        self._record(
            key, int(generation), ("remove", tuple(int(i) for i in ids), None)
        )

    def _record(self, key: Hashable, generation: int, delta: MutationDelta) -> None:
        with self._lock:
            log = self._logs.setdefault(key, OrderedDict())
            log[generation] = delta
            log.move_to_end(generation)
            while len(log) > self._window:
                log.popitem(last=False)

    def between(
        self, key: Hashable, old: Hashable, new: Hashable
    ) -> list[MutationDelta] | None:
        """Every delta from ``old`` (exclusive) to ``new`` (inclusive).

        ``None`` when the range cannot be reconstructed — non-integer
        stamps, a non-advancing range, or any generation missing from
        the retained window.  The caller must then fall back to
        invalidation.
        """
        if not isinstance(old, int) or not isinstance(new, int) or old >= new:
            return None
        with self._lock:
            log = self._logs.get(key)
            if log is None:
                return None
            deltas: list[MutationDelta] = []
            for generation in range(old + 1, new + 1):
                delta = log.get(generation)
                if delta is None:
                    return None
                deltas.append(delta)
            return deltas


class ResultCache:
    """Bounded LRU map from query identity to retrieval results.

    Parameters
    ----------
    capacity:
        Maximum number of cached result lists; ``0`` disables caching
        (every lookup misses, nothing is stored).
    quantize_decimals:
        Decimals kept when digesting query vectors (default 12);
        ``None`` digests the exact bytes.
    """

    def __init__(
        self, capacity: int = 1024, *, quantize_decimals: int | None = 12
    ) -> None:
        if capacity < 0:
            raise ServeError(f"cache capacity must be >= 0; got {capacity}")
        if quantize_decimals is not None and quantize_decimals < 0:
            raise ServeError(
                f"quantize_decimals must be >= 0 or None; got {quantize_decimals}"
            )
        self._capacity = int(capacity)
        self._decimals = quantize_decimals
        self._entries: OrderedDict[
            CacheKey, tuple[Hashable | None, list[RetrievalResult]]
        ] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._revalidations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of entries (0 = disabled)."""
        return self._capacity

    @property
    def enabled(self) -> bool:
        """False when constructed with capacity 0."""
        return self._capacity > 0

    @property
    def hits(self) -> int:
        """Lookups answered from the cache since construction."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that fell through to the engine since construction
        (stale-generation evictions included — they miss too)."""
        return self._misses

    @property
    def invalidations(self) -> int:
        """Entries evicted because their generation stamp was stale.

        Every invalidation is also counted as a miss; this counter is
        how the parity suite proves no stale result was ever served.
        """
        return self._invalidations

    @property
    def revalidations(self) -> int:
        """Stale-stamped entries a revalidator proved still valid.

        Each one was re-stamped at the current generation and served;
        every revalidation is also counted as a hit.
        """
        return self._revalidations

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` (0.0 before any lookup)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def counters(self) -> CacheCounters:
        """All lookup counters in one locked snapshot.

        This is what ``/stats`` and ``/metrics`` read: the individual
        properties are each atomic, but reading them one after another
        can interleave with a lookup and report figures that never
        coexisted (e.g. ``hits + misses`` short of the lookup count).
        """
        with self._lock:
            return CacheCounters(
                self._hits, self._misses, self._invalidations, self._revalidations
            )

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def key(
        self, kind: str, feature: str, parameter: Hashable, vector: np.ndarray
    ) -> CacheKey:
        """The cache key identifying one query.

        The vector digest is position-dependent (BLAKE2b over the
        rounded float64 bytes); ``+ 0.0`` folds ``-0.0`` into ``0.0`` so
        the two signs of zero — equal to every metric — share a key.
        ``kind`` and ``parameter`` are part of the key tuple itself, so
        the same vector under k-NN and range (even with ``k == radius``)
        can never collide.
        """
        vector = np.ascontiguousarray(vector, dtype=np.float64)
        if self._decimals is not None:
            vector = np.round(vector, self._decimals) + 0.0
        digest = hashlib.blake2b(vector.tobytes(), digest_size=16).hexdigest()
        return (kind, feature, parameter, digest)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(
        self,
        key: CacheKey,
        generation: Hashable | None = None,
        revalidator: Revalidator | None = None,
    ) -> list[RetrievalResult] | None:
        """The cached results for ``key`` (a fresh list), or ``None``.

        ``generation`` is the caller's *current* data version for the
        key's feature — a scalar from an unsharded database, a tuple of
        per-shard generations from the sharded engine.  A stamped entry
        computed under a different (``!=``) generation is stale: it is
        evicted, counted in :attr:`invalidations`, and the lookup
        misses.  Passing ``None`` skips the check (static-snapshot
        callers).

        ``revalidator`` (optional) gets a chance to save a stale entry:
        it is called — outside the cache lock, so it may compute
        distances — with the entry's stored stamp and its results, and
        must return True only when the results provably equal a fresh
        query's.  A confirmed entry is re-stamped at ``generation``,
        counted in :attr:`revalidations`, and served as a hit; anything
        else falls through to the eviction path.  If the entry was
        replaced or evicted while the callback ran, the lookup is a
        plain miss — the callback's verdict applied to a snapshot that
        is no longer the entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            stored_generation, results = entry
            stale = (
                generation is not None
                and stored_generation is not None
                and stored_generation != generation
            )
            if not stale:
                self._entries.move_to_end(key)
                self._hits += 1
                return list(results)
            if revalidator is None:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None
            snapshot = list(results)
        valid = revalidator(stored_generation, snapshot)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] != stored_generation:
                self._misses += 1
                return None
            if not valid:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None
            self._entries[key] = (generation, entry[1])
            self._entries.move_to_end(key)
            self._hits += 1
            self._revalidations += 1
            return list(entry[1])

    def put(
        self,
        key: CacheKey,
        results: Sequence[RetrievalResult],
        generation: Hashable | None = None,
    ) -> None:
        """Store ``results`` under ``key``, evicting the LRU tail.

        ``generation`` stamps the entry with the data version it was
        computed under (scalar or per-shard tuple); ``None`` stores an
        unstamped (never-invalidated) entry.
        """
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = (generation, list(results))
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters keep running)."""
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self._entries)}/{self._capacity}, "
            f"hits={self._hits}, misses={self._misses}, "
            f"invalidations={self._invalidations}, "
            f"revalidations={self._revalidations})"
        )
