"""Stdlib HTTP front end for the query service.

A thin JSON shell over :class:`~repro.serve.scheduler.QueryScheduler`,
built on ``http.server.ThreadingHTTPServer`` — one handler thread per
connection, all of them funnelling into the scheduler's admission
queue, which is exactly the concurrency micro-batching feeds on.  No
framework, no new dependencies: the 1994 system would have been a
socket server too.

Endpoints
---------
``POST /query``
    ``{"vector": [...], "k": 5, "feature": "name"}`` → k-NN results.
``POST /range``
    ``{"vector": [...], "radius": 0.5, "feature": "name"}`` → range
    results.
``POST /add``
    ``{"vectors": [[...], ...], "labels": [...], "names": [...]}``
    (single-feature schema) or ``{"signatures": {feature: [[...]]}}``
    (every schema feature) → allocated ids + new generation stamps.
    The insert serializes with query batches on the scheduler's worker.
``POST /remove``
    ``{"ids": [...]}`` → removed ids + new generation stamps.
``POST /save``
    ``{}`` → snapshot-compaction barrier: the worker folds the journal
    into a fresh atomic snapshot and resets the logs (400 with an
    explanatory error when the service runs without a journal).
``GET /stats``
    The :class:`~repro.serve.stats.ServiceStats` snapshot as JSON
    (shard count, per-shard sizes and request balance included).
``GET /metrics``
    Prometheus text exposition: per-route latency histograms,
    admission counters, batch-size histograms, queue depth, per-shard
    balance gauges (see ``repro.serve.metrics``).
``GET /healthz``
    Liveness: item count, feature list, generations, shard count,
    uptime, storage backend.
``GET /debug/traces``
    Compact summaries of the flight recorder's retained traces (newest
    first) — the forensic ring buffer behind ``repro trace``.
``GET /debug/trace?id=<trace_id>``
    One full trace: per-stage spans with offsets, durations, and the
    engine spans' exact per-shard distance-computation counts.
``GET /debug/slow``
    Full traces whose end-to-end latency crossed the scheduler's
    ``slow_query_ms`` threshold.

**Tracing.**  Every ``POST`` request opens a
:class:`~repro.serve.trace.Trace` (when the scheduler runs with
``trace_depth > 0``): an inbound W3C ``traceparent`` header donates the
trace id, otherwise one is generated; the id is echoed back as
``X-Repro-Trace-Id`` and in the JSON body's ``trace_id``, and is the
key into ``GET /debug/trace?id=``.  The handler owns trace completion:
it appends the ``respond`` span (response serialization) and seals the
trace *before* writing the response bytes, so a client that sees the
response can immediately fetch its trace.

**Access log.**  ``QueryServer(access_log=...)`` (CLI:
``repro serve --access-log``) attaches a
:class:`~repro.serve.logsys.StructuredLog`: one ``http_request`` JSON
line per handled request (method, path, status, latency, trace id),
sampled and rate-limited so logging survives hot loops — replacing the
blanket ``log_message`` silencer this front end used to ship.

Query responses carry the ranked results plus the request's serving
metadata (cache hit, group batch size, exact distance-computation
count).  Errors map to JSON bodies with appropriate status codes: 400
for malformed requests, 404 for unknown paths, 503 when the admission
queue is full or the service is shutting down (the latter flagged with
``"shutting_down": true`` so load balancers can distinguish drain from
overload), 429 when the token-bucket rate limiter refuses the request
(throttled, not overloaded — back off and retry).

Queries take *signature vectors*, not image files — feature extraction
is client-side (or via the library), keeping the wire format tiny and
the server CPU for search.  See ``docs/serving.md``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.db.database import ImageDatabase
from repro.errors import (
    RateLimitError,
    ReproError,
    ServeError,
    ShuttingDownError,
)
from repro.serve.logsys import StructuredLog
from repro.serve.metrics import MetricsRegistry
from repro.serve.scheduler import MutationResult, QueryScheduler, ServedResult
from repro.serve.trace import Trace

__all__ = ["QueryServer"]

#: Longest accepted request body (a signature vector is a few KiB).
_MAX_BODY_BYTES = 1 << 20


def _result_payload(served: ServedResult) -> dict:
    """JSON form of one served request."""
    return {
        "results": [
            {
                "image_id": result.image_id,
                "distance": result.distance,
                "name": result.record.name if result.record else None,
                "label": result.record.label if result.record else None,
            }
            for result in served.results
        ],
        "cache_hit": served.cache_hit,
        "batch_size": served.batch_size,
        "distance_computations": (
            served.stats.distance_computations if served.stats else 0
        ),
        "latency_ms": served.latency_s * 1e3,
    }


def _mutation_payload(applied: MutationResult) -> dict:
    """JSON form of one applied mutation (or save barrier)."""
    payload = {
        "generations": applied.generations,
        "latency_ms": applied.latency_s * 1e3,
    }
    if applied.kind == "add":
        payload["ids"] = applied.ids
    elif applied.kind == "remove":
        payload["removed"] = applied.ids
    else:
        payload["saved"] = True
    return payload


class _Handler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the attached scheduler."""

    protocol_version = "HTTP/1.1"
    #: Idle keep-alive connections expire instead of pinning a thread.
    timeout = 30
    server: "_Server"
    #: Stamped at the top of each do_* call; feeds the access log.
    _t0: float = 0.0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_request(self, code: object = "-", size: object = "-") -> None:
        """No apache-style lines; the structured access log is richer."""

    def log_error(self, format: str, *args: object) -> None:
        """Handler-level notices become structured events (when logging)."""
        log = self.server.access_log
        if log is not None:
            log.event("http_error", message=format % args)

    def log_message(self, format: str, *args: object) -> None:
        """Base-class catch-all, routed with the errors."""
        self.log_error(format, *args)

    def _log_access(self, status: int, trace_id: str | None = None) -> None:
        log = self.server.access_log
        if log is not None:
            log.event(
                "http_request",
                method=self.command,
                path=self.path,
                status=status,
                latency_ms=round((time.monotonic() - self._t0) * 1e3, 3),
                trace_id=trace_id,
            )

    def _send_json(
        self,
        status: int,
        payload: dict,
        *,
        trace: Trace | None = None,
        trace_status: str | None = None,
    ) -> None:
        """Serialize + send; seals ``trace`` first when one is attached.

        The trace's ``respond`` span covers serialization, and the
        trace is finished (published to the flight recorder) *before*
        the response bytes go out — a client that has the response can
        immediately ``GET /debug/trace?id=`` without racing the
        recorder.
        """
        if trace is not None:
            payload = {**payload, "trace_id": trace.trace_id}
            respond_start = time.monotonic()
        body = json.dumps(payload).encode("utf-8")
        if trace is not None:
            trace.add_span(
                "respond", respond_start, time.monotonic() - respond_start
            )
            self.server.scheduler.finish_trace(
                trace, trace_status or ("ok" if status < 400 else "error")
            )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if trace is not None:
            self.send_header("X-Repro-Trace-Id", trace.trace_id)
        if status >= 400:
            # Error paths may not have read the request body; leftover
            # bytes would desync a keep-alive connection, so drop it.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)
        self._log_access(status, trace.trace_id if trace is not None else None)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            raise ServeError("request body is empty")
        if length > _MAX_BODY_BYTES:
            raise ServeError(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            raise ServeError(f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    @staticmethod
    def _vector_of(payload: dict) -> np.ndarray:
        vector = payload.get("vector")
        if not isinstance(vector, list) or not vector:
            raise ServeError('"vector" must be a non-empty JSON array')
        try:
            return np.asarray(vector, dtype=np.float64)
        except (TypeError, ValueError):
            raise ServeError('"vector" must contain only numbers') from None

    @staticmethod
    def _matrix_of(value: object, field: str) -> np.ndarray:
        if not isinstance(value, list) or not value:
            raise ServeError(f'"{field}" must be a non-empty JSON array of rows')
        try:
            matrix = np.asarray(value, dtype=np.float64)
        except (TypeError, ValueError):
            raise ServeError(
                f'"{field}" must be rectangular rows of numbers'
            ) from None
        if matrix.ndim != 2:
            raise ServeError(f'"{field}" must be a 2-D array of rows')
        return matrix

    @classmethod
    def _add_arguments(cls, payload: dict) -> tuple[object, list | None, list | None]:
        """Parse a ``POST /add`` body into ``add_vectors`` arguments."""
        vectors = payload.get("vectors")
        signatures = payload.get("signatures")
        if (vectors is None) == (signatures is None):
            raise ServeError('pass exactly one of "vectors" or "signatures"')
        if signatures is not None:
            if not isinstance(signatures, dict) or not signatures:
                raise ServeError('"signatures" must be a {feature: rows} object')
            arg: object = {
                name: cls._matrix_of(rows, f"signatures[{name}]")
                for name, rows in signatures.items()
            }
        else:
            arg = cls._matrix_of(vectors, "vectors")
        labels = payload.get("labels")
        names = payload.get("names")
        for field, value in (("labels", labels), ("names", names)):
            if value is not None and not isinstance(value, list):
                raise ServeError(f'"{field}" must be a JSON array')
        return arg, labels, names

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._t0 = time.monotonic()
        scheduler = self.server.scheduler
        parsed = urlsplit(self.path)
        path = parsed.path
        if path == "/healthz":
            # Liveness reads go through the scheduler, not the source
            # database object: with shards > 1 the engine owns the live
            # item set and the construction-time database goes stale.
            generations = {
                feature: (
                    list(stamp) if isinstance(stamp, tuple) else stamp
                )
                for feature, stamp in scheduler.generations().items()
            }
            info = scheduler.journal_info()
            self._send_json(
                200,
                {
                    "status": "ok",
                    "images": scheduler.n_items,
                    "features": list(self.server.db.schema.names),
                    "generations": generations,
                    "shards": scheduler.n_shards,
                    "uptime_s": scheduler.stats().uptime_s,
                    "durable": info is not None,
                    "journal": info,
                    "backend": self.server.db.backend_info()["name"],
                },
            )
        elif path == "/stats":
            self._send_json(200, scheduler.stats().to_dict())
        elif path == "/metrics":
            body = scheduler.render_metrics().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", MetricsRegistry.CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            self._log_access(200)
        elif path == "/debug/traces":
            recorder = scheduler.flight_recorder
            self._send_json(
                200,
                {
                    "enabled": recorder.enabled,
                    "depth": recorder.depth,
                    "recorded": recorder.recorded,
                    "traces": [trace.summary() for trace in recorder.traces()],
                },
            )
        elif path == "/debug/trace":
            values = parse_qs(parsed.query).get("id")
            trace_id = values[0] if values else None
            if not trace_id:
                self._send_json(
                    400, {"error": "pass the trace id as ?id=<trace_id>"}
                )
                return
            found = scheduler.flight_recorder.find(trace_id)
            if found is None:
                self._send_json(
                    404,
                    {
                        "error": f"no retained trace with id {trace_id!r} "
                        "(it may have fallen off the ring; see /debug/traces)"
                    },
                )
                return
            self._send_json(200, found.to_dict())
        elif path == "/debug/slow":
            slow = scheduler.slow_log
            threshold = slow.threshold_s
            self._send_json(
                200,
                {
                    "threshold_ms": (
                        threshold * 1e3 if threshold is not None else None
                    ),
                    "captured": slow.captured,
                    "traces": [trace.to_dict() for trace in slow.traces()],
                },
            )
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    #: POST path → trace route (the scheduler's request kinds).
    _ROUTES = {
        "/query": "knn",
        "/range": "range",
        "/add": "add",
        "/remove": "remove",
        "/save": "save",
    }

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._t0 = time.monotonic()
        route = self._ROUTES.get(self.path)
        if route is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        scheduler = self.server.scheduler
        # The trace opens before any parsing so even a malformed request
        # leaves a finished trace in the recorder; an inbound W3C
        # traceparent donates the id (None when tracing is off).
        trace = scheduler.new_trace(route, self.headers.get("traceparent"))
        try:
            if self.path == "/save":
                # The barrier takes no arguments; an (optional) body is
                # still read so keep-alive connections stay in sync.
                if int(self.headers.get("Content-Length", "0")) > 0:
                    self._read_json()
                future = scheduler.submit_save(trace=trace)
            elif self.path == "/add":
                payload = self._read_json()
                signatures, labels, names = self._add_arguments(payload)
                future = scheduler.submit_add(
                    signatures,  # type: ignore[arg-type]
                    labels=labels,
                    names=names,
                    trace=trace,
                )
            elif self.path == "/remove":
                payload = self._read_json()
                ids = payload.get("ids")
                if (
                    not isinstance(ids, list)
                    or not ids
                    or not all(
                        isinstance(i, int) and not isinstance(i, bool) for i in ids
                    )
                ):
                    raise ServeError('"ids" must be a non-empty array of integers')
                future = scheduler.submit_remove(ids, trace=trace)
            else:
                payload = self._read_json()
                vector = self._vector_of(payload)
                feature = payload.get("feature")
                if feature is not None and not isinstance(feature, str):
                    raise ServeError('"feature" must be a string')
                if self.path == "/query":
                    k = payload.get("k", 10)
                    if not isinstance(k, int) or isinstance(k, bool):
                        raise ServeError('"k" must be an integer')
                    future = scheduler.submit_query(
                        vector, k, feature=feature, trace=trace
                    )
                else:
                    radius = payload.get("radius")
                    if not isinstance(radius, (int, float)) or isinstance(
                        radius, bool
                    ):
                        raise ServeError('"radius" must be a number')
                    future = scheduler.submit_range(
                        vector, float(radius), feature=feature, trace=trace
                    )
        except RateLimitError as error:
            self._send_json(
                429, {"error": str(error)}, trace=trace, trace_status="rate_limited"
            )
            return
        except ShuttingDownError as error:
            self._send_json(
                503,
                {"error": str(error), "shutting_down": True},
                trace=trace,
                trace_status="shutting_down",
            )
            return
        except ServeError as error:
            rejected = "queue full" in str(error)
            self._send_json(
                503 if rejected else 400,
                {"error": str(error)},
                trace=trace,
                trace_status="rejected" if rejected else "error",
            )
            return
        except ReproError as error:
            self._send_json(400, {"error": str(error)}, trace=trace)
            return
        try:
            served = future.result()
        except ShuttingDownError as error:
            # The request was admitted but the scheduler abandoned it
            # mid-shutdown (drain=False close) — same 503 + flag as a
            # refused submission, the client should fail over.
            self._send_json(
                503,
                {"error": str(error), "shutting_down": True},
                trace=trace,
                trace_status="shutting_down",
            )
            return
        except ReproError as error:
            self._send_json(400, {"error": str(error)}, trace=trace)
            return
        if isinstance(served, MutationResult):
            self._send_json(200, _mutation_payload(served), trace=trace)
        else:
            self._send_json(200, _result_payload(served), trace=trace)


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the scheduler/database references."""

    daemon_threads = True
    #: Don't join handler threads on close: a client holding a
    #: keep-alive connection open would stall shutdown otherwise.
    block_on_close = False
    scheduler: QueryScheduler
    db: ImageDatabase
    access_log: StructuredLog | None = None


class QueryServer:
    """The HTTP query service: scheduler + threaded JSON front end.

    Parameters
    ----------
    db:
        The database to serve.  ``POST /add`` / ``POST /remove`` mutate
        it while serving (serialized with query batches on the
        scheduler's worker); cached results are generation-stamped so a
        stale entry is never returned.
    host, port:
        Bind address; ``port=0`` picks a free ephemeral port —
        :attr:`address` reports the real one.
    scheduler:
        A preconfigured :class:`QueryScheduler`; when omitted one is
        built from the remaining keyword arguments (``max_batch``,
        ``max_wait_ms``, ``max_queue``, ``cache_size``, ``shards``,
        ``rate_limit_qps``, ``trace_depth``, ``slow_query_ms``, ...).
    access_log:
        Optional :class:`~repro.serve.logsys.StructuredLog`: one
        ``http_request`` JSON line per handled request (method, path,
        status, latency, trace id), sampled + rate-limited.  ``None``
        (the default) keeps request logging off.

    Examples
    --------
    >>> from repro.features.base import PresetSignature
    >>> from repro.features.pipeline import FeatureSchema
    >>> import numpy as np
    >>> db = ImageDatabase(FeatureSchema([PresetSignature(4)]))
    >>> _ = db.add_vectors(np.random.default_rng(0).random((32, 4)))
    >>> server = QueryServer(db, port=0).start()
    >>> host, port = server.address
    >>> server.stop()
    """

    def __init__(
        self,
        db: ImageDatabase,
        *,
        host: str = "127.0.0.1",
        port: int = 8753,
        scheduler: QueryScheduler | None = None,
        access_log: StructuredLog | None = None,
        **scheduler_options: object,
    ) -> None:
        if scheduler is not None and scheduler_options:
            raise ServeError(
                "pass either a prebuilt scheduler or scheduler options, not both"
            )
        self._scheduler = scheduler or QueryScheduler(db, **scheduler_options)  # type: ignore[arg-type]
        self._http = _Server((host, port), _Handler)
        self._http.scheduler = self._scheduler
        self._http.db = db
        self._http.access_log = access_log
        self._thread: threading.Thread | None = None
        self._serving = False
        self._stopped = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — authoritative when ``port=0``."""
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def scheduler(self) -> QueryScheduler:
        """The underlying micro-batching scheduler."""
        return self._scheduler

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (CLI mode)."""
        self._serving = True
        self._http.serve_forever(poll_interval=0.1)

    def start(self) -> "QueryServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is None:
            self._serving = True  # the thread will reach serve_forever
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-serve-http", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the HTTP loop, close the socket, settle the scheduler.

        With ``drain`` (the default) every admitted request is still
        served before the scheduler closes.  ``drain=False`` is the
        SIGTERM path: the in-flight batch completes (and its mutations
        reach the journal — an acknowledged write is never abandoned),
        but queued requests fail fast with
        :class:`~repro.errors.ShuttingDownError` → HTTP 503 instead of
        holding the terminating process on a backlog.
        """
        if self._stopped:
            return
        self._stopped = True
        # shutdown() waits on an event only serve_forever manages — it
        # would block forever on a server that never served.
        if self._serving:
            self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._scheduler.close(drain=drain)

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        host, port = self.address
        state = "stopped" if self._stopped else "serving"
        return f"QueryServer({state}, http://{host}:{port})"
