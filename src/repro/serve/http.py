"""Stdlib HTTP front end for the query service.

A thin JSON shell over :class:`~repro.serve.scheduler.QueryScheduler`,
built on ``http.server.ThreadingHTTPServer`` — one handler thread per
connection, all of them funnelling into the scheduler's admission
queue, which is exactly the concurrency micro-batching feeds on.  No
framework, no new dependencies: the 1994 system would have been a
socket server too.

Endpoints
---------
``POST /query``
    ``{"vector": [...], "k": 5, "feature": "name"}`` → k-NN results.
``POST /range``
    ``{"vector": [...], "radius": 0.5, "feature": "name"}`` → range
    results.
``POST /add``
    ``{"vectors": [[...], ...], "labels": [...], "names": [...]}``
    (single-feature schema) or ``{"signatures": {feature: [[...]]}}``
    (every schema feature) → allocated ids + new generation stamps.
    The insert serializes with query batches on the scheduler's worker.
``POST /remove``
    ``{"ids": [...]}`` → removed ids + new generation stamps.
``POST /save``
    ``{}`` → snapshot-compaction barrier: the worker folds the journal
    into a fresh atomic snapshot and resets the logs (400 with an
    explanatory error when the service runs without a journal).
``GET /stats``
    The :class:`~repro.serve.stats.ServiceStats` snapshot as JSON
    (shard count, per-shard sizes and request balance included).
``GET /metrics``
    Prometheus text exposition: per-route latency histograms,
    admission counters, batch-size histograms, queue depth, per-shard
    balance gauges (see ``repro.serve.metrics``).
``GET /healthz``
    Liveness: item count, feature list, generations, shard count,
    uptime.

Query responses carry the ranked results plus the request's serving
metadata (cache hit, group batch size, exact distance-computation
count).  Errors map to JSON bodies with appropriate status codes: 400
for malformed requests, 404 for unknown paths, 503 when the admission
queue is full or the service is shutting down (the latter flagged with
``"shutting_down": true`` so load balancers can distinguish drain from
overload), 429 when the token-bucket rate limiter refuses the request
(throttled, not overloaded — back off and retry).

Queries take *signature vectors*, not image files — feature extraction
is client-side (or via the library), keeping the wire format tiny and
the server CPU for search.  See ``docs/serving.md``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.db.database import ImageDatabase
from repro.errors import (
    RateLimitError,
    ReproError,
    ServeError,
    ShuttingDownError,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.scheduler import MutationResult, QueryScheduler, ServedResult

__all__ = ["QueryServer"]

#: Longest accepted request body (a signature vector is a few KiB).
_MAX_BODY_BYTES = 1 << 20


def _result_payload(served: ServedResult) -> dict:
    """JSON form of one served request."""
    return {
        "results": [
            {
                "image_id": result.image_id,
                "distance": result.distance,
                "name": result.record.name if result.record else None,
                "label": result.record.label if result.record else None,
            }
            for result in served.results
        ],
        "cache_hit": served.cache_hit,
        "batch_size": served.batch_size,
        "distance_computations": (
            served.stats.distance_computations if served.stats else 0
        ),
        "latency_ms": served.latency_s * 1e3,
    }


def _mutation_payload(applied: MutationResult) -> dict:
    """JSON form of one applied mutation (or save barrier)."""
    payload = {
        "generations": applied.generations,
        "latency_ms": applied.latency_s * 1e3,
    }
    if applied.kind == "add":
        payload["ids"] = applied.ids
    elif applied.kind == "remove":
        payload["removed"] = applied.ids
    else:
        payload["saved"] = True
    return payload


class _Handler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the attached scheduler."""

    protocol_version = "HTTP/1.1"
    #: Idle keep-alive connections expire instead of pinning a thread.
    timeout = 30
    server: "_Server"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request logging (stats live at /stats)."""

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # Error paths may not have read the request body; leftover
            # bytes would desync a keep-alive connection, so drop it.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            raise ServeError("request body is empty")
        if length > _MAX_BODY_BYTES:
            raise ServeError(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            raise ServeError(f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    @staticmethod
    def _vector_of(payload: dict) -> np.ndarray:
        vector = payload.get("vector")
        if not isinstance(vector, list) or not vector:
            raise ServeError('"vector" must be a non-empty JSON array')
        try:
            return np.asarray(vector, dtype=np.float64)
        except (TypeError, ValueError):
            raise ServeError('"vector" must contain only numbers') from None

    @staticmethod
    def _matrix_of(value: object, field: str) -> np.ndarray:
        if not isinstance(value, list) or not value:
            raise ServeError(f'"{field}" must be a non-empty JSON array of rows')
        try:
            matrix = np.asarray(value, dtype=np.float64)
        except (TypeError, ValueError):
            raise ServeError(
                f'"{field}" must be rectangular rows of numbers'
            ) from None
        if matrix.ndim != 2:
            raise ServeError(f'"{field}" must be a 2-D array of rows')
        return matrix

    @classmethod
    def _add_arguments(cls, payload: dict) -> tuple[object, list | None, list | None]:
        """Parse a ``POST /add`` body into ``add_vectors`` arguments."""
        vectors = payload.get("vectors")
        signatures = payload.get("signatures")
        if (vectors is None) == (signatures is None):
            raise ServeError('pass exactly one of "vectors" or "signatures"')
        if signatures is not None:
            if not isinstance(signatures, dict) or not signatures:
                raise ServeError('"signatures" must be a {feature: rows} object')
            arg: object = {
                name: cls._matrix_of(rows, f"signatures[{name}]")
                for name, rows in signatures.items()
            }
        else:
            arg = cls._matrix_of(vectors, "vectors")
        labels = payload.get("labels")
        names = payload.get("names")
        for field, value in (("labels", labels), ("names", names)):
            if value is not None and not isinstance(value, list):
                raise ServeError(f'"{field}" must be a JSON array')
        return arg, labels, names

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        scheduler = self.server.scheduler
        if self.path == "/healthz":
            # Liveness reads go through the scheduler, not the source
            # database object: with shards > 1 the engine owns the live
            # item set and the construction-time database goes stale.
            generations = {
                feature: (
                    list(stamp) if isinstance(stamp, tuple) else stamp
                )
                for feature, stamp in scheduler.generations().items()
            }
            info = scheduler.journal_info()
            self._send_json(
                200,
                {
                    "status": "ok",
                    "images": scheduler.n_items,
                    "features": list(self.server.db.schema.names),
                    "generations": generations,
                    "shards": scheduler.n_shards,
                    "uptime_s": scheduler.stats().uptime_s,
                    "durable": info is not None,
                    "journal": info,
                },
            )
        elif self.path == "/stats":
            self._send_json(200, scheduler.stats().to_dict())
        elif self.path == "/metrics":
            body = scheduler.render_metrics().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", MetricsRegistry.CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path not in ("/query", "/range", "/add", "/remove", "/save"):
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        scheduler = self.server.scheduler
        try:
            if self.path == "/save":
                # The barrier takes no arguments; an (optional) body is
                # still read so keep-alive connections stay in sync.
                if int(self.headers.get("Content-Length", "0")) > 0:
                    self._read_json()
                future = scheduler.submit_save()
            elif self.path == "/add":
                payload = self._read_json()
                signatures, labels, names = self._add_arguments(payload)
                future = scheduler.submit_add(
                    signatures, labels=labels, names=names  # type: ignore[arg-type]
                )
            elif self.path == "/remove":
                payload = self._read_json()
                ids = payload.get("ids")
                if (
                    not isinstance(ids, list)
                    or not ids
                    or not all(
                        isinstance(i, int) and not isinstance(i, bool) for i in ids
                    )
                ):
                    raise ServeError('"ids" must be a non-empty array of integers')
                future = scheduler.submit_remove(ids)
            else:
                payload = self._read_json()
                vector = self._vector_of(payload)
                feature = payload.get("feature")
                if feature is not None and not isinstance(feature, str):
                    raise ServeError('"feature" must be a string')
                if self.path == "/query":
                    k = payload.get("k", 10)
                    if not isinstance(k, int) or isinstance(k, bool):
                        raise ServeError('"k" must be an integer')
                    future = scheduler.submit_query(vector, k, feature=feature)
                else:
                    radius = payload.get("radius")
                    if not isinstance(radius, (int, float)) or isinstance(
                        radius, bool
                    ):
                        raise ServeError('"radius" must be a number')
                    future = scheduler.submit_range(
                        vector, float(radius), feature=feature
                    )
        except RateLimitError as error:
            self._send_json(429, {"error": str(error)})
            return
        except ShuttingDownError as error:
            self._send_json(503, {"error": str(error), "shutting_down": True})
            return
        except ServeError as error:
            status = 503 if "queue full" in str(error) else 400
            self._send_json(status, {"error": str(error)})
            return
        except ReproError as error:
            self._send_json(400, {"error": str(error)})
            return
        try:
            served = future.result()
        except ShuttingDownError as error:
            # The request was admitted but the scheduler abandoned it
            # mid-shutdown (drain=False close) — same 503 + flag as a
            # refused submission, the client should fail over.
            self._send_json(503, {"error": str(error), "shutting_down": True})
            return
        except ReproError as error:
            self._send_json(400, {"error": str(error)})
            return
        if isinstance(served, MutationResult):
            self._send_json(200, _mutation_payload(served))
        else:
            self._send_json(200, _result_payload(served))


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the scheduler/database references."""

    daemon_threads = True
    #: Don't join handler threads on close: a client holding a
    #: keep-alive connection open would stall shutdown otherwise.
    block_on_close = False
    scheduler: QueryScheduler
    db: ImageDatabase


class QueryServer:
    """The HTTP query service: scheduler + threaded JSON front end.

    Parameters
    ----------
    db:
        The database to serve.  ``POST /add`` / ``POST /remove`` mutate
        it while serving (serialized with query batches on the
        scheduler's worker); cached results are generation-stamped so a
        stale entry is never returned.
    host, port:
        Bind address; ``port=0`` picks a free ephemeral port —
        :attr:`address` reports the real one.
    scheduler:
        A preconfigured :class:`QueryScheduler`; when omitted one is
        built from the remaining keyword arguments (``max_batch``,
        ``max_wait_ms``, ``max_queue``, ``cache_size``, ``shards``,
        ``rate_limit_qps``, ...).

    Examples
    --------
    >>> from repro.features.base import PresetSignature
    >>> from repro.features.pipeline import FeatureSchema
    >>> import numpy as np
    >>> db = ImageDatabase(FeatureSchema([PresetSignature(4)]))
    >>> _ = db.add_vectors(np.random.default_rng(0).random((32, 4)))
    >>> server = QueryServer(db, port=0).start()
    >>> host, port = server.address
    >>> server.stop()
    """

    def __init__(
        self,
        db: ImageDatabase,
        *,
        host: str = "127.0.0.1",
        port: int = 8753,
        scheduler: QueryScheduler | None = None,
        **scheduler_options: object,
    ) -> None:
        if scheduler is not None and scheduler_options:
            raise ServeError(
                "pass either a prebuilt scheduler or scheduler options, not both"
            )
        self._scheduler = scheduler or QueryScheduler(db, **scheduler_options)  # type: ignore[arg-type]
        self._http = _Server((host, port), _Handler)
        self._http.scheduler = self._scheduler
        self._http.db = db
        self._thread: threading.Thread | None = None
        self._serving = False
        self._stopped = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — authoritative when ``port=0``."""
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def scheduler(self) -> QueryScheduler:
        """The underlying micro-batching scheduler."""
        return self._scheduler

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (CLI mode)."""
        self._serving = True
        self._http.serve_forever(poll_interval=0.1)

    def start(self) -> "QueryServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is None:
            self._serving = True  # the thread will reach serve_forever
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-serve-http", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the HTTP loop, close the socket, settle the scheduler.

        With ``drain`` (the default) every admitted request is still
        served before the scheduler closes.  ``drain=False`` is the
        SIGTERM path: the in-flight batch completes (and its mutations
        reach the journal — an acknowledged write is never abandoned),
        but queued requests fail fast with
        :class:`~repro.errors.ShuttingDownError` → HTTP 503 instead of
        holding the terminating process on a backlog.
        """
        if self._stopped:
            return
        self._stopped = True
        # shutdown() waits on an event only serve_forever manages — it
        # would block forever on a server that never served.
        if self._serving:
            self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._scheduler.close(drain=drain)

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        host, port = self.address
        state = "stopped" if self._stopped else "serving"
        return f"QueryServer({state}, http://{host}:{port})"
