"""Minimal HTTP client for the query service.

``ServiceClient`` speaks the JSON protocol of
:class:`~repro.serve.http.QueryServer` over ``urllib`` — no
dependencies, usable from scripts, examples, and CI smoke tests.  Server
errors come back as :class:`~repro.errors.ServeError` carrying the
server's message; responses are plain dicts mirroring the wire format
(see ``docs/serving.md`` for the field inventory).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Sequence

import numpy as np

from repro.errors import ServeError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talks to a running :class:`~repro.serve.http.QueryServer`.

    Parameters
    ----------
    host, port:
        Where the server listens.
    timeout:
        Per-request socket timeout in seconds (default 10).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8753, *, timeout: float = 10.0
    ) -> None:
        self._base = f"http://{host}:{int(port)}"
        self._timeout = float(timeout)

    @property
    def base_url(self) -> str:
        """The server's root URL."""
        return self._base

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        path: str,
        payload: dict | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if extra_headers:
            headers.update(extra_headers)
        request = urllib.request.Request(
            self._base + path, data=data, headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read()).get("error", str(error))
            except (json.JSONDecodeError, ValueError):
                message = str(error)
            raise ServeError(f"{path}: {message}") from None
        except urllib.error.URLError as error:
            raise ServeError(f"cannot reach {self._base}: {error.reason}") from None

    @staticmethod
    def _vector_payload(vector: Sequence[float] | np.ndarray) -> list[float]:
        return [float(value) for value in np.asarray(vector, dtype=np.float64).ravel()]

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def query(
        self,
        vector: Sequence[float] | np.ndarray,
        k: int = 10,
        *,
        feature: str | None = None,
        traceparent: str | None = None,
    ) -> dict:
        """``POST /query``: k-NN by signature vector.

        Returns the response dict: ``results`` (each with ``image_id``,
        ``distance``, ``name``, ``label``), ``cache_hit``,
        ``batch_size``, ``distance_computations``, ``latency_ms``, and
        ``trace_id`` when the server traces (the key into
        :meth:`debug_trace`).  ``traceparent`` forwards a W3C
        trace-context header so the request joins an existing
        distributed trace.
        """
        payload: dict = {"vector": self._vector_payload(vector), "k": int(k)}
        if feature is not None:
            payload["feature"] = feature
        return self._request(
            "/query",
            payload,
            {"traceparent": traceparent} if traceparent else None,
        )

    def range_query(
        self,
        vector: Sequence[float] | np.ndarray,
        radius: float,
        *,
        feature: str | None = None,
        traceparent: str | None = None,
    ) -> dict:
        """``POST /range``: all items within ``radius``."""
        payload: dict = {
            "vector": self._vector_payload(vector),
            "radius": float(radius),
        }
        if feature is not None:
            payload["feature"] = feature
        return self._request(
            "/range",
            payload,
            {"traceparent": traceparent} if traceparent else None,
        )

    def add(
        self,
        vectors: Sequence[Sequence[float]] | np.ndarray | None = None,
        *,
        signatures: dict[str, Sequence[Sequence[float]] | np.ndarray] | None = None,
        labels: Sequence[str | None] | None = None,
        names: Sequence[str] | None = None,
    ) -> dict:
        """``POST /add``: insert precomputed signatures into the database.

        Pass ``vectors`` (an ``(n, d)`` matrix) for a single-feature
        schema, or ``signatures`` (``{feature: matrix}`` covering every
        schema feature).  Returns ``ids`` (allocated, in row order),
        ``generations``, and ``latency_ms``.  The mutation serializes
        with in-flight query batches on the server's worker.
        """
        payload: dict = {}
        if vectors is not None:
            payload["vectors"] = [
                self._vector_payload(row) for row in np.asarray(vectors)
            ]
        if signatures is not None:
            payload["signatures"] = {
                name: [self._vector_payload(row) for row in np.asarray(rows)]
                for name, rows in signatures.items()
            }
        if labels is not None:
            payload["labels"] = list(labels)
        if names is not None:
            payload["names"] = list(names)
        return self._request("/add", payload)

    def remove(self, image_ids: Sequence[int]) -> dict:
        """``POST /remove``: delete images by id.

        Returns ``removed`` (the ids, in call order), ``generations``,
        and ``latency_ms``.
        """
        return self._request(
            "/remove", {"ids": [int(image_id) for image_id in image_ids]}
        )

    def save(self) -> dict:
        """``POST /save``: compact the journal into a fresh snapshot.

        Returns ``saved``, ``generations``, and ``latency_ms``; fails
        with :class:`~repro.errors.ServeError` when the server runs
        without a journal.  The barrier serializes with in-flight query
        batches — the snapshot is a point-in-time image.
        """
        return self._request("/save", {})

    def stats(self) -> dict:
        """``GET /stats``: the service's current counters."""
        return self._request("/stats")

    def metrics(self) -> str:
        """``GET /metrics``: raw Prometheus text exposition."""
        request = urllib.request.Request(
            self._base + "/metrics", headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServeError(f"/metrics: {error}") from None
        except urllib.error.URLError as error:
            raise ServeError(f"cannot reach {self._base}: {error.reason}") from None

    def healthz(self) -> dict:
        """``GET /healthz``: liveness + database summary."""
        return self._request("/healthz")

    def debug_traces(self) -> dict:
        """``GET /debug/traces``: flight-recorder summaries, newest first."""
        return self._request("/debug/traces")

    def debug_trace(self, trace_id: str) -> dict:
        """``GET /debug/trace?id=``: one full trace (per-stage spans).

        Fails with :class:`~repro.errors.ServeError` when the id is no
        longer retained (the ring evicted it) — fetch promptly.
        """
        return self._request(
            "/debug/trace?id=" + urllib.parse.quote(str(trace_id))
        )

    def debug_slow(self) -> dict:
        """``GET /debug/slow``: full traces past the slow threshold."""
        return self._request("/debug/slow")

    def wait_until_ready(self, timeout: float = 5.0) -> dict:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def __repr__(self) -> str:
        return f"ServiceClient({self._base})"
