"""Service-level metrics: throughput, latency percentiles, batch shapes.

The index layer already accounts for the paper's cost unit (distance
computations, per query, exactly); the serving layer adds the *online*
axes a production operator watches: request throughput, end-to-end
latency percentiles, how large the coalesced batches actually form, and
how often the result cache short-circuits the engine.

:class:`StatsCollector` is the thread-safe accumulator the scheduler
feeds; :class:`ServiceStats` is the immutable snapshot handed to
callers (and serialized by the HTTP front end's ``GET /stats``).
Latency percentiles are nearest-rank over a bounded window of the most
recent completions, so a long-running service reports current — not
lifetime-averaged — behaviour.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass

__all__ = ["ServiceStats", "StatsCollector"]


def _nearest_rank(sorted_values: list[float], quantile: float) -> float:
    """Nearest-rank percentile of an ascending sample (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values), max(1, math.ceil(quantile * len(sorted_values))))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class ServiceStats:
    """One immutable snapshot of the service's behaviour.

    Attributes
    ----------
    uptime_s:
        Seconds since the scheduler started.
    submitted, completed, rejected:
        Requests admitted, finished (cache hits included), and refused
        at admission (queue full).
    queue_depth:
        Requests waiting in the admission queue at snapshot time.
    batches_formed:
        Coalesced batches the worker has executed.
    mean_batch_size:
        Mean size of formed batches (requests per worker wake-up) — the
        coalescing figure of merit.
    mean_group_size:
        Mean *request* count of the per-(kind, feature, parameter)
        groups a formed batch splits into.  Each group is one
        ``query_batch`` / ``range_query_batch`` call, but the call
        carries one row per *distinct* vector — group size minus that
        group's dedup hits (see :attr:`dedup_hits` and
        ``ServedResult.batch_size``, which reports the deduped
        engine-call size).
    dedup_hits:
        Requests answered by another identical request *in the same
        formed batch*: the group's engine call evaluated their shared
        vector once and fanned the (bit-identical) results out to every
        duplicate's future.
    mutations:
        Add/remove requests the worker has applied (failed mutations —
        e.g. removing an unknown id — are not counted; their futures
        carry the error instead).
    saves:
        Snapshot compactions the worker has completed (``POST /save``
        barriers that succeeded).
    journaled:
        True when the scheduler runs with a write-ahead journal — every
        acknowledged mutation is durable (see ``docs/durability.md``).
    journal_records, journal_syncs:
        Records appended since the last compaction and group fsyncs
        performed (both 0 when journaling is off).
    journal_replayed:
        Records replayed from the journal at startup recovery.
    cache_hits, cache_misses, cache_hit_rate:
        Result-cache counters (misses equal engine executions).
    cache_invalidations:
        Cached entries evicted because their generation stamp no longer
        matched the database — the count of *prevented* stale answers.
        Every invalidation is also a miss, so hits + misses still
        partition the lookups.
    cache_revalidations:
        Stale-stamped entries the check-on-hit revalidator proved still
        valid (every inserted item provably outside the cached result,
        no result id removed) — re-stamped and served as hits instead
        of evicted.  Disjoint from :attr:`cache_invalidations`; every
        revalidation is also a hit.
    coalesced_mutations:
        Mutations that shared another mutation's engine barrier: the
        worker collapses adjacent same-kind add/remove runs into one
        ``insert_batch``/``remove`` call (one journal group record, one
        generation bump), and each run of length ``n`` counts ``n - 1``
        here — the barriers saved.
    throughput_qps:
        Completed requests per second of **uptime** — a *lifetime*
        average.  It converges to the long-run rate and barely moves
        with current load; use :attr:`recent_qps` to see what the
        service is doing *now*.
    recent_qps:
        Completed requests per second over the **recent completion
        window** (the same bounded window the latency percentiles use,
        newest ~2048 completions), measured from the window's oldest
        completion to snapshot time.  This is the windowed counterpart
        to the windowed latencies: after a traffic burst ends it decays
        toward zero while :attr:`throughput_qps` keeps averaging the
        burst over the whole uptime.  0.0 before any completion.
    latency_mean_ms, latency_p50_ms, latency_p95_ms:
        Submit-to-result latency over the recent completion window
        (windowed, like :attr:`recent_qps`; *not* lifetime).
    rate_limited:
        Requests refused at admission because the token bucket was
        empty (a subset of neither :attr:`submitted` nor
        :attr:`rejected` — throttling is its own refusal class, HTTP
        429 instead of 503).
    n_shards:
        Shards behind the scheduler (1 = unsharded pass-through).
    shard_sizes:
        Live item count per shard at snapshot time — the balance
        figure.
    shard_requests:
        Engine calls (scattered query groups + routed mutations) each
        shard has served since startup.
    backend:
        Name of the vector storage backend the database serves from
        (``"memory"`` or ``"mmap"`` — see ``docs/storage.md``).
    pool_hits, pool_misses, pool_evictions:
        Buffer-pool counters aggregated over the backend's open stores
        (all 0 for the unbounded in-memory backend).
    pool_resident, pool_capacity:
        Pages currently resident in the buffer pool vs. the configured
        cap — the bounded-memory guarantee, observable.
    """

    uptime_s: float
    submitted: int
    completed: int
    rejected: int
    queue_depth: int
    batches_formed: int
    mean_batch_size: float
    mean_group_size: float
    dedup_hits: int
    mutations: int
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    cache_invalidations: int
    throughput_qps: float
    recent_qps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    rate_limited: int = 0
    n_shards: int = 1
    shard_sizes: tuple[int, ...] = ()
    shard_requests: tuple[int, ...] = ()
    saves: int = 0
    journaled: bool = False
    journal_records: int = 0
    journal_syncs: int = 0
    journal_replayed: int = 0
    cache_revalidations: int = 0
    coalesced_mutations: int = 0
    backend: str = "memory"
    pool_hits: int = 0
    pool_misses: int = 0
    pool_evictions: int = 0
    pool_resident: int = 0
    pool_capacity: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form (JSON round-trippable) for the HTTP front end.

        Tuple fields become lists so ``json.loads(json.dumps(d)) == d``.
        """
        payload = asdict(self)
        payload["shard_sizes"] = list(self.shard_sizes)
        payload["shard_requests"] = list(self.shard_requests)
        return payload


class StatsCollector:
    """Thread-safe accumulator behind :class:`ServiceStats` snapshots."""

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"latency window must be >= 1; got {window}")
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._submitted = 0
        self._completed = 0
        self._rejected = 0
        self._batches = 0
        self._batch_size_total = 0
        self._groups = 0
        self._group_size_total = 0
        self._dedup_hits = 0
        self._mutations = 0
        self._coalesced = 0
        self._saves = 0
        self._rate_limited = 0
        self._latencies: deque[float] = deque(maxlen=window)
        self._completion_times: deque[float] = deque(maxlen=window)

    def record_submitted(self) -> None:
        with self._lock:
            self._submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_rate_limited(self) -> None:
        """Admission refused a request because the token bucket was empty."""
        with self._lock:
            self._rate_limited += 1

    def record_completed(self, latency_s: float) -> None:
        with self._lock:
            self._completed += 1
            self._latencies.append(latency_s)
            self._completion_times.append(time.monotonic())

    def record_batch(self, formed_size: int, group_sizes: list[int]) -> None:
        with self._lock:
            self._batches += 1
            self._batch_size_total += formed_size
            self._groups += len(group_sizes)
            self._group_size_total += sum(group_sizes)

    def record_dedup(self, count: int) -> None:
        """``count`` requests in a formed batch rode another's engine row."""
        with self._lock:
            self._dedup_hits += count

    def record_mutation(self) -> None:
        """The worker applied one add/remove request."""
        with self._lock:
            self._mutations += 1

    def record_coalesced(self, count: int) -> None:
        """``count`` mutations rode another mutation's engine barrier."""
        with self._lock:
            self._coalesced += count

    def record_save(self) -> None:
        """The worker completed one snapshot compaction."""
        with self._lock:
            self._saves += 1

    def snapshot(
        self,
        *,
        queue_depth: int,
        cache_hits: int,
        cache_misses: int,
        cache_invalidations: int = 0,
        cache_revalidations: int = 0,
        n_shards: int = 1,
        shard_sizes: tuple[int, ...] = (),
        shard_requests: tuple[int, ...] = (),
        journaled: bool = False,
        journal_records: int = 0,
        journal_syncs: int = 0,
        journal_replayed: int = 0,
        backend: str = "memory",
        pool_hits: int = 0,
        pool_misses: int = 0,
        pool_evictions: int = 0,
        pool_resident: int = 0,
        pool_capacity: int = 0,
    ) -> ServiceStats:
        """Assemble a :class:`ServiceStats` from the current counters."""
        with self._lock:
            now = time.monotonic()
            uptime = now - self._started
            window = sorted(self._latencies)
            mean_ms = (
                1e3 * sum(window) / len(window) if window else 0.0
            )
            # Windowed throughput: completions in the bounded window
            # divided by the span from its oldest completion to *now* —
            # idle time since the last completion decays the figure, the
            # way an operator expects a "current QPS" to behave.
            if self._completion_times:
                span = now - self._completion_times[0]
                recent_qps = (
                    len(self._completion_times) / span if span > 0.0 else 0.0
                )
            else:
                recent_qps = 0.0
            lookups = cache_hits + cache_misses
            return ServiceStats(
                uptime_s=uptime,
                submitted=self._submitted,
                completed=self._completed,
                rejected=self._rejected,
                queue_depth=queue_depth,
                batches_formed=self._batches,
                mean_batch_size=(
                    self._batch_size_total / self._batches if self._batches else 0.0
                ),
                mean_group_size=(
                    self._group_size_total / self._groups if self._groups else 0.0
                ),
                dedup_hits=self._dedup_hits,
                mutations=self._mutations,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                cache_hit_rate=cache_hits / lookups if lookups else 0.0,
                cache_invalidations=cache_invalidations,
                throughput_qps=self._completed / uptime if uptime > 0.0 else 0.0,
                recent_qps=recent_qps,
                latency_mean_ms=mean_ms,
                latency_p50_ms=1e3 * _nearest_rank(window, 0.50),
                latency_p95_ms=1e3 * _nearest_rank(window, 0.95),
                rate_limited=self._rate_limited,
                n_shards=n_shards,
                shard_sizes=tuple(shard_sizes),
                shard_requests=tuple(shard_requests),
                saves=self._saves,
                journaled=journaled,
                journal_records=journal_records,
                journal_syncs=journal_syncs,
                journal_replayed=journal_replayed,
                cache_revalidations=cache_revalidations,
                coalesced_mutations=self._coalesced,
                backend=backend,
                pool_hits=pool_hits,
                pool_misses=pool_misses,
                pool_evictions=pool_evictions,
                pool_resident=pool_resident,
                pool_capacity=pool_capacity,
            )
