"""Concurrent query serving with micro-batch coalescing.

The paper's system is an *online* image database — many users querying
at interactive rates — while the library's batched engine (PR 1/2) only
shines when a single caller hands it a pre-assembled query matrix.
This package is the bridge: a serving layer that turns concurrent
independent requests into the large batches the kernels are fast at.

The database may mutate while it serves: ``submit_add`` /
``submit_remove`` (HTTP: ``POST /add`` / ``POST /remove``) ride the
same admission queue as queries and apply on the worker thread as
barriers between query segments, and cached results are stamped with
per-feature generations so a mutation invalidates exactly the entries
it staled — lazily, never a global flush (``docs/mutability.md``).

================================  =======================================
Component                          Role
================================  =======================================
:class:`QueryScheduler`            bounded admission queue + batch-forming
                                   worker; groups requests by (kind,
                                   feature, parameter) and answers each
                                   group with one batched engine call;
                                   results are bit-identical to direct
                                   ``ImageDatabase`` queries; mutations
                                   serialize with query batches
:class:`MutationResult`            what an add/remove future resolves to
                                   (ids, post-mutation generations)
:class:`ResultCache`               LRU over finished result lists, keyed
                                   by a quantized signature digest and
                                   stamped with the generation each entry
                                   was computed under
:class:`ServiceStats`              snapshot: throughput, p50/p95 latency,
                                   formed-batch sizes, cache hit rate,
                                   mutations, lazy cache invalidations
:class:`QueryServer`               stdlib ``http.server`` JSON front end
                                   (``POST /query``, ``POST /range``,
                                   ``POST /add``, ``POST /remove``,
                                   ``GET /stats``, ``GET /healthz``)
:class:`ServiceClient`             urllib JSON client for the above
================================  =======================================

``python -m repro serve --db my.db`` starts the HTTP service over a
saved database; ``examples/serve_demo.py`` drives the whole stack —
including a live add/remove round trip — in-process.  Design notes and
knob semantics: ``docs/serving.md``; mutation protocol:
``docs/mutability.md``.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServiceClient
from repro.serve.http import QueryServer
from repro.serve.scheduler import MutationResult, QueryScheduler, ServedResult
from repro.serve.stats import ServiceStats, StatsCollector

__all__ = [
    "QueryScheduler",
    "ServedResult",
    "MutationResult",
    "ResultCache",
    "ServiceStats",
    "StatsCollector",
    "QueryServer",
    "ServiceClient",
]
