"""Concurrent query serving with micro-batch coalescing and sharding.

The paper's system is an *online* image database — many users querying
at interactive rates — while the library's batched engine (PR 1/2) only
shines when a single caller hands it a pre-assembled query matrix.
This package is the bridge: a serving layer that turns concurrent
independent requests into the large batches the kernels are fast at.

The database may mutate while it serves: ``submit_add`` /
``submit_remove`` (HTTP: ``POST /add`` / ``POST /remove``) ride the
same admission queue as queries and apply on the worker thread as
barriers between query segments, and cached results are stamped with
per-feature generations so a mutation invalidates exactly the entries
it staled — lazily, never a global flush (``docs/mutability.md``).

With ``shards > 1`` the scheduler fronts a scatter-gather
:class:`ShardedEngine`: the item set is partitioned by id hash into N
independent shard views (each with its own full index set), every
formed batch fans out to per-shard worker threads, and per-shard
answers are gathered with an exact k-way merge on ``(distance, id)`` —
**bit-identical** to the unsharded engine, ids and floats and
tie-breaks.  Mutations route rows to their home shards and remain
barriers; cache stamps become per-shard generation tuples so one
shard's mutation can never hide behind another's older stamp.

================================  =======================================
Component                          Role
================================  =======================================
:class:`QueryScheduler`            bounded admission queue + batch-forming
                                   worker; groups requests by (kind,
                                   feature, parameter) and answers each
                                   group with one batched engine call;
                                   results are bit-identical to direct
                                   ``ImageDatabase`` queries; mutations
                                   serialize with query batches; optional
                                   token-bucket rate limiting at admission
:class:`ShardedEngine`             scatter-gather over N shard views with
                                   exact (distance, id) k-way merge and
                                   per-shard generation stamps
:class:`TokenBucket`               non-blocking rate limiter behind
                                   ``rate_limit_qps`` (empty bucket →
                                   :class:`~repro.errors.RateLimitError`,
                                   HTTP 429)
:class:`MutationResult`            what an add/remove future resolves to
                                   (ids, post-mutation generations)
:class:`ResultCache`               LRU over finished result lists, keyed
                                   by a quantized signature digest and
                                   stamped with the generation each entry
                                   was computed under
:class:`ServiceStats`              snapshot: throughput, p50/p95 latency,
                                   formed-batch sizes, cache hit rate,
                                   mutations, lazy cache invalidations,
                                   shard sizes and request balance
:class:`MetricsRegistry`           Prometheus metric families: per-route
                                   latency histograms (log-spaced
                                   buckets), admission counters, queue
                                   depth and shard balance gauges, plus
                                   a text-exposition parser/validator
:class:`Trace` / :class:`Span`     one request's journey: a trace id
                                   (W3C ``traceparent`` in,
                                   ``X-Repro-Trace-Id`` out) and one
                                   span per pipeline stage, the engine
                                   spans carrying exact per-shard
                                   distance-computation counts
:class:`FlightRecorder`            bounded ring of the newest completed
                                   traces (``GET /debug/traces``,
                                   ``GET /debug/trace?id=``)
:class:`SlowQueryLog`              threshold-triggered keep of slow
                                   traces (``GET /debug/slow``) that
                                   fast traffic cannot flush
:class:`StructuredLog`             sampled, rate-limited JSON-lines
                                   event sink behind
                                   ``serve --access-log``
:class:`QueryServer`               stdlib ``http.server`` JSON front end
                                   (``POST /query``, ``POST /range``,
                                   ``POST /add``, ``POST /remove``,
                                   ``POST /save``, ``GET /stats``,
                                   ``GET /metrics``, ``GET /healthz``,
                                   ``GET /debug/*``)
:class:`ServiceClient`             urllib JSON client for the above
================================  =======================================

**Durability.**  Constructed with a
:class:`~repro.db.journal.JournalSet` (CLI: ``serve --journal DIR``),
the scheduler writes every mutation to a checksummed write-ahead log
before its future resolves — one group fsync per formed batch — so an
acknowledged write survives kill -9; startup replays the log onto the
last atomic snapshot and ``POST /save`` compacts online.  See
``docs/durability.md``.

**Observability.**  Three surfaces, three audiences: ``GET /stats`` is
the human snapshot, ``GET /metrics`` the Prometheus scrape (now with
per-stage ``repro_stage_seconds`` histograms and process gauges), and
``GET /debug/traces`` / ``/debug/trace?id=`` / ``/debug/slow`` the
forensic layer — per-request traces with one span per pipeline stage,
pretty-printed by ``repro trace``.  See ``docs/observability.md``.

``python -m repro serve --db my.db --shards 4`` starts the HTTP service
over a saved database; ``examples/serve_demo.py`` drives the whole
stack — including a live add/remove round trip — in-process.  Design
notes and knob semantics: ``docs/serving.md``; mutation protocol:
``docs/mutability.md``.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServiceClient
from repro.serve.http import QueryServer
from repro.serve.logsys import StructuredLog
from repro.serve.metrics import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    LatencyHistogram,
    MetricsRegistry,
    parse_exposition,
    read_process_stats,
    validate_exposition,
)
from repro.serve.scheduler import (
    MutationResult,
    QueryScheduler,
    ServedResult,
    TokenBucket,
)
from repro.serve.shard import (
    ScatterReport,
    ShardCall,
    ShardedEngine,
    merge_knn_results,
    merge_range_results,
    shard_of,
)
from repro.serve.stats import ServiceStats, StatsCollector
from repro.serve.trace import (
    FlightRecorder,
    SlowQueryLog,
    Span,
    Trace,
    format_trace,
    parse_traceparent,
)

__all__ = [
    "QueryScheduler",
    "ServedResult",
    "MutationResult",
    "TokenBucket",
    "ShardedEngine",
    "ShardCall",
    "ScatterReport",
    "shard_of",
    "merge_knn_results",
    "merge_range_results",
    "ResultCache",
    "ServiceStats",
    "StatsCollector",
    "MetricsRegistry",
    "LatencyHistogram",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "parse_exposition",
    "validate_exposition",
    "read_process_stats",
    "Trace",
    "Span",
    "FlightRecorder",
    "SlowQueryLog",
    "parse_traceparent",
    "format_trace",
    "StructuredLog",
    "QueryServer",
    "ServiceClient",
]
