"""Sharded scatter-gather engine: N shard views, exact k-way merge.

One ``QueryScheduler`` worker serializes every engine call, so a single
machine's throughput stops at one core no matter how well the kernels
vectorize.  This module splits the item set into **N shards** — each an
independent :class:`~repro.db.database.ImageDatabase` view with its own
full index set — and answers every formed batch by scatter-gather:

1. **scatter** — the group's query matrix goes to every non-empty shard;
   each shard's dedicated worker thread runs the same batched engine
   call the unsharded path would have run, over its slice;
2. **gather** — per-shard result lists (each already sorted by
   ``(distance, id)``, the engine-wide contract) are combined with an
   exact k-way merge on ``(distance, id)`` — k-NN truncates to ``k``,
   range keeps everything.

**Merge exactness.**  Shards partition the items, item ids are globally
unique, and per-item distances are bit-identical whichever shard holds
the item (the metric kernels are row-independent).  The engine's k-NN
contract — including the boundary tie-break — is "top-k by
``(distance, id)``" (stable argsort in the linear scan, a
``(-distance, -id)`` max-heap in the trees), so merging per-shard
top-k lists by the same key reproduces the unsharded answer bit for
bit: ids, distance floats, and order.  Per-query cost counters are
summed across shards — for the linear scan the shard slices sum to
exactly the unsharded ``n`` evaluations; pruning trees may pay more or
less in total because each shard prunes against its own slice.
``tests/test_shard_merge.py`` pins the merge against sorted-truncated
concatenation under hypothesis; ``tests/test_sharded_serving.py`` pins
end-to-end parity against the unsharded engine under randomized
query/mutation interleavings.

**Mutation routing.**  :func:`shard_of` hashes an image id to its home
shard.  ``add_vectors`` allocates globally sequential ids (seeded from
the source database's allocator, so the assignment matches what an
unsharded database would have produced), then routes each row to its
shard's ``add_vectors`` with the id made explicit; ``remove`` validates
every id globally before touching any shard, then routes.  The
scheduler still applies mutations as barriers between query segments —
the engine fans a mutation out and waits for every shard, so
linearizability is unchanged.

**Generations.**  Each shard keeps its own per-feature generation
stamps; the engine's stamp for a feature is the *tuple* across shards.
A result cached above the merge depends on every shard it gathered
from, and tuples make any single shard's movement visible — collapsing
to a scalar (e.g. the per-shard max) would let one shard's mutation
hide behind another's older stamp (regression-tested in
``tests/test_sharded_serving.py``).

Threading: each shard owns one single-thread executor, so a shard's
database is only ever touched by its own thread — the same
single-writer argument the unsharded worker relies on, N times over.
The scheduler worker is the only caller of this engine, so scatter
calls never overlap; parallelism comes from the per-shard threads
running their slices concurrently (NumPy kernels release the GIL for
the bulk of the work).
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import islice
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.db.database import ImageDatabase
from repro.db.journal import JournalRecord, JournalSet
from repro.db.query import RetrievalResult
from repro.errors import CatalogError, ServeError
from repro.index.stats import SearchStats
from repro.serve.cache import MutationDelta, MutationDeltaLog

__all__ = [
    "shard_of",
    "merge_knn_results",
    "merge_range_results",
    "ShardCall",
    "ScatterReport",
    "ShardedEngine",
]


def shard_of(image_id: int, n_shards: int) -> int:
    """The home shard of an image id.

    Plain modulo: sequential ids (the allocator's output) round-robin
    perfectly, arbitrary ids spread uniformly enough, and tests can
    predict routing without reimplementing a mixer.
    """
    if n_shards < 1:
        raise ServeError(f"n_shards must be >= 1; got {n_shards}")
    return int(image_id) % int(n_shards)


def _result_key(result: RetrievalResult) -> tuple[float, int]:
    return (result.distance, result.image_id)


def merge_knn_results(
    per_shard: Sequence[Sequence[RetrievalResult]], k: int
) -> list[RetrievalResult]:
    """Exact k-way merge of per-shard k-NN lists, truncated to ``k``.

    Each input list must be sorted by ``(distance, image_id)`` — the
    engine's result contract.  The output is identical to sorting the
    concatenation by that key and keeping the first ``k``: ids are
    globally unique, so the key is total and the merge deterministic
    even with duplicate distances.  Lazy (``heapq.merge`` + ``islice``):
    stops after ``k`` items instead of materializing every candidate.
    """
    if k < 1:
        raise ServeError(f"k must be >= 1; got {k}")
    return list(islice(heapq.merge(*per_shard, key=_result_key), k))


@dataclass(frozen=True)
class ShardCall:
    """Timing + cost of one shard's engine call inside a scatter.

    ``start`` is absolute ``time.monotonic()`` (the tracing clock);
    ``stats`` holds that shard's per-query :class:`SearchStats`, row
    ``qi`` matching query row ``qi`` of the scattered matrix — the
    per-shard distance-computation attribution the engine spans carry.
    """

    shard: int
    start: float
    duration_s: float
    stats: list[SearchStats]


@dataclass(frozen=True)
class ScatterReport:
    """What the last scatter-gather cost, shard by shard.

    Written by :meth:`ShardedEngine.query_batch` /
    :meth:`~ShardedEngine.range_query_batch` (the engine is
    single-caller — only the scheduler worker invokes it — so a plain
    attribute is race-free) and read back immediately by the scheduler
    to stamp per-request trace spans.  ``merge_start`` /
    ``merge_duration_s`` time the k-way gather; with one shard the
    merge is the identity and the span is zero-length, kept anyway so
    every trace exposes the same stage set.
    """

    shard_calls: list[ShardCall] = field(default_factory=list)
    merge_start: float = 0.0
    merge_duration_s: float = 0.0


def merge_range_results(
    per_shard: Sequence[Sequence[RetrievalResult]],
) -> list[RetrievalResult]:
    """Exact merge of per-shard range lists (no truncation).

    Range results follow the same ``(distance, id)`` ordering contract
    as k-NN, so the merged list equals the unsharded engine's answer —
    every shard hit, nearest first, ids breaking distance ties.
    """
    return list(heapq.merge(*per_shard, key=_result_key))


class ShardedEngine:
    """Scatter-gather facade over N independent shard databases.

    Parameters
    ----------
    db:
        The source database.  With ``n_shards == 1`` the engine is a
        zero-copy pass-through to ``db`` itself (no threads, no merge) —
        the unsharded scheduler path, unchanged.  With ``n_shards > 1``
        the items are partitioned by :func:`shard_of` into
        :meth:`~repro.db.database.ImageDatabase.shard_view` slices at
        construction; from then on the *engine* owns the live item set
        and the source object serves only as the schema/extraction
        template — do not query or mutate it directly.
    n_shards:
        Number of shards (>= 1).
    journal:
        Optional :class:`~repro.db.journal.JournalSet` (one file per
        shard).  When set, every mutation is appended to its home
        shards' journals *before* it applies in memory; records stay
        buffered until :meth:`sync_journal` (the scheduler's group
        commit) unless the mutation is called with ``sync=True`` (the
        default for direct callers).  An exception while applying an
        already-journaled mutation writes an abort mark so replay skips
        it.

    The engine is single-caller by design: the scheduler's worker thread
    is the only thread that may invoke query/mutation methods (scatter
    internally fans out to the per-shard threads).  Reads like
    :meth:`shard_sizes` are safe from any thread.
    """

    def __init__(
        self,
        db: ImageDatabase,
        n_shards: int = 1,
        *,
        journal: JournalSet | None = None,
    ) -> None:
        if n_shards < 1:
            raise ServeError(f"shards must be >= 1; got {n_shards}")
        if journal is not None and journal.n_shards != n_shards:
            raise ServeError(
                f"journal set has {journal.n_shards} file(s) for "
                f"{n_shards} shard(s)"
            )
        self._template = db
        self._journal = journal
        self._n = int(n_shards)
        self._next_id = db.next_image_id()
        self._shard_requests = [0] * self._n
        if self._n == 1:
            self._shards: list[ImageDatabase] = [db]
            self._pools: list[ThreadPoolExecutor] | None = None
        else:
            ids_by_shard: list[list[int]] = [[] for _ in range(self._n)]
            for image_id in db.catalog.ids:
                ids_by_shard[shard_of(image_id, self._n)].append(image_id)
            self._shards = [db.shard_view(ids) for ids in ids_by_shard]
            self._pools = [
                ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-shard-{i}"
                )
                for i in range(self._n)
            ]
        self._closed = False
        #: Per-(feature, shard) record of what each generation's
        #: mutation inserted/removed — what cache revalidation reads
        #: (bounded window; see ``repro.serve.cache``).
        self._delta_log = MutationDeltaLog()
        #: Timing/cost of the most recent scatter (scheduler reads it
        #: right after the call it instruments; single-caller, no lock).
        self.last_scatter: ScatterReport | None = None
        #: ``(start, duration_s)`` of the most recent mutation's journal
        #: append, or ``None`` when journaling is off / nothing appended.
        self.last_journal_append: tuple[float, float] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of shards (1 = unsharded pass-through)."""
        return self._n

    @property
    def shards(self) -> tuple[ImageDatabase, ...]:
        """The per-shard databases (shard 0 first).

        Exposed for tests and balance introspection; mutating a shard
        directly would race its worker thread.
        """
        return tuple(self._shards)

    @property
    def size(self) -> int:
        """Total live items across all shards."""
        return sum(len(shard) for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        """Live item count per shard — the balance figure."""
        return [len(shard) for shard in self._shards]

    def shard_requests(self) -> list[int]:
        """Engine calls (query groups + mutations) routed to each shard."""
        return list(self._shard_requests)

    def generation(self, feature: str) -> Hashable:
        """The feature's data-version stamp.

        Unsharded: the database's scalar generation, exactly as before.
        Sharded: the **tuple** of per-shard generations — any single
        shard's mutation changes the stamp, which is what makes cached
        merged results safe (see module docstring).
        """
        if self._n == 1:
            return self._shards[0].generation(feature)
        return tuple(shard.generation(feature) for shard in self._shards)

    def generations(self) -> dict[str, Hashable]:
        """All per-feature stamps (scalars unsharded, tuples sharded)."""
        if self._n == 1:
            return dict(self._shards[0].generations())
        return {
            feature: self.generation(feature)
            for feature in self._template.schema.names
        }

    # ------------------------------------------------------------------
    # Queries (scheduler worker thread only)
    # ------------------------------------------------------------------
    def query_batch(
        self, vectors: np.ndarray, k: int, feature: str
    ) -> tuple[list[list[RetrievalResult]], list[SearchStats]]:
        """Batched k-NN over all shards; merged results + summed stats."""
        return self._scatter("knn", vectors, int(k), feature)

    def range_query_batch(
        self, vectors: np.ndarray, radius: float, feature: str
    ) -> tuple[list[list[RetrievalResult]], list[SearchStats]]:
        """Batched range search over all shards; merged results + stats."""
        return self._scatter("range", vectors, float(radius), feature)

    def _scatter(
        self, kind: str, vectors: np.ndarray, parameter: int | float, feature: str
    ) -> tuple[list[list[RetrievalResult]], list[SearchStats]]:
        if self._n == 1:
            results, stats, call = self._run_shard(
                self._shards[0], 0, kind, vectors, parameter, feature
            )
            # One shard: the gather is the identity.  The zero-length
            # merge span keeps the stage set uniform across shard counts.
            self.last_scatter = ScatterReport(
                shard_calls=[call],
                merge_start=call.start + call.duration_s,
                merge_duration_s=0.0,
            )
            return results, stats

        live = [i for i, shard in enumerate(self._shards) if len(shard) > 0]
        assert self._pools is not None
        futures = [
            self._pools[i].submit(
                self._run_shard, self._shards[i], i, kind, vectors, parameter, feature
            )
            for i in live
        ]
        gathered = [future.result() for future in futures]

        merge_start = time.monotonic()
        m = vectors.shape[0]
        merged_results: list[list[RetrievalResult]] = []
        merged_stats: list[SearchStats] = []
        for qi in range(m):
            per_shard_lists = [results[qi] for results, _stats, _call in gathered]
            if kind == "knn":
                merged_results.append(
                    merge_knn_results(per_shard_lists, int(parameter))
                )
            else:
                merged_results.append(merge_range_results(per_shard_lists))
            total = SearchStats()
            for _results, stats, _call in gathered:
                total.merge(stats[qi])
            merged_stats.append(total)
        self.last_scatter = ScatterReport(
            shard_calls=[call for _results, _stats, call in gathered],
            merge_start=merge_start,
            merge_duration_s=time.monotonic() - merge_start,
        )
        return merged_results, merged_stats

    def _run_shard(
        self,
        shard: ImageDatabase,
        index: int,
        kind: str,
        vectors: np.ndarray,
        parameter: int | float,
        feature: str,
    ) -> tuple[list[list[RetrievalResult]], list[SearchStats], ShardCall]:
        self._shard_requests[index] += 1
        started = time.monotonic()
        if kind == "knn":
            results = shard.query_batch(
                vectors, int(parameter), feature=feature, precomputed=True
            )
        else:
            results = shard.range_query_batch(
                vectors, float(parameter), feature=feature, precomputed=True
            )
        stats = shard.index_for(feature).last_batch_stats
        call = ShardCall(index, started, time.monotonic() - started, stats)
        return results, stats, call

    # ------------------------------------------------------------------
    # Mutations (scheduler worker thread only)
    # ------------------------------------------------------------------
    def add_vectors(
        self,
        signatures: Mapping[str, np.ndarray] | np.ndarray,
        *,
        labels: Sequence[str | None] | None = None,
        names: Sequence[str] | None = None,
        sync: bool = True,
    ) -> list[int]:
        """Insert precomputed signatures, routing each row to its shard.

        Ids are allocated globally (sequential, same assignment the
        unsharded database would make) before any shard is touched;
        validation happens up front via
        :meth:`~repro.db.database.ImageDatabase.validate_signatures`, so
        a malformed payload fails atomically — and *before* anything is
        journaled, so a rejected payload leaves no record.  With a
        journal configured, each home shard's record is appended next,
        then the insert applies (in parallel on the shard threads when
        sharded); ``sync=False`` leaves the records buffered for the
        scheduler's per-batch group fsync.  The call returns once every
        shard has applied — the scheduler's barrier semantics are
        preserved.
        """
        self.last_journal_append = None
        matrices, n_rows = self._template.validate_signatures(
            signatures, labels=labels, names=names
        )
        next_id = (
            self._shards[0].next_image_id() if self._n == 1 else self._next_id
        )
        ids = list(range(next_id, next_id + n_rows))

        rows_by_shard: list[list[int]] = [[] for _ in range(self._n)]
        for row, image_id in enumerate(ids):
            rows_by_shard[shard_of(image_id, self._n)].append(row)

        seq = self._journal_add(rows_by_shard, ids, matrices, labels, names)
        try:
            if self._n == 1:
                self._shards[0].add_vectors(
                    matrices, labels=labels, names=names, ids=ids
                )
            else:
                assert self._pools is not None
                futures = []
                for shard_index, rows in enumerate(rows_by_shard):
                    if not rows:
                        continue
                    self._shard_requests[shard_index] += 1
                    futures.append(
                        self._pools[shard_index].submit(
                            self._shards[shard_index].add_vectors,
                            {
                                feature: matrix[rows]
                                for feature, matrix in matrices.items()
                            },
                            labels=[labels[row] for row in rows]
                            if labels is not None
                            else None,
                            names=[names[row] for row in rows]
                            if names is not None
                            else None,
                            ids=[ids[row] for row in rows],
                        )
                    )
                for future in futures:
                    future.result()
        except Exception:
            self._journal_abort(seq)
            raise
        if self._n > 1:
            self._next_id += n_rows
        # Record *after* applying: a lookup racing this window sees the
        # new generation without its delta and safely invalidates.
        for shard_index, rows in enumerate(rows_by_shard):
            if not rows:
                continue
            shard = self._shards[shard_index]
            shard_ids = [ids[row] for row in rows]
            for feature, matrix in matrices.items():
                self._delta_log.record_add(
                    (feature, shard_index),
                    shard.generation(feature),
                    shard_ids,
                    matrix[rows],
                )
        if sync:
            self.sync_journal()
        return ids

    def remove(
        self, image_ids: Sequence[int], *, sync: bool = True
    ) -> list[int]:
        """Remove images by id, routing each to its home shard.

        Validates every id against its shard's catalog *before* any
        shard mutates or any journal record is written (matching the
        unsharded validate-first contract: an unknown id fails the whole
        call and nothing changes), then journals, then applies per shard
        in parallel and returns the ids in call order.
        """
        self.last_journal_append = None
        image_ids = [int(image_id) for image_id in image_ids]
        if not image_ids:
            return []
        if len(set(image_ids)) != len(image_ids):
            from repro.errors import QueryError

            raise QueryError(f"duplicate ids in remove input: {image_ids}")
        ids_by_shard: list[list[int]] = [[] for _ in range(self._n)]
        for image_id in image_ids:
            home = shard_of(image_id, self._n)
            self._shards[home].catalog.get(image_id)  # raises when unknown
            ids_by_shard[home].append(image_id)

        seq = self._journal_remove(ids_by_shard)
        try:
            if self._n == 1:
                self._shards[0].remove(image_ids)
            else:
                assert self._pools is not None
                futures = []
                for shard_index, ids in enumerate(ids_by_shard):
                    if not ids:
                        continue
                    self._shard_requests[shard_index] += 1
                    futures.append(
                        self._pools[shard_index].submit(
                            self._shards[shard_index].remove, ids
                        )
                    )
                for future in futures:
                    future.result()
        except Exception:
            self._journal_abort(seq)
            raise
        for shard_index, shard_ids in enumerate(ids_by_shard):
            if not shard_ids:
                continue
            shard = self._shards[shard_index]
            for feature in self._template.schema.names:
                self._delta_log.record_remove(
                    (feature, shard_index), shard.generation(feature), shard_ids
                )
        if sync:
            self.sync_journal()
        return image_ids

    # ------------------------------------------------------------------
    # Mutation staging (coalescing support)
    # ------------------------------------------------------------------
    def validate_add(
        self,
        signatures: Mapping[str, np.ndarray] | np.ndarray,
        *,
        labels: Sequence[str | None] | None = None,
        names: Sequence[str] | None = None,
    ) -> tuple[dict[str, np.ndarray], int]:
        """Validate an add payload without applying it.

        Returns the normalized ``{feature: (n, d) float64 matrix}``
        mapping and the row count, exactly as
        :meth:`~repro.db.database.ImageDatabase.validate_signatures`.
        The scheduler stages payloads through this before coalescing
        adjacent adds, so a malformed member fails alone instead of
        poisoning the merged engine call.
        """
        return self._template.validate_signatures(
            signatures, labels=labels, names=names
        )

    def has_id(self, image_id: int) -> bool:
        """True when ``image_id`` is live on its home shard.

        The scheduler's remove-coalescing pre-check: a member whose ids
        are not all live is applied alone (and fails with the engine's
        own error) rather than failing the whole coalesced call.
        """
        try:
            self._shards[shard_of(image_id, self._n)].catalog.get(int(image_id))
        except CatalogError:
            return False
        return True

    @property
    def delta_log(self) -> MutationDeltaLog:
        """The bounded per-generation mutation record (revalidation feed)."""
        return self._delta_log

    def deltas_between(
        self, feature: str, old: Hashable, new: Hashable
    ) -> list[MutationDelta] | None:
        """Every mutation delta for ``feature`` between two stamps.

        ``old``/``new`` are generation stamps as :meth:`generation`
        hands them out — scalars unsharded, per-shard tuples sharded.
        Returns the deltas in shard order (within a shard, generation
        order), or ``None`` when any part of the range left the bounded
        window — the caller must then treat the cached entry as
        unprovable and invalidate.
        """
        if self._n == 1:
            return self._delta_log.between((feature, 0), old, new)
        if (
            not isinstance(old, tuple)
            or not isinstance(new, tuple)
            or len(old) != self._n
            or len(new) != self._n
        ):
            return None
        deltas: list[MutationDelta] = []
        for shard_index in range(self._n):
            if old[shard_index] == new[shard_index]:
                continue
            part = self._delta_log.between(
                (feature, shard_index), old[shard_index], new[shard_index]
            )
            if part is None:
                return None
            deltas.extend(part)
        return deltas

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    @property
    def journal(self) -> JournalSet | None:
        """The write-ahead journal set, when durability is on."""
        return self._journal

    def sync_journal(self) -> float:
        """Fsync buffered journal records (no-op without a journal).

        The durability point: once this returns, every mutation
        journaled since the previous sync may be acknowledged.  The
        scheduler calls it once per formed batch (group commit).
        """
        if self._journal is None:
            return 0.0
        return self._journal.sync()

    def _journal_add(
        self,
        rows_by_shard: list[list[int]],
        ids: list[int],
        matrices: Mapping[str, np.ndarray],
        labels: Sequence[str | None] | None,
        names: Sequence[str] | None,
    ) -> int | None:
        if self._journal is None or not ids:
            return None
        seq = self._journal.next_seq()
        records = {}
        for shard_index, rows in enumerate(rows_by_shard):
            if not rows:
                continue
            records[shard_index] = JournalRecord.add(
                seq,
                [ids[row] for row in rows],
                {feature: matrix[rows] for feature, matrix in matrices.items()},
                [labels[row] for row in rows] if labels is not None else None,
                [names[row] for row in rows] if names is not None else None,
                total=len(ids),
            )
        started = time.monotonic()
        self._journal.append_records(records)
        self.last_journal_append = (started, time.monotonic() - started)
        return seq

    def _journal_remove(self, ids_by_shard: list[list[int]]) -> int | None:
        if self._journal is None:
            return None
        seq = self._journal.next_seq()
        n_total = sum(len(ids) for ids in ids_by_shard)
        records = {
            shard_index: JournalRecord.remove(seq, ids, total=n_total)
            for shard_index, ids in enumerate(ids_by_shard)
            if ids
        }
        started = time.monotonic()
        self._journal.append_records(records)
        self.last_journal_append = (started, time.monotonic() - started)
        return seq

    def _journal_abort(self, seq: int | None) -> None:
        """Mark a journaled-but-unapplied mutation aborted (best effort)."""
        if self._journal is None or seq is None:
            return
        try:
            self._journal.append_abort(seq)
        except Exception:  # pragma: no cover - the original error matters more
            pass

    def merged_database(self) -> ImageDatabase:
        """One database over the engine's full live item set.

        Unsharded this *is* the live database; sharded it is a fresh
        merge of the shard views (ascending id order, no index build) —
        what snapshot compaction saves.
        """
        if self._n == 1:
            return self._shards[0]
        return ImageDatabase.from_views(self._shards)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the executors down; sync + close the journal (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)
        if self._journal is not None:
            self._journal.close()

    def __repr__(self) -> str:
        return (
            f"ShardedEngine(shards={self._n}, sizes={self.shard_sizes()}, "
            f"{'closed' if self._closed else 'open'})"
        )
