"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses mark
the subsystem that failed; they carry no extra state beyond the message.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ImageError",
    "CodecError",
    "FeatureError",
    "MetricError",
    "IndexingError",
    "StoreError",
    "JournalError",
    "RecoveryError",
    "CatalogError",
    "QueryError",
    "ServeError",
    "RateLimitError",
    "ShuttingDownError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ImageError(ReproError):
    """Invalid image data, shape, dtype, or value range."""


class CodecError(ImageError):
    """Malformed or unsupported image file content (PPM/PGM/BMP codecs)."""


class FeatureError(ReproError):
    """Feature extraction failed or an extractor was misconfigured."""


class MetricError(ReproError):
    """A distance function received incompatible or invalid operands."""


class IndexingError(ReproError):
    """An index structure was misused (empty build, bad parameters, ...)."""


class StoreError(ReproError):
    """The paged feature store or buffer pool detected corruption/misuse."""


class JournalError(StoreError):
    """The write-ahead journal was misused or its file is unreadable.

    Torn *tail* records are not errors — they are the expected residue
    of a crash and are silently truncated at replay.  This error marks
    damage recovery must not paper over: a corrupt header, an unreadable
    fingerprint record, an append to a closed journal.
    """


class RecoveryError(ReproError):
    """Startup recovery refused to replay a journal.

    Raised when the journal/snapshot directory is inconsistent in a way
    replay cannot safely resolve: a fingerprint (format version +
    feature configuration) mismatch between journal, snapshot, and the
    serving schema, a journal that references a snapshot that is gone,
    or corruption before the tail.  The alternative — replaying anyway —
    would corrupt state silently, so this is always a hard stop.
    """


class CatalogError(ReproError):
    """Catalog lookups/insertions failed (unknown id, duplicate id, ...)."""


class QueryError(ReproError):
    """A database query was malformed (unknown feature, bad weights, ...)."""


class ServeError(ReproError):
    """The query service refused a request (queue full, closed, bad HTTP)."""


class RateLimitError(ServeError):
    """The service's token bucket is empty; retry after a backoff.

    Distinct from the plain queue-full :class:`ServeError` so clients can
    tell *throttled* (slow down) from *overloaded* (shed load); the HTTP
    front end maps it to status 429 instead of 503.
    """


class ShuttingDownError(ServeError):
    """The scheduler is shutting down and refused the request.

    Raised at submission once :meth:`QueryScheduler.close` has begun,
    and set on already-queued futures when the close abandons the queue
    (``drain=False`` — the SIGTERM path) instead of serving it out.
    Distinct from queue-full so clients know a retry against *this*
    process is pointless; the HTTP front end maps it to 503 with a
    ``"shutting_down": true`` body.
    """
