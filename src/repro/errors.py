"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses mark
the subsystem that failed; they carry no extra state beyond the message.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ImageError",
    "CodecError",
    "FeatureError",
    "MetricError",
    "IndexingError",
    "StoreError",
    "CatalogError",
    "QueryError",
    "ServeError",
    "RateLimitError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ImageError(ReproError):
    """Invalid image data, shape, dtype, or value range."""


class CodecError(ImageError):
    """Malformed or unsupported image file content (PPM/PGM/BMP codecs)."""


class FeatureError(ReproError):
    """Feature extraction failed or an extractor was misconfigured."""


class MetricError(ReproError):
    """A distance function received incompatible or invalid operands."""


class IndexingError(ReproError):
    """An index structure was misused (empty build, bad parameters, ...)."""


class StoreError(ReproError):
    """The paged feature store or buffer pool detected corruption/misuse."""


class CatalogError(ReproError):
    """Catalog lookups/insertions failed (unknown id, duplicate id, ...)."""


class QueryError(ReproError):
    """A database query was malformed (unknown feature, bad weights, ...)."""


class ServeError(ReproError):
    """The query service refused a request (queue full, closed, bad HTTP)."""


class RateLimitError(ServeError):
    """The service's token bucket is empty; retry after a backoff.

    Distinct from the plain queue-full :class:`ServeError` so clients can
    tell *throttled* (slow down) from *overloaded* (shed load); the HTTP
    front end maps it to status 429 instead of 503.
    """
