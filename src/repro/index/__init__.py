"""Metric-space index structures — the paper's core contribution.

A content-based image index organizes feature vectors so that *range*
queries ("everything within distance t of this picture") and *k-NN*
queries ("the k most similar pictures") touch far fewer vectors than a
linear scan.  The only tool available in a general metric space is the
triangle inequality, and every structure here is built on it:

:class:`~repro.index.linear.LinearScanIndex`
    The baseline every experiment compares against: exactly N distance
    computations per query, trivially exact.
:class:`~repro.index.vptree.VPTree`
    The vantage-point tree: each node picks a pivot, splits the rest at
    the median distance to it, and search prunes whole subtrees whose
    distance interval cannot intersect the query ball.  Supports exact
    range and branch-and-bound k-NN search plus two bounded approximation
    modes.  This is the reproduction's headline structure.
:class:`~repro.index.antipole.AntipoleTree`
    Antipole clustering (Cantone et al.): recursive splits driven by an
    approximate farthest pair ("antipole"), bounded-radius leaf clusters
    around an approximate 1-median, and triangle-inequality search with
    both exclusion and inclusion pruning.
:class:`~repro.index.laesa.LAESAIndex`
    The pivot-table alternative (Micó/Oncina/Vidal 1994, exactly
    contemporary with the reproduced paper): precompute distances to m
    pivots, lower-bound every object with the triangle inequality, and
    compute true distances only for survivors — memory traded for metric
    evaluations.
:class:`~repro.index.mtree.MTree`
    The dynamic, paged metric tree (Ciaccia/Patella/Zezula): grows
    bottom-up through B-tree-style page splits, so images can keep
    arriving after the initial build; search prunes with both the
    covering radius and the stored parent distances.  Pages double as
    the I/O cost unit of experiment T9.
:class:`~repro.index.gnat.GNAT`
    Brin's geometric near-neighbor access tree: m-way splits around
    greedily spread split points plus per-pair distance-interval tables,
    trading a costlier build for stronger pruning per computed distance.
:class:`~repro.index.filter_refine.FilterRefineIndex`
    The GEMINI pipeline: search a cheap contractive projection of the
    features (KL transform / FastMap, :mod:`repro.reduce`), then refine
    the surviving candidates with the full metric — lower-bounding
    guarantees no false dismissals.
:class:`~repro.index.kdtree.KDTree`
    The coordinate-space baseline: median splits on the widest dimension.
    Only valid for Minkowski metrics, which is the point the dimensionality
    experiment makes about general metric data.

All indexes share the :class:`~repro.index.base.MetricIndex` interface —
scalar ``range_search`` / ``knn_search`` plus their batched ``_batch``
variants, which answer an ``(m, d)`` query matrix through the metrics'
vectorized kernels with bit-identical results — and report per-query
:class:`~repro.index.stats.SearchStats` whose distance counts the test
suite verifies against wrapped-metric ground truth.  All of them also
accept post-build mutations through ``insert_batch`` / ``delete``:
dynamic structures (M-tree, linear scan, LAESA) grow and shrink in
place, the static trees overlay a pending buffer and tombstones with a
threshold-triggered rebuild, and either way query results stay exact
over the live item set with fully counted costs (``docs/mutability.md``).
"""

from repro.index.base import MetricIndex, Neighbor
from repro.index.stats import BuildStats, SearchStats
from repro.index.linear import LinearScanIndex
from repro.index.vptree import VPTree
from repro.index.antipole import AntipoleTree
from repro.index.kdtree import KDTree
from repro.index.laesa import LAESAIndex
from repro.index.mtree import MTree
from repro.index.gnat import GNAT
from repro.index.filter_refine import FilterRefineIndex
from repro.index.browse import browse
from repro.index.pivot import (
    MaxSpreadPivot,
    MaxVariancePivot,
    PivotStrategy,
    RandomPivot,
)

__all__ = [
    "MetricIndex",
    "Neighbor",
    "SearchStats",
    "BuildStats",
    "LinearScanIndex",
    "VPTree",
    "AntipoleTree",
    "KDTree",
    "LAESAIndex",
    "MTree",
    "GNAT",
    "FilterRefineIndex",
    "browse",
    "PivotStrategy",
    "RandomPivot",
    "MaxSpreadPivot",
    "MaxVariancePivot",
]
