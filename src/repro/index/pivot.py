"""Pivot (vantage point) selection strategies for the VP-tree.

How much a vantage point prunes depends on the *spread* of distances from
it: a pivot in the middle of the data sees a narrow distance distribution
and separates nothing, while a pivot at the edge ("corner") of the space
sees a wide one.  Experiment T4 quantifies the effect; these are the
strategies it sweeps:

:class:`RandomPivot`
    Uniform choice — the control.
:class:`MaxSpreadPivot`
    Two-sweep farthest-point heuristic: pick a random item, take the item
    farthest from it.  Cheap (2n distances) and reliably peripheral.
:class:`MaxVariancePivot`
    Yianilos' criterion: among a candidate sample, keep the candidate with
    the largest variance of distances to a data sample.

Strategies are deterministic given their ``numpy.random.Generator``.

Candidate spreads are computed in batch: when the index supplies its
counted ``dist_batch`` callable, each sweep is one vectorized kernel
pass over the candidate block (same evaluation order, same count — a
batch of n rows is n computations).  Callers that only pass the scalar
``dist`` get a loop with identical results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.errors import IndexingError

__all__ = [
    "PivotStrategy",
    "RandomPivot",
    "MaxSpreadPivot",
    "MaxVariancePivot",
    "anchor_distances",
]

#: A distance callable supplied by the index (so pivot work is counted).
DistanceFn = Callable[[np.ndarray, np.ndarray], float]

#: Its batched counterpart: distances from one anchor to a vector block.
DistanceBatchFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def anchor_distances(
    anchor: np.ndarray,
    vectors: np.ndarray,
    dist: DistanceFn,
    dist_batch: DistanceBatchFn | None,
) -> np.ndarray:
    """Distances from ``anchor`` to every row, batched when possible."""
    if dist_batch is not None:
        return np.asarray(dist_batch(anchor, vectors))
    return np.array([dist(anchor, row) for row in vectors])


class PivotStrategy(ABC):
    """Chooses which of ``vectors`` becomes the node's vantage point."""

    @property
    def name(self) -> str:
        """Identifier used in ablation tables."""
        return type(self).__name__

    @abstractmethod
    def select(
        self,
        vectors: np.ndarray,
        dist: DistanceFn,
        rng: np.random.Generator,
        *,
        dist_batch: DistanceBatchFn | None = None,
    ) -> int:
        """Return the row index of the chosen pivot.

        ``vectors`` is the ``(m, d)`` subset being split (``m >= 1``);
        ``dist`` (and ``dist_batch``, when given) must be used for all
        distance evaluations so the build cost accounting stays exact.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RandomPivot(PivotStrategy):
    """Uniformly random pivot."""

    def select(
        self,
        vectors: np.ndarray,
        dist: DistanceFn,
        rng: np.random.Generator,
        *,
        dist_batch: DistanceBatchFn | None = None,
    ) -> int:
        return int(rng.integers(vectors.shape[0]))


class MaxSpreadPivot(PivotStrategy):
    """Farthest point from a random seed (two-sweep heuristic)."""

    def select(
        self,
        vectors: np.ndarray,
        dist: DistanceFn,
        rng: np.random.Generator,
        *,
        dist_batch: DistanceBatchFn | None = None,
    ) -> int:
        m = vectors.shape[0]
        if m == 1:
            return 0
        seed = int(rng.integers(m))
        distances = anchor_distances(vectors[seed], vectors, dist, dist_batch)
        return int(np.argmax(distances))


class MaxVariancePivot(PivotStrategy):
    """Candidate with the largest distance variance over a data sample.

    Parameters
    ----------
    n_candidates:
        Pivot candidates drawn at random (default 8).
    sample_size:
        Data items each candidate is evaluated against (default 16).
    """

    def __init__(self, n_candidates: int = 8, sample_size: int = 16) -> None:
        if n_candidates < 1 or sample_size < 2:
            raise IndexingError(
                f"need n_candidates >= 1 and sample_size >= 2; "
                f"got {n_candidates}, {sample_size}"
            )
        self._n_candidates = n_candidates
        self._sample_size = sample_size

    def select(
        self,
        vectors: np.ndarray,
        dist: DistanceFn,
        rng: np.random.Generator,
        *,
        dist_batch: DistanceBatchFn | None = None,
    ) -> int:
        m = vectors.shape[0]
        if m <= 2:
            return 0
        candidates = rng.choice(m, size=min(self._n_candidates, m), replace=False)
        sample = rng.choice(m, size=min(self._sample_size, m), replace=False)
        sample_block = vectors[sample]
        best_index = int(candidates[0])
        best_variance = -1.0
        for candidate in candidates:
            distances = anchor_distances(
                vectors[candidate], sample_block, dist, dist_batch
            )
            variance = float(np.var(distances))
            if variance > best_variance:
                best_variance = variance
                best_index = int(candidate)
        return best_index
