"""Linear scan: the exact, index-free baseline.

Every query computes the distance to all N items.  This is both the
correctness oracle for the tree indexes (property tests compare against
it) and the cost baseline the evaluation's speedup factors are quoted
against.  It accepts non-metric distances, since it never prunes.

Scalar and batched queries share one implementation: each query is a
single ``Metric.distance_batch`` call over the whole vector table, so a
metric with a vectorized kernel turns the scan's N evaluations into one
NumPy pass (the old per-item Python loop paid interpreter overhead per
vector).  The cost accounting is unchanged — exactly N counted distance
computations per query, batch or not.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex, Neighbor

__all__ = ["LinearScanIndex"]


class LinearScanIndex(MetricIndex):
    """Brute-force scan over all stored vectors."""

    requires_metric = False

    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        # Nothing to construct: the validated arrays on the base class are
        # the whole data structure.
        self._build_stats.n_leaves = 1
        self._build_stats.depth = 0

    def _insert_batch(self, ids: list[int], vectors: np.ndarray) -> None:
        # The arrays *are* the structure, so insertion is a row append —
        # no pending buffer, no extra query cost.
        self._append_core(ids, vectors)

    def _delete(self, ids: list[int]) -> None:
        # True deletion: the rows leave the scan entirely.
        self._remove_core(ids)

    def _scan(self, query: np.ndarray) -> np.ndarray:
        """All N distances, counted exactly once per item.

        On a bounded backend the scan walks one buffer-pool page at a
        time so resident memory stays at ``cache_pages`` pages; the
        metric kernels are row-independent, so the concatenated
        per-block distances are bit-identical to the single
        whole-matrix evaluation the memory backend performs, and the
        counted total is the same N either way.
        """
        assert self._vectors is not None and self._core is not None
        if self._core.bounded:
            parts = [
                self._dist_batch(query, block)
                for _start, block in self._core.iter_blocks()
            ]
            distances = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
            )
        else:
            distances = self._dist_batch(query, self._vectors)
        self._search_stats.leaves_visited = 1
        return distances

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        distances = self._scan(query)
        return [
            Neighbor(self._ids[row], float(distances[row]))
            for row in np.flatnonzero(distances <= radius)
        ]

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        distances = self._scan(query)
        # The stable sort keeps the earliest-inserted among equal
        # distances, preserving the documented tie-break.
        order = np.argsort(distances, kind="stable")[:k]
        return [Neighbor(self._ids[row], float(distances[row])) for row in order]
