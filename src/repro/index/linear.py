"""Linear scan: the exact, index-free baseline.

Every query computes the distance to all N items.  This is both the
correctness oracle for the tree indexes (property tests compare against
it) and the cost baseline the evaluation's speedup factors are quoted
against.  It accepts non-metric distances, since it never prunes.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.index.base import MetricIndex, Neighbor

__all__ = ["LinearScanIndex"]


class LinearScanIndex(MetricIndex):
    """Brute-force scan over all stored vectors."""

    requires_metric = False

    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        # Nothing to construct: the validated arrays on the base class are
        # the whole data structure.
        self._build_stats.n_leaves = 1
        self._build_stats.depth = 0

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        assert self._vectors is not None
        result = []
        for item_id, vector in zip(self._ids, self._vectors):
            d = self._dist(query, vector)
            if d <= radius:
                result.append(Neighbor(item_id, d))
        self._search_stats.leaves_visited = 1
        return result

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        assert self._vectors is not None
        # Max-heap of the best k via negated distances; ties broken toward
        # earlier insertion (smaller id position) for determinism.
        heap: list[tuple[float, int, int]] = []
        for position, (item_id, vector) in enumerate(zip(self._ids, self._vectors)):
            d = self._dist(query, vector)
            entry = (-d, -position, item_id)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
        self._search_stats.leaves_visited = 1
        return [Neighbor(item_id, -neg_d) for neg_d, _neg_pos, item_id in heap]
