"""The Antipole tree: bounded-radius clustering via approximate farthest pairs.

Construction follows Cantone, Ferro, Pulvirenti, Reforgiato & Shasha
("Antipole Tree Indexing to Support Range Search and K-Nearest-Neighbor
Search in Metric Spaces", TKDE 2005), the algorithm the reproduced
pipeline adopts for its index:

* an **approximate 1-median** of a set is found by a *tournament*: random
  groups of ``tau`` elements each elect their exact 1-median into the
  next round, until few enough remain for an exact computation — linear
  time overall;
* an **approximate antipole pair** (farthest pair) runs the complementary
  tournament: each group *discards* its 1-median and keeps the rest, and
  the final round returns the exact farthest pair of the survivors;
* the tree splits a set by its antipole pair ``(A, B)`` whenever the
  approximate diameter ``dist(A, B)`` exceeds the **cluster diameter
  threshold**; each remaining point joins the closer endpoint's side.
  Otherwise the set becomes a **leaf cluster** annotated with its
  approximate 1-median (centroid), its radius, and each member's cached
  distance to the centroid.

Search uses the triangle inequality in *both* directions, as the paper
emphasizes: subtrees and whole clusters are **excluded** when
``dist(q, anchor) - radius > t``, and members are **included** without a
fresh distance computation when ``dist(q, centroid) + cached <= t``
(exploited by :meth:`AntipoleTree.range_search_ids`; the exact variant
still evaluates the metric so it can report true distances, and records
how many evaluations the inclusion rule would have saved).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import IndexingError
from repro.index.base import MetricIndex, Neighbor
from repro.index.stats import SearchStats
from repro.metrics.base import Metric

__all__ = ["AntipoleTree"]

DistanceFn = Callable[[np.ndarray, np.ndarray], float]
DistanceBatchFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class _Cluster:
    """Leaf: a bounded-radius cluster around an approximate 1-median."""

    centroid_id: int
    centroid_vector: np.ndarray
    member_ids: list[int]  # excludes the centroid
    member_vectors: np.ndarray
    member_centroid_distances: np.ndarray  # cached dist(centroid, member)
    radius: float


@dataclass
class _Split:
    """Internal node: antipole endpoints and their subtree radii.

    The endpoints ``A`` and ``B`` live *at the node* (they are removed from
    the recursion, as in the paper), so search must consider them as
    candidates here; ``a_child``/``b_child`` may be ``None`` when an
    endpoint attracted no other points.
    """

    a_id: int
    a_vector: np.ndarray
    b_id: int
    b_vector: np.ndarray
    a_radius: float  # max dist(A, x) over the A-side subtree items
    b_radius: float
    a_child: "_Split | _Cluster | None"
    b_child: "_Split | _Cluster | None"


def _exact_1_median_row(
    vectors: np.ndarray, rows: list[int], dist_batch: DistanceBatchFn
) -> int:
    """Row (from ``rows``) minimizing the sum of distances to the others.

    Each candidate's distances are one batched evaluation; the sum is
    accumulated left to right so it is bit-identical to the scalar-era
    running total (the winner must not shift by an ulp of reordering).
    """
    block = vectors[rows]
    best_row = rows[0]
    best_sum = np.inf
    for position, candidate in enumerate(rows):
        others = np.delete(block, position, axis=0)
        total = 0.0
        for d in dist_batch(vectors[candidate], others).tolist():
            total += d
        if total < best_sum:
            best_sum = total
            best_row = candidate
    return best_row


class AntipoleTree(MetricIndex):
    """Antipole clustering tree supporting exact range and k-NN search.

    Parameters
    ----------
    metric:
        Any true metric.
    diameter_threshold:
        Cluster diameter bound: sets whose approximate diameter is at most
        this value become leaf clusters.  ``None`` (default) derives it at
        build time as ``diameter_fraction`` of the root set's approximate
        diameter.
    diameter_fraction:
        Used only when ``diameter_threshold`` is None (default 0.3).
    tournament_size:
        Group size ``tau`` of the median/antipole tournaments (default 3,
        the value for which the paper's fast and accurate variants
        coincide).
    final_round_size:
        Tournament population at which the exact computation takes over.
    seed:
        Seed for the tournament's random partitioning.
    """

    def __init__(
        self,
        metric: Metric,
        *,
        diameter_threshold: float | None = None,
        diameter_fraction: float = 0.3,
        tournament_size: int = 3,
        final_round_size: int = 9,
        seed: int = 0,
    ) -> None:
        super().__init__(metric)
        if diameter_threshold is not None and diameter_threshold < 0.0:
            raise IndexingError(
                f"diameter_threshold must be non-negative; got {diameter_threshold}"
            )
        if not 0.0 < diameter_fraction < 1.0:
            raise IndexingError(
                f"diameter_fraction must lie in (0, 1); got {diameter_fraction}"
            )
        if tournament_size < 2:
            raise IndexingError(f"tournament_size must be >= 2; got {tournament_size}")
        if final_round_size < tournament_size:
            raise IndexingError(
                "final_round_size must be at least tournament_size; got "
                f"{final_round_size} < {tournament_size}"
            )
        self._diameter_threshold = diameter_threshold
        self._diameter_fraction = diameter_fraction
        self._tau = tournament_size
        self._final_round = final_round_size
        self._seed = seed
        self._root: _Split | _Cluster | None = None
        self._effective_threshold: float | None = None

    @property
    def effective_diameter_threshold(self) -> float:
        """The threshold actually used (resolved at build time)."""
        if self._effective_threshold is None:
            raise IndexingError("index has not been built yet")
        return self._effective_threshold

    # ------------------------------------------------------------------
    # Tournaments
    # ------------------------------------------------------------------
    def _approx_1_median(
        self, vectors: np.ndarray, rows: list[int], rng: np.random.Generator
    ) -> int:
        """APPROX_1_MEDIAN: tournament of exact group medians."""
        current = list(rows)
        while len(current) > self._final_round:
            rng.shuffle(current)
            winners: list[int] = []
            position = 0
            while len(current) - position >= 2 * self._tau:
                group = current[position : position + self._tau]
                position += self._tau
                winners.append(
                    _exact_1_median_row(vectors, group, self._build_dist_batch)
                )
            leftover = current[position:]
            winners.append(
                _exact_1_median_row(vectors, leftover, self._build_dist_batch)
            )
            current = winners
        return _exact_1_median_row(vectors, current, self._build_dist_batch)

    def _approx_antipole(
        self, vectors: np.ndarray, rows: list[int], rng: np.random.Generator
    ) -> tuple[int, int, float]:
        """APPROX_ANTIPOLE: discard group medians, then exact farthest pair."""
        if len(rows) < 2:
            raise IndexingError("antipole needs at least two items")
        current = list(rows)
        while len(current) > self._final_round:
            rng.shuffle(current)
            survivors: list[int] = []
            position = 0
            while len(current) - position >= 2 * self._tau:
                group = current[position : position + self._tau]
                position += self._tau
                median = _exact_1_median_row(vectors, group, self._build_dist_batch)
                survivors.extend(row for row in group if row != median)
            leftover = current[position:]
            if len(leftover) >= 2:
                median = _exact_1_median_row(vectors, leftover, self._build_dist_batch)
                survivors.extend(row for row in leftover if row != median)
            else:
                survivors.extend(leftover)
            if len(survivors) < 2:  # pathological tiny input
                survivors = current
                break
            current = survivors

        # Exact farthest pair of the survivors: one batched sweep per
        # anchor covers its combinations (same pairs, same order).
        best = (current[0], current[1], -1.0)
        for position, row_a in enumerate(current[:-1]):
            later = current[position + 1 :]
            distances = self._build_dist_batch(
                vectors[row_a], vectors[later]
            ).tolist()
            for row_b, d in zip(later, distances):
                if d > best[2]:
                    best = (row_a, row_b, d)
        return best

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        rng = np.random.default_rng(self._seed)
        rows = list(range(len(ids)))
        self._id_list = list(ids)

        if self._diameter_threshold is not None:
            self._effective_threshold = self._diameter_threshold
            self._root = self._build_node(vectors, rows, rng, depth=0)
            return

        # Derive the threshold from the root set's approximate diameter.
        if len(rows) >= 2:
            _, _, diameter = self._approx_antipole(vectors, rows, rng)
            self._effective_threshold = self._diameter_fraction * diameter
        else:
            self._effective_threshold = 0.0
        self._root = self._build_node(vectors, rows, rng, depth=0)

    def _build_node(
        self,
        vectors: np.ndarray,
        rows: list[int],
        rng: np.random.Generator,
        depth: int,
    ) -> "_Split | _Cluster":
        stats = self._build_stats
        stats.depth = max(stats.depth, depth)
        assert self._effective_threshold is not None

        if len(rows) >= 2:
            row_a, row_b, diameter = self._approx_antipole(vectors, rows, rng)
        else:
            diameter = 0.0

        if len(rows) < 2 or diameter <= self._effective_threshold:
            return self._make_cluster(vectors, rows, rng)

        # The endpoints stay at this node; everything else joins the side
        # of the closer endpoint.  Both endpoint sweeps are batched (the
        # metric's bitwise symmetry makes the flipped operand order safe).
        rest = [row for row in rows if row not in (row_a, row_b)]
        rest_block = vectors[rest]
        distances_a = self._build_dist_batch(vectors[row_a], rest_block).tolist()
        distances_b = self._build_dist_batch(vectors[row_b], rest_block).tolist()
        side_a: list[int] = []
        side_b: list[int] = []
        a_radius = 0.0
        b_radius = 0.0
        for row, d_a, d_b in zip(rest, distances_a, distances_b):
            if d_a <= d_b:
                side_a.append(row)
                a_radius = max(a_radius, d_a)
            else:
                side_b.append(row)
                b_radius = max(b_radius, d_b)

        stats.n_nodes += 1
        return _Split(
            a_id=self._id_list[row_a],
            a_vector=vectors[row_a],
            b_id=self._id_list[row_b],
            b_vector=vectors[row_b],
            a_radius=a_radius,
            b_radius=b_radius,
            a_child=(
                self._build_node(vectors, side_a, rng, depth + 1) if side_a else None
            ),
            b_child=(
                self._build_node(vectors, side_b, rng, depth + 1) if side_b else None
            ),
        )

    def _make_cluster(
        self, vectors: np.ndarray, rows: list[int], rng: np.random.Generator
    ) -> _Cluster:
        self._build_stats.n_leaves += 1
        centroid_row = (
            self._approx_1_median(vectors, rows, rng) if len(rows) > 1 else rows[0]
        )
        members = [row for row in rows if row != centroid_row]
        # Contiguous member block (single-kernel cluster scans) and one
        # batched sweep for the cached centroid distances.
        member_vectors = np.ascontiguousarray(
            vectors[members] if members else vectors[:0]
        )
        distances = self._build_dist_batch(vectors[centroid_row], member_vectors)
        return _Cluster(
            centroid_id=self._id_list[centroid_row],
            centroid_vector=vectors[centroid_row],
            member_ids=[self._id_list[row] for row in members],
            member_vectors=member_vectors,
            member_centroid_distances=distances,
            radius=float(distances.max()) if members else 0.0,
        )

    # ------------------------------------------------------------------
    # Range search
    # ------------------------------------------------------------------
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        result: list[Neighbor] = []
        self._range_visit(self._root, query, radius, result, ids_only=False)
        return result

    def range_search_ids(self, query: np.ndarray, radius: float) -> list[int]:
        """Range search returning ids only.

        This variant exercises the paper's *inclusion* pruning at full
        strength: members provably inside the ball (``dist(q, centroid) +
        cached <= radius``) are reported without evaluating the metric, so
        it can answer with strictly fewer distance computations than the
        exact-distance variant.
        """
        query = self._check_query(query)
        if radius < 0.0:
            raise IndexingError(f"radius must be non-negative; got {radius}")
        self._search_stats = SearchStats()
        self._batch_stats = []
        result: list[Neighbor] = []
        self._range_visit(self._root, query, float(radius), result, ids_only=True)
        # Mutation overlay: tombstoned ids drop out; pending items have
        # no cached centroid distance, so they are evaluated (counted).
        result = self._overlay_range(query, float(radius), result)
        return [neighbor.id for neighbor in result]

    def _range_visit(
        self,
        node: "_Split | _Cluster | None",
        query: np.ndarray,
        radius: float,
        result: list[Neighbor],
        *,
        ids_only: bool,
    ) -> None:
        if node is None:
            return
        stats = self._search_stats
        if isinstance(node, _Cluster):
            stats.leaves_visited += 1
            d_centroid = self._dist(query, node.centroid_vector)
            if d_centroid <= radius:
                result.append(Neighbor(node.centroid_id, d_centroid))
            if d_centroid - node.radius > radius:
                return  # whole cluster provably outside
            # Exclusion and wholesale inclusion are arithmetic on the
            # cached centroid distances, so the members that need a real
            # evaluation are known up front: one batched kernel pass.
            cached = node.member_centroid_distances
            candidates = np.flatnonzero(np.abs(d_centroid - cached) <= radius)
            wholesale = d_centroid + cached <= radius
            if ids_only:
                compute_rows = [int(r) for r in candidates if not wholesale[r]]
            else:
                compute_rows = [int(r) for r in candidates]
            computed = iter(
                self._dist_batch(query, node.member_vectors[compute_rows]).tolist()
            )
            cached_list = cached.tolist()
            for row in candidates:
                if wholesale[row]:
                    stats.items_included_wholesale += 1
                    if ids_only:
                        # Provably inside: report without evaluating.  The
                        # recorded distance is the upper bound.
                        result.append(
                            Neighbor(
                                node.member_ids[row],
                                d_centroid + cached_list[row],
                            )
                        )
                        continue
                d = next(computed)
                if d <= radius:
                    result.append(Neighbor(node.member_ids[row], d))
            return

        stats.nodes_visited += 1
        d_a = self._dist(query, node.a_vector)
        d_b = self._dist(query, node.b_vector)
        if d_a <= radius:
            result.append(Neighbor(node.a_id, d_a))
        if d_b <= radius:
            result.append(Neighbor(node.b_id, d_b))

        if node.a_child is not None:
            if d_a - node.a_radius <= radius:
                self._range_visit(node.a_child, query, radius, result, ids_only=ids_only)
            else:
                stats.nodes_pruned += 1
        if node.b_child is not None:
            if d_b - node.b_radius <= radius:
                self._range_visit(node.b_child, query, radius, result, ids_only=ids_only)
            else:
                stats.nodes_pruned += 1

    # ------------------------------------------------------------------
    # k-NN search (best-first branch and bound)
    # ------------------------------------------------------------------
    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        best: list[tuple[float, int]] = []  # max-heap via negated distance

        def tau() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def offer(item_id: int, d: float) -> None:
            # (-d, -id): the max-heap then evicts the larger id among
            # equal-distance entries, matching the documented tie-break.
            entry = (-d, -item_id)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)

        # Frontier of (lower_bound, tiebreak, node).
        counter = itertools.count()
        frontier: list[tuple[float, int, "_Split | _Cluster"]] = []
        if self._root is not None:
            heapq.heappush(frontier, (0.0, next(counter), self._root))

        stats = self._search_stats
        while frontier:
            lower_bound, _, node = heapq.heappop(frontier)
            if lower_bound > tau():
                stats.nodes_pruned += 1
                continue
            if isinstance(node, _Cluster):
                stats.leaves_visited += 1
                d_centroid = self._dist(query, node.centroid_vector)
                offer(node.centroid_id, d_centroid)
                # Stays scalar on purpose: tau shrinks as members of this
                # same cluster are offered, so the cached-distance
                # exclusion can spare later members entirely — batching
                # up front would pay for evaluations the scalar path
                # skips, breaking the exact distance accounting.
                for member_id, vector, cached in zip(
                    node.member_ids, node.member_vectors, node.member_centroid_distances
                ):
                    if abs(d_centroid - cached) > tau():
                        continue  # cached-distance exclusion
                    offer(member_id, self._dist(query, vector))
                continue

            stats.nodes_visited += 1
            d_a = self._dist(query, node.a_vector)
            d_b = self._dist(query, node.b_vector)
            offer(node.a_id, d_a)
            offer(node.b_id, d_b)
            for d, child_radius, child in (
                (d_a, node.a_radius, node.a_child),
                (d_b, node.b_radius, node.b_child),
            ):
                if child is None:
                    continue
                bound = max(d - child_radius, 0.0)
                if bound <= tau():
                    heapq.heappush(frontier, (bound, next(counter), child))
                else:
                    stats.nodes_pruned += 1

        return [Neighbor(-neg_id, -neg_d) for neg_d, neg_id in best]
