"""GEMINI filter-and-refine search over a contractive projection.

The classic answer to the curse of dimensionality (experiment F2) is not
a better tree — it is a *cheaper space*.  The GEMINI recipe (GEneric
Multimedia INdexIng, the QBIC-era standard):

1. **reduce** — project every signature into a few dimensions with a
   *contractive* map (:mod:`repro.reduce`), so reduced distances never
   exceed true distances;
2. **filter** — answer the query in the reduced space with an ordinary
   spatial index.  Contractiveness makes every reduced-space rejection
   safe: anything outside the ball there is provably outside it in the
   original space (*no false dismissals*);
3. **refine** — compute the true distance only for the survivors and
   discard the false alarms.

Range queries filter at the same radius.  k-NN queries use the standard
two-pass scheme: take the reduced-space k-NN as seeds, compute their true
distances, and re-filter at the worst seed distance — an upper bound on
the true k-th distance, so the final answer is exact.

Cost accounting separates the two currencies: ``last_stats`` counts
**full-metric evaluations** (the expensive, page-fetching kind GEMINI
exists to avoid), while :attr:`FilterRefineIndex.last_filter_stats`
counts the cheap reduced-space work.  Experiment F8 reports both, plus
the candidate ratio.

When the reducer is *not* provably contractive (FastMap on non-Euclidean
metrics), results may miss true answers; the index surfaces this via
:attr:`FilterRefineIndex.exact` so callers can label their results.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import IndexingError
from repro.index.base import MetricIndex, Neighbor
from repro.index.kdtree import KDTree
from repro.index.stats import SearchStats
from repro.metrics.base import Metric
from repro.metrics.minkowski import EuclideanDistance
from repro.reduce.base import Reducer

__all__ = ["FilterRefineIndex"]

InnerFactory = Callable[[Metric], MetricIndex]

#: Absolute + relative slack added to *filter* radii only.  The math says
#: reduced distance <= true distance, but batch and single-vector BLAS
#: paths can disagree in the last ulp; the refine step still applies the
#: exact predicate, so the slack admits at most a few extra candidates
#: and never a wrong result.
_FILTER_SLACK = 1e-9


class FilterRefineIndex(MetricIndex):
    """Lower-bound filter in reduced space + exact refine in full space.

    Parameters
    ----------
    metric:
        The true distance, used only in the refine step.  Need not be a
        metric — the pruning happens in the reduced space.
    reducer:
        A :class:`~repro.reduce.base.Reducer`.  If unfitted, it is
        fitted on the build vectors.  Exactness of query results equals
        its ``contractive`` guarantee.
    inner_factory:
        Builds the reduced-space index from a (Euclidean) metric;
        default is a kd-tree, the natural structure for the few
        coordinate axes the reducer emits.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.reduce import KLTransform
    >>> rng = np.random.default_rng(0)
    >>> vectors = rng.random((200, 32))
    >>> index = FilterRefineIndex(EuclideanDistance(), KLTransform(4))
    >>> _ = index.build(list(range(200)), vectors)
    >>> index.exact
    True
    """

    requires_metric = False

    def __init__(
        self,
        metric: Metric,
        reducer: Reducer,
        *,
        inner_factory: InnerFactory | None = None,
    ) -> None:
        super().__init__(metric)
        if not isinstance(reducer, Reducer):
            raise IndexingError(
                f"FilterRefineIndex needs a Reducer; got {type(reducer).__name__}"
            )
        self._reducer = reducer
        self._inner_factory: InnerFactory = inner_factory or (
            lambda inner_metric: KDTree(inner_metric)
        )
        self._inner: MetricIndex | None = None
        self._row_by_id: dict[int, int] = {}
        self._filter_stats = SearchStats()
        self._candidate_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def reducer(self) -> Reducer:
        """The projection the filter searches in."""
        return self._reducer

    @property
    def inner(self) -> MetricIndex:
        """The reduced-space index (available after build)."""
        if self._inner is None:
            raise IndexingError("index has not been built yet")
        return self._inner

    @property
    def exact(self) -> bool:
        """True when results are guaranteed exact (contractive reducer)."""
        return self._reducer.contractive

    @property
    def last_filter_stats(self) -> SearchStats:
        """Reduced-space cost of the most recent query (both passes)."""
        return self._filter_stats

    @property
    def last_candidate_count(self) -> int:
        """How many items survived the filter in the most recent query."""
        return self._candidate_count

    @property
    def last_candidate_ratio(self) -> float:
        """Survivors as a fraction of the database (filter selectivity)."""
        return self._candidate_count / self.size if self.size else 0.0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        if not self._reducer.is_fitted:
            self._reducer.fit(vectors)
        elif self._reducer.in_dim != vectors.shape[1]:
            raise IndexingError(
                f"reducer was fitted for dim {self._reducer.in_dim}, "
                f"but build vectors have dim {vectors.shape[1]}"
            )
        reduced = self._reducer.transform(vectors)
        self._inner = self._inner_factory(EuclideanDistance())
        self._inner.build(ids, reduced)
        self._row_by_id = {item_id: row for row, item_id in enumerate(ids)}
        self._build_stats.n_nodes = self._inner.build_stats.n_nodes
        self._build_stats.n_leaves = self._inner.build_stats.n_leaves
        self._build_stats.depth = self._inner.build_stats.depth
        self._build_stats.extra["reduced_dim"] = self._reducer.out_dim

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        assert self._inner is not None and self._vectors is not None
        reduced_query = self._reducer.transform(query)
        filter_radius = radius + _FILTER_SLACK * (1.0 + radius)
        candidates = self._inner.range_search(reduced_query, filter_radius)
        self._filter_stats = self._inner.last_stats
        self._candidate_count = len(candidates)

        result = []
        for candidate in candidates:
            d = self._dist(query, self._vectors[self._row_by_id[candidate.id]])
            if d <= radius:
                result.append(Neighbor(candidate.id, d))
        return result

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        assert self._inner is not None and self._vectors is not None
        reduced_query = self._reducer.transform(query)

        # Pass 1: reduced-space k-NN seeds an upper bound on the true
        # k-th distance.
        seeds = self._inner.knn_search(reduced_query, k)
        self._filter_stats = self._inner.last_stats
        true_distance: dict[int, float] = {
            nb.id: self._dist(query, self._vectors[self._row_by_id[nb.id]])
            for nb in seeds
        }
        bound = max(true_distance.values())

        # Pass 2: every true k-NN member has reduced distance <= its true
        # distance <= bound, so this candidate set is complete (when the
        # reducer is contractive).
        filter_bound = bound + _FILTER_SLACK * (1.0 + bound)
        candidates = self._inner.range_search(reduced_query, filter_bound)
        self._filter_stats = self._filter_stats + self._inner.last_stats
        self._candidate_count = len(candidates)

        for candidate in candidates:
            if candidate.id not in true_distance:
                true_distance[candidate.id] = self._dist(
                    query, self._vectors[self._row_by_id[candidate.id]]
                )
        ranked = sorted(true_distance.items(), key=lambda kv: (kv[1], kv[0]))
        return [Neighbor(item_id, d) for item_id, d in ranked[:k]]
