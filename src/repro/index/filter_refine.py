"""GEMINI filter-and-refine search over a contractive projection.

The classic answer to the curse of dimensionality (experiment F2) is not
a better tree — it is a *cheaper space*.  The GEMINI recipe (GEneric
Multimedia INdexIng, the QBIC-era standard):

1. **reduce** — project every signature into a few dimensions with a
   *contractive* map (:mod:`repro.reduce`), so reduced distances never
   exceed true distances;
2. **filter** — answer the query in the reduced space with an ordinary
   spatial index.  Contractiveness makes every reduced-space rejection
   safe: anything outside the ball there is provably outside it in the
   original space (*no false dismissals*);
3. **refine** — compute the true distance only for the survivors and
   discard the false alarms.

Range queries filter at the same radius.  k-NN queries use the standard
two-pass scheme: take the reduced-space k-NN as seeds, compute their true
distances, and re-filter at the worst seed distance — an upper bound on
the true k-th distance, so the final answer is exact.

Cost accounting separates the two currencies: ``last_stats`` counts
**full-metric evaluations** (the expensive, page-fetching kind GEMINI
exists to avoid), while :attr:`FilterRefineIndex.last_filter_stats`
counts the cheap reduced-space work.  Experiment F8 reports both, plus
the candidate ratio.  The refine step computes the survivors' true
distances through one batched metric evaluation per pass (same count,
one NumPy call instead of a Python loop when the metric has a
vectorized kernel).

When the reducer is *not* provably contractive (FastMap on non-Euclidean
metrics), results may miss true answers; the index surfaces this via
:attr:`FilterRefineIndex.exact` so callers can label their results.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import IndexingError
from repro.index.base import MetricIndex, Neighbor
from repro.index.kdtree import KDTree
from repro.index.stats import SearchStats
from repro.metrics.base import Metric
from repro.metrics.minkowski import EuclideanDistance
from repro.reduce.base import Reducer

__all__ = ["FilterRefineIndex"]

InnerFactory = Callable[[Metric], MetricIndex]

#: Absolute + relative slack added to *filter* radii only.  The math says
#: reduced distance <= true distance, but batch and single-vector BLAS
#: paths can disagree in the last ulp; the refine step still applies the
#: exact predicate, so the slack admits at most a few extra candidates
#: and never a wrong result.
_FILTER_SLACK = 1e-9


class FilterRefineIndex(MetricIndex):
    """Lower-bound filter in reduced space + exact refine in full space.

    Parameters
    ----------
    metric:
        The true distance, used only in the refine step.  Need not be a
        metric — the pruning happens in the reduced space.
    reducer:
        A :class:`~repro.reduce.base.Reducer`.  If unfitted, it is
        fitted on the build vectors.  Exactness of query results equals
        its ``contractive`` guarantee.
    inner_factory:
        Builds the reduced-space index from a (Euclidean) metric;
        default is a kd-tree, the natural structure for the few
        coordinate axes the reducer emits.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.reduce import KLTransform
    >>> rng = np.random.default_rng(0)
    >>> vectors = rng.random((200, 32))
    >>> index = FilterRefineIndex(EuclideanDistance(), KLTransform(4))
    >>> _ = index.build(list(range(200)), vectors)
    >>> index.exact
    True
    """

    requires_metric = False

    def __init__(
        self,
        metric: Metric,
        reducer: Reducer,
        *,
        inner_factory: InnerFactory | None = None,
    ) -> None:
        super().__init__(metric)
        if not isinstance(reducer, Reducer):
            raise IndexingError(
                f"FilterRefineIndex needs a Reducer; got {type(reducer).__name__}"
            )
        self._reducer = reducer
        self._inner_factory: InnerFactory = inner_factory or (
            lambda inner_metric: KDTree(inner_metric)
        )
        self._inner: MetricIndex | None = None
        self._row_by_id: dict[int, int] = {}
        self._filter_stats = SearchStats()
        self._candidate_count = 0
        self._batch_filter_stats: list[SearchStats] = []
        self._batch_candidate_counts: list[int] = []
        self._last_query_count = 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def reducer(self) -> Reducer:
        """The projection the filter searches in."""
        return self._reducer

    @property
    def inner(self) -> MetricIndex:
        """The reduced-space index (available after build)."""
        if self._inner is None:
            raise IndexingError("index has not been built yet")
        return self._inner

    @property
    def exact(self) -> bool:
        """True when results are guaranteed exact (contractive reducer)."""
        return self._reducer.contractive

    @property
    def last_filter_stats(self) -> SearchStats:
        """Reduced-space cost of the most recent query (both passes).

        After a batched query: the sum over the batch, mirroring
        ``last_stats``; per-query counters are in
        :attr:`last_batch_filter_stats`.
        """
        return self._filter_stats

    @property
    def last_batch_filter_stats(self) -> list[SearchStats]:
        """Per-query reduced-space cost of the most recent batched query."""
        return list(self._batch_filter_stats)

    @property
    def last_candidate_count(self) -> int:
        """Items that survived the filter in the most recent query.

        After a batched query: the total over the batch (per-query
        counts in :attr:`last_batch_candidate_counts`).
        """
        return self._candidate_count

    @property
    def last_batch_candidate_counts(self) -> list[int]:
        """Per-query filter survivors of the most recent batched query."""
        return list(self._batch_candidate_counts)

    @property
    def last_candidate_ratio(self) -> float:
        """Survivors as a fraction of the database (filter selectivity).

        Averaged per query after a batch, so the ratio stays in [0, 1]
        and comparable between scalar and batched workloads.
        """
        if not self.size:
            return 0.0
        return self._candidate_count / (self.size * self._last_query_count)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        if not self._reducer.is_fitted:
            self._reducer.fit(vectors)
        elif self._reducer.in_dim != vectors.shape[1]:
            raise IndexingError(
                f"reducer was fitted for dim {self._reducer.in_dim}, "
                f"but build vectors have dim {vectors.shape[1]}"
            )
        reduced = self._reducer.transform(vectors)
        self._inner = self._inner_factory(EuclideanDistance())
        self._inner.build(ids, reduced)
        self._row_by_id = {item_id: row for row, item_id in enumerate(ids)}
        self._build_stats.n_nodes = self._inner.build_stats.n_nodes
        self._build_stats.n_leaves = self._inner.build_stats.n_leaves
        self._build_stats.depth = self._inner.build_stats.depth
        self._build_stats.extra["reduced_dim"] = self._reducer.out_dim

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        result = super().range_search(query, radius)
        self._reset_batch_views()
        return result

    def knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        result = super().knn_search(query, k)
        self._reset_batch_views()
        return result

    def _reset_batch_views(self) -> None:
        # A scalar query supersedes any earlier batch: the per-query
        # lists empty out (mirroring last_batch_stats in the base class)
        # and the aggregate views describe this single query again.
        self._batch_filter_stats = []
        self._batch_candidate_counts = []
        self._last_query_count = 1

    def _run_batch(self, queries, run_one):
        # Collect the two extra per-query currencies alongside the base
        # class's SearchStats, then aggregate them the same way so the
        # ``last_*`` views stay mutually consistent after a batch.
        self._batch_filter_stats = []
        self._batch_candidate_counts = []

        def tracked(query):
            result = run_one(query)
            self._batch_filter_stats.append(self._filter_stats)
            self._batch_candidate_counts.append(self._candidate_count)
            return result

        results = super()._run_batch(queries, tracked)
        self._publish_filter_views(
            self._batch_filter_stats, self._batch_candidate_counts
        )
        return results

    def _publish_filter_views(
        self, batch_filter: list[SearchStats], batch_counts: list[int]
    ) -> None:
        """Roll per-query filter currencies into the aggregate views."""
        self._batch_filter_stats = batch_filter
        self._batch_candidate_counts = batch_counts
        total = SearchStats()
        for stats in batch_filter:
            total.merge(stats)
        self._filter_stats = total
        self._candidate_count = sum(batch_counts)
        self._last_query_count = max(len(batch_counts), 1)

    def _refine(self, query: np.ndarray, ids: Sequence[int]) -> np.ndarray:
        """True distances for the given candidate ids, one batched call.

        The refine step has no evaluation-order dependence (every
        survivor's true distance is needed), so it rides the metric's
        vectorized kernel; the count is ``len(ids)`` either way.
        """
        assert self._vectors is not None
        rows = [self._row_by_id[item_id] for item_id in ids]
        return self._dist_batch(query, self._vectors[rows])

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        assert self._inner is not None and self._vectors is not None
        reduced_query = self._reducer.transform(query)
        filter_radius = radius + _FILTER_SLACK * (1.0 + radius)
        candidates = self._inner.range_search(reduced_query, filter_radius)
        self._filter_stats = self._inner.last_stats
        self._candidate_count = len(candidates)

        distances = self._refine(query, [candidate.id for candidate in candidates])
        return [
            Neighbor(candidate.id, float(d))
            for candidate, d in zip(candidates, distances)
            if d <= radius
        ]

    def _range_search_batch(
        self, queries: np.ndarray, radius: float
    ) -> list[list[Neighbor]]:
        """Shared filter pass: one reduced-space ``range_search_batch`` call.

        Range mode filters every query at the same radius, so the whole
        batch goes through the inner index in a single batched call
        (riding its shared traversal where it has one) before the
        per-query refine pass.  Each query is still reduced through the
        1-D ``transform`` path — stacking the projections, not the
        projection inputs — so its reduced coordinates, and hence its
        candidate set, per-query counters, and results, stay bit-identical
        to the scalar path.  (k-NN keeps the generic per-query loop: its
        second filter radius is a data-dependent per-query bound.)
        """
        assert self._inner is not None
        filter_radius = radius + _FILTER_SLACK * (1.0 + radius)
        if queries.shape[0] == 0:
            reduced = np.empty((0, self._reducer.out_dim))
        else:
            reduced = np.stack(
                [self._reducer.transform(query) for query in queries]
            )
        candidate_lists = self._inner.range_search_batch(reduced, filter_radius)
        per_query_filter = self._inner.last_batch_stats

        results: list[list[Neighbor]] = []
        per_query: list[SearchStats] = []
        batch_filter: list[SearchStats] = []
        batch_counts: list[int] = []
        for query, candidates, filter_stats in zip(
            queries, candidate_lists, per_query_filter
        ):
            self._search_stats = SearchStats()
            self._filter_stats = filter_stats
            self._candidate_count = len(candidates)
            distances = self._refine(
                query, [candidate.id for candidate in candidates]
            )
            results.append(
                [
                    Neighbor(candidate.id, float(d))
                    for candidate, d in zip(candidates, distances)
                    if d <= radius
                ]
            )
            per_query.append(self._search_stats)
            batch_filter.append(filter_stats)
            batch_counts.append(self._candidate_count)

        out = self._finish_batch(results, per_query)
        self._publish_filter_views(batch_filter, batch_counts)
        return out

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        assert self._inner is not None and self._vectors is not None
        reduced_query = self._reducer.transform(query)

        # Pass 1: reduced-space k-NN seeds an upper bound on the true
        # k-th distance.
        seeds = self._inner.knn_search(reduced_query, k)
        self._filter_stats = self._inner.last_stats
        true_distance: dict[int, float] = {
            nb.id: float(d)
            for nb, d in zip(seeds, self._refine(query, [nb.id for nb in seeds]))
        }
        bound = max(true_distance.values())

        # Pass 2: every true k-NN member has reduced distance <= its true
        # distance <= bound, so this candidate set is complete (when the
        # reducer is contractive).
        filter_bound = bound + _FILTER_SLACK * (1.0 + bound)
        candidates = self._inner.range_search(reduced_query, filter_bound)
        self._filter_stats = self._filter_stats + self._inner.last_stats
        self._candidate_count = len(candidates)

        fresh = [nb.id for nb in candidates if nb.id not in true_distance]
        true_distance.update(
            (item_id, float(d))
            for item_id, d in zip(fresh, self._refine(query, fresh))
        )
        ranked = sorted(true_distance.items(), key=lambda kv: (kv[1], kv[0]))
        return [Neighbor(item_id, d) for item_id, d in ranked[:k]]
