"""The vantage-point tree — the reproduction's headline index.

Construction (recursive):

1. choose a *vantage point* (pivot) from the current item set,
2. compute the distance from the pivot to every remaining item,
3. split at the median distance ``mu``: items with ``d <= mu`` form the
   *inside* subtree, the rest the *outside* subtree,
4. recurse until subsets fit in a leaf bucket.

Each node also stores the exact distance interval ``[low, high]`` of each
child subset as seen from the pivot — tighter than ``[0, mu]`` /
``[mu, inf)`` and therefore better at pruning.

Search relies solely on the triangle inequality: if the query is at
distance ``d`` from a pivot, every item in a child whose interval is
``[low, high]`` satisfies ``distance(query, item) >= max(low - d, d - high, 0)``,
so a child whose interval does not intersect ``[d - r, d + r]`` cannot
contain an answer.  k-NN search is branch-and-bound: ``r`` is the
distance of the current k-th best candidate and shrinks as better
candidates surface; the child closer to the query is explored first to
shrink ``r`` early.

Two bounded approximation modes (experiment F5):

* ``epsilon > 0`` — prune children unless they could contain an item
  closer than ``tau / (1 + epsilon)``; every reported neighbour is then
  within ``(1 + epsilon)`` of the true k-th distance.
* ``max_distance_computations`` — hard budget; search stops expanding new
  nodes once spent (already-found candidates are returned).

All hot loops ride ``Metric.distance_batch``: the build evaluates each
node's pivot against the remaining items in one kernel call, leaves are
scanned as one batched evaluation over their contiguous vector block
(truncated to the remaining budget in budgeted mode, so the accounting
matches the scalar path item for item), and the batched entry points run
a *shared* traversal — every node visit evaluates its pivot against all
still-active queries of the batch in a single kernel call instead of one
per query.  The shared traversal replays each query's scalar visit
order exactly (per-query child ordering and branch-and-bound pruning),
so results and per-query cost counters stay bit-identical to the scalar
path; it also relies on the metric axiom ``d(p, q) == d(q, p)`` holding
at the bit level, which every shipped kernel satisfies (elementwise
arithmetic is commutative/sign-symmetric; the parity suite checks it).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import IndexingError
from repro.index.base import MetricIndex, Neighbor
from repro.index.pivot import MaxSpreadPivot, PivotStrategy
from repro.index.stats import SearchStats
from repro.metrics.base import Metric

__all__ = ["VPTree"]


@dataclass
class _Leaf:
    ids: list[int]
    vectors: np.ndarray


@dataclass
class _Node:
    pivot_id: int
    pivot_vector: np.ndarray
    inside: "_Node | _Leaf | None"
    outside: "_Node | _Leaf | None"
    in_low: float
    in_high: float
    out_low: float
    out_high: float


class VPTree(MetricIndex):
    """Vantage-point tree over an arbitrary metric.

    Parameters
    ----------
    metric:
        Any true metric (the triangle inequality is load-bearing).
    leaf_size:
        Maximum items per leaf bucket (default 8).  Smaller leaves prune
        more but cost more pivot evaluations per query.
    pivot_strategy:
        How vantage points are chosen (default :class:`MaxSpreadPivot`).
    seed:
        Seed for the strategy's random generator; builds are deterministic
        given (data, parameters, seed).
    """

    def __init__(
        self,
        metric: Metric,
        *,
        leaf_size: int = 8,
        pivot_strategy: PivotStrategy | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(metric)
        if leaf_size < 1:
            raise IndexingError(f"leaf_size must be >= 1; got {leaf_size}")
        self._leaf_size = leaf_size
        self._pivot_strategy = pivot_strategy or MaxSpreadPivot()
        self._seed = seed
        self._root: _Node | _Leaf | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        rng = np.random.default_rng(self._seed)
        self._root = self._build_node(list(ids), vectors, rng, depth=0)

    def _build_node(
        self, ids: list[int], vectors: np.ndarray, rng: np.random.Generator, depth: int
    ) -> "_Node | _Leaf":
        stats = self._build_stats
        stats.depth = max(stats.depth, depth)
        if len(ids) <= self._leaf_size:
            stats.n_leaves += 1
            # A contiguous block: leaf scans are single kernel passes and
            # must never hand the metric a strided view.
            return _Leaf(ids, np.ascontiguousarray(vectors))

        pivot_row = self._pivot_strategy.select(
            vectors, self._build_dist, rng, dist_batch=self._build_dist_batch
        )
        pivot_id = ids[pivot_row]
        pivot_vector = vectors[pivot_row]

        rest_ids = [item_id for row, item_id in enumerate(ids) if row != pivot_row]
        rest_vectors = np.ascontiguousarray(
            np.delete(vectors, pivot_row, axis=0)
        )
        distances = self._build_dist_batch(pivot_vector, rest_vectors)

        mu = float(np.median(distances))
        inside_mask = distances <= mu
        outside_mask = ~inside_mask

        # Degenerate split (all items at the same distance): bucket them.
        if not inside_mask.any() or not outside_mask.any():
            stats.n_nodes += 1
            only_mask = inside_mask if inside_mask.any() else outside_mask
            child = self._build_node(
                [i for i, keep in zip(rest_ids, only_mask) if keep],
                rest_vectors[only_mask],
                rng,
                depth + 1,
            )
            d_lo = float(distances.min())
            d_hi = float(distances.max())
            if inside_mask.any():
                return _Node(pivot_id, pivot_vector, child, None, d_lo, d_hi, 0.0, 0.0)
            return _Node(pivot_id, pivot_vector, None, child, 0.0, 0.0, d_lo, d_hi)

        stats.n_nodes += 1
        inside = self._build_node(
            [i for i, keep in zip(rest_ids, inside_mask) if keep],
            rest_vectors[inside_mask],
            rng,
            depth + 1,
        )
        outside = self._build_node(
            [i for i, keep in zip(rest_ids, outside_mask) if keep],
            rest_vectors[outside_mask],
            rng,
            depth + 1,
        )
        return _Node(
            pivot_id,
            pivot_vector,
            inside,
            outside,
            float(distances[inside_mask].min()),
            float(distances[inside_mask].max()),
            float(distances[outside_mask].min()),
            float(distances[outside_mask].max()),
        )

    # ------------------------------------------------------------------
    # Range search
    # ------------------------------------------------------------------
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        result: list[Neighbor] = []
        self._range_visit(self._root, query, radius, result)
        return result

    def _range_visit(
        self,
        node: "_Node | _Leaf | None",
        query: np.ndarray,
        radius: float,
        result: list[Neighbor],
    ) -> None:
        if node is None:
            return
        if isinstance(node, _Leaf):
            self._search_stats.leaves_visited += 1
            # One kernel pass over the leaf block + a vectorized filter.
            distances = self._dist_batch(query, node.vectors)
            for row in np.flatnonzero(distances <= radius):
                result.append(Neighbor(node.ids[row], float(distances[row])))
            return

        self._search_stats.nodes_visited += 1
        d = self._dist(query, node.pivot_vector)
        if d <= radius:
            result.append(Neighbor(node.pivot_id, d))

        if node.inside is not None:
            if d - radius <= node.in_high and d + radius >= node.in_low:
                self._range_visit(node.inside, query, radius, result)
            else:
                self._search_stats.nodes_pruned += 1
        if node.outside is not None:
            if d - radius <= node.out_high and d + radius >= node.out_low:
                self._range_visit(node.outside, query, radius, result)
            else:
                self._search_stats.nodes_pruned += 1

    # ------------------------------------------------------------------
    # k-NN search
    # ------------------------------------------------------------------
    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        return self._knn_impl(query, k, epsilon=0.0, budget=None)

    def knn_search_approximate(
        self,
        query: np.ndarray,
        k: int,
        *,
        epsilon: float = 0.0,
        max_distance_computations: int | None = None,
    ) -> list[Neighbor]:
        """Approximate k-NN with a relative-error and/or budget bound.

        Parameters
        ----------
        epsilon:
            Relative slack: children are pruned unless they could contain
            an item closer than ``tau / (1 + epsilon)``.  ``0`` is exact.
        max_distance_computations:
            Hard cap on *tree-traversal* metric evaluations for this
            query; when reached, unexpanded subtrees are abandoned.
            ``None`` means unlimited.  On a mutated index the pending
            buffer is always scanned in full regardless — those
            evaluations are counted in ``last_stats`` but not charged
            against the budget, so the total count can exceed the cap
            by up to ``n_pending`` (correctness over the live item set
            is never traded away; see ``docs/mutability.md``).
        """
        query = self._check_query(query)
        if k < 1:
            raise IndexingError(f"k must be >= 1; got {k}")
        if epsilon < 0.0:
            raise IndexingError(f"epsilon must be non-negative; got {epsilon}")
        if max_distance_computations is not None and max_distance_computations < 1:
            raise IndexingError("max_distance_computations must be >= 1")
        self._search_stats = SearchStats()
        self._batch_stats = []
        result = self._knn_impl(
            query, self._structural_k(int(k)), epsilon, max_distance_computations
        )
        # The mutation overlay stays exact even in approximate mode:
        # tombstoned hits drop out and the pending buffer is always
        # scanned in full (its evaluations are counted but not charged
        # against the traversal budget, which bounds tree work only).
        result = self._overlay_knn(query, result)
        result.sort(key=lambda nb: (nb.distance, nb.id))
        return result[: int(k)]

    def _knn_impl(
        self, query: np.ndarray, k: int, epsilon: float, budget: int | None
    ) -> list[Neighbor]:
        # Max-heap of the k best candidates, as (-distance, id).
        heap: list[tuple[float, int]] = []
        shrink = 1.0 / (1.0 + epsilon)

        def tau() -> float:
            return -heap[0][0] if len(heap) == k else np.inf

        def offer(item_id: int, d: float) -> None:
            # (-d, -id): the max-heap then evicts the larger id among
            # equal-distance entries, matching the documented tie-break.
            entry = (-d, -item_id)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)

        def out_of_budget() -> bool:
            return (
                budget is not None
                and self._search_stats.distance_computations >= budget
            )

        def visit(node: "_Node | _Leaf | None") -> None:
            if node is None or out_of_budget():
                return
            if isinstance(node, _Leaf):
                self._search_stats.leaves_visited += 1
                # One kernel pass over the leaf block.  In budgeted mode
                # the scalar path stopped mid-leaf once the budget ran
                # out; evaluating only the affordable prefix keeps the
                # accounting (and the candidate set) identical to it.
                count = len(node.ids)
                if budget is not None:
                    count = min(
                        count, budget - self._search_stats.distance_computations
                    )
                    if count <= 0:
                        return
                distances = self._dist_batch(query, node.vectors[:count]).tolist()
                for item_id, d in zip(node.ids, distances):
                    offer(item_id, d)
                return

            self._search_stats.nodes_visited += 1
            d = self._dist(query, node.pivot_vector)
            offer(node.pivot_id, d)

            # Explore the child whose interval is nearer to d first, so tau
            # shrinks before the other child is tested.
            children = [
                (node.inside, node.in_low, node.in_high),
                (node.outside, node.out_low, node.out_high),
            ]
            children.sort(key=lambda c: _interval_gap(d, c[1], c[2]))
            for child, low, high in children:
                if child is None:
                    continue
                if _interval_gap(d, low, high) <= tau() * shrink:
                    visit(child)
                else:
                    self._search_stats.nodes_pruned += 1

        visit(self._root)
        return [Neighbor(-neg_id, -neg_d) for neg_d, neg_id in heap]

    # ------------------------------------------------------------------
    # Shared batched traversals
    # ------------------------------------------------------------------
    # Both entry points walk the tree once for the whole query batch: a
    # node's pivot is evaluated against every still-active query in one
    # ``distance_batch`` call (operand order flipped — the metric axiom
    # d(p, q) == d(q, p) holds bitwise for all shipped kernels), and each
    # query keeps its own counters, candidate heap, and prune decisions.
    # Per query, nodes are visited in exactly the scalar order, so the
    # branch-and-bound state — and with it every counted distance — is
    # identical to running the queries one at a time.

    def _range_search_batch(
        self, queries: np.ndarray, radius: float
    ) -> list[list[Neighbor]]:
        m = queries.shape[0]
        results: list[list[Neighbor]] = [[] for _ in range(m)]
        stats = [SearchStats() for _ in range(m)]

        def visit(node: "_Node | _Leaf | None", rows: list[int]) -> None:
            if node is None or not rows:
                return
            if isinstance(node, _Leaf):
                for qi in rows:
                    st = stats[qi]
                    st.leaves_visited += 1
                    st.distance_computations += node.vectors.shape[0]
                    distances = self._metric.distance_batch(
                        queries[qi], node.vectors
                    )
                    for row in np.flatnonzero(distances <= radius):
                        results[qi].append(
                            Neighbor(node.ids[row], float(distances[row]))
                        )
                return

            pivot_distances = self._metric.distance_batch(
                node.pivot_vector, queries[rows]
            ).tolist()
            inside_rows: list[int] = []
            outside_rows: list[int] = []
            for qi, d in zip(rows, pivot_distances):
                st = stats[qi]
                st.nodes_visited += 1
                st.distance_computations += 1
                if d <= radius:
                    results[qi].append(Neighbor(node.pivot_id, d))
                if node.inside is not None:
                    if d - radius <= node.in_high and d + radius >= node.in_low:
                        inside_rows.append(qi)
                    else:
                        st.nodes_pruned += 1
                if node.outside is not None:
                    if d - radius <= node.out_high and d + radius >= node.out_low:
                        outside_rows.append(qi)
                    else:
                        st.nodes_pruned += 1
            visit(node.inside, inside_rows)
            visit(node.outside, outside_rows)

        visit(self._root, list(range(m)))
        return self._finish_batch(results, stats)

    def _knn_search_batch(self, queries: np.ndarray, k: int) -> list[list[Neighbor]]:
        m = queries.shape[0]
        stats = [SearchStats() for _ in range(m)]
        heaps: list[list[tuple[float, int]]] = [[] for _ in range(m)]

        def tau(qi: int) -> float:
            heap = heaps[qi]
            return -heap[0][0] if len(heap) == k else np.inf

        def offer(qi: int, item_id: int, d: float) -> None:
            heap = heaps[qi]
            entry = (-d, -item_id)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)

        def visit(node: "_Node | _Leaf | None", rows: list[int]) -> None:
            if node is None or not rows:
                return
            if isinstance(node, _Leaf):
                for qi in rows:
                    st = stats[qi]
                    st.leaves_visited += 1
                    st.distance_computations += node.vectors.shape[0]
                    distances = self._metric.distance_batch(
                        queries[qi], node.vectors
                    ).tolist()
                    for item_id, d in zip(node.ids, distances):
                        offer(qi, item_id, d)
                return

            pivot_distances = self._metric.distance_batch(
                node.pivot_vector, queries[rows]
            ).tolist()
            gaps: dict[int, tuple[float, float]] = {}
            # Cohorts by preferred first child; the scalar path's stable
            # sort explores 'inside' first on equal gaps.
            inside_first: list[int] = []
            outside_first: list[int] = []
            for qi, d in zip(rows, pivot_distances):
                st = stats[qi]
                st.nodes_visited += 1
                st.distance_computations += 1
                offer(qi, node.pivot_id, d)
                gap_in = _interval_gap(d, node.in_low, node.in_high)
                gap_out = _interval_gap(d, node.out_low, node.out_high)
                gaps[qi] = (gap_in, gap_out)
                (inside_first if gap_in <= gap_out else outside_first).append(qi)

            children = ((node.inside, 0), (node.outside, 1))
            for cohort, order in (
                (inside_first, children),
                (outside_first, children[::-1]),
            ):
                if not cohort:
                    continue
                # The second child's prune test runs after the first
                # child's subtree has shrunk tau, exactly as in the
                # scalar branch-and-bound.
                for child, gap_index in order:
                    if child is None:
                        continue
                    survivors: list[int] = []
                    for qi in cohort:
                        if gaps[qi][gap_index] <= tau(qi):
                            survivors.append(qi)
                        else:
                            stats[qi].nodes_pruned += 1
                    visit(child, survivors)

        visit(self._root, list(range(m)))
        results = [
            [Neighbor(-neg_id, -neg_d) for neg_d, neg_id in heap] for heap in heaps
        ]
        return self._finish_batch(results, stats)


def _interval_gap(d: float, low: float, high: float) -> float:
    """Lower bound on the query-to-item distance for a child subset.

    The child's items lie at distances in ``[low, high]`` from the pivot;
    the query is at distance ``d``.  By the triangle inequality no item
    can be closer to the query than ``max(low - d, d - high, 0)``.
    """
    return max(low - d, d - high, 0.0)
