"""The vantage-point tree — the reproduction's headline index.

Construction (recursive):

1. choose a *vantage point* (pivot) from the current item set,
2. compute the distance from the pivot to every remaining item,
3. split at the median distance ``mu``: items with ``d <= mu`` form the
   *inside* subtree, the rest the *outside* subtree,
4. recurse until subsets fit in a leaf bucket.

Each node also stores the exact distance interval ``[low, high]`` of each
child subset as seen from the pivot — tighter than ``[0, mu]`` /
``[mu, inf)`` and therefore better at pruning.

Search relies solely on the triangle inequality: if the query is at
distance ``d`` from a pivot, every item in a child whose interval is
``[low, high]`` satisfies ``distance(query, item) >= max(low - d, d - high, 0)``,
so a child whose interval does not intersect ``[d - r, d + r]`` cannot
contain an answer.  k-NN search is branch-and-bound: ``r`` is the
distance of the current k-th best candidate and shrinks as better
candidates surface; the child closer to the query is explored first to
shrink ``r`` early.

Two bounded approximation modes (experiment F5):

* ``epsilon > 0`` — prune children unless they could contain an item
  closer than ``tau / (1 + epsilon)``; every reported neighbour is then
  within ``(1 + epsilon)`` of the true k-th distance.
* ``max_distance_computations`` — hard budget; search stops expanding new
  nodes once spent (already-found candidates are returned).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import IndexingError
from repro.index.base import MetricIndex, Neighbor
from repro.index.pivot import MaxSpreadPivot, PivotStrategy
from repro.metrics.base import Metric

__all__ = ["VPTree"]


@dataclass
class _Leaf:
    ids: list[int]
    vectors: np.ndarray


@dataclass
class _Node:
    pivot_id: int
    pivot_vector: np.ndarray
    inside: "_Node | _Leaf | None"
    outside: "_Node | _Leaf | None"
    in_low: float
    in_high: float
    out_low: float
    out_high: float


class VPTree(MetricIndex):
    """Vantage-point tree over an arbitrary metric.

    Parameters
    ----------
    metric:
        Any true metric (the triangle inequality is load-bearing).
    leaf_size:
        Maximum items per leaf bucket (default 8).  Smaller leaves prune
        more but cost more pivot evaluations per query.
    pivot_strategy:
        How vantage points are chosen (default :class:`MaxSpreadPivot`).
    seed:
        Seed for the strategy's random generator; builds are deterministic
        given (data, parameters, seed).
    """

    def __init__(
        self,
        metric: Metric,
        *,
        leaf_size: int = 8,
        pivot_strategy: PivotStrategy | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(metric)
        if leaf_size < 1:
            raise IndexingError(f"leaf_size must be >= 1; got {leaf_size}")
        self._leaf_size = leaf_size
        self._pivot_strategy = pivot_strategy or MaxSpreadPivot()
        self._seed = seed
        self._root: _Node | _Leaf | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        rng = np.random.default_rng(self._seed)
        self._root = self._build_node(list(ids), vectors, rng, depth=0)

    def _build_node(
        self, ids: list[int], vectors: np.ndarray, rng: np.random.Generator, depth: int
    ) -> "_Node | _Leaf":
        stats = self._build_stats
        stats.depth = max(stats.depth, depth)
        if len(ids) <= self._leaf_size:
            stats.n_leaves += 1
            return _Leaf(ids, vectors)

        pivot_row = self._pivot_strategy.select(vectors, self._build_dist, rng)
        pivot_id = ids[pivot_row]
        pivot_vector = vectors[pivot_row]

        rest_rows = [row for row in range(len(ids)) if row != pivot_row]
        rest_ids = [ids[row] for row in rest_rows]
        rest_vectors = vectors[rest_rows]
        distances = np.array(
            [self._build_dist(pivot_vector, vec) for vec in rest_vectors]
        )

        mu = float(np.median(distances))
        inside_mask = distances <= mu
        outside_mask = ~inside_mask

        # Degenerate split (all items at the same distance): bucket them.
        if not inside_mask.any() or not outside_mask.any():
            stats.n_nodes += 1
            only_mask = inside_mask if inside_mask.any() else outside_mask
            child = self._build_node(
                [i for i, keep in zip(rest_ids, only_mask) if keep],
                rest_vectors[only_mask],
                rng,
                depth + 1,
            )
            d_lo = float(distances.min())
            d_hi = float(distances.max())
            if inside_mask.any():
                return _Node(pivot_id, pivot_vector, child, None, d_lo, d_hi, 0.0, 0.0)
            return _Node(pivot_id, pivot_vector, None, child, 0.0, 0.0, d_lo, d_hi)

        stats.n_nodes += 1
        inside = self._build_node(
            [i for i, keep in zip(rest_ids, inside_mask) if keep],
            rest_vectors[inside_mask],
            rng,
            depth + 1,
        )
        outside = self._build_node(
            [i for i, keep in zip(rest_ids, outside_mask) if keep],
            rest_vectors[outside_mask],
            rng,
            depth + 1,
        )
        return _Node(
            pivot_id,
            pivot_vector,
            inside,
            outside,
            float(distances[inside_mask].min()),
            float(distances[inside_mask].max()),
            float(distances[outside_mask].min()),
            float(distances[outside_mask].max()),
        )

    # ------------------------------------------------------------------
    # Range search
    # ------------------------------------------------------------------
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        result: list[Neighbor] = []
        self._range_visit(self._root, query, radius, result)
        return result

    def _range_visit(
        self,
        node: "_Node | _Leaf | None",
        query: np.ndarray,
        radius: float,
        result: list[Neighbor],
    ) -> None:
        if node is None:
            return
        if isinstance(node, _Leaf):
            self._search_stats.leaves_visited += 1
            for item_id, vector in zip(node.ids, node.vectors):
                d = self._dist(query, vector)
                if d <= radius:
                    result.append(Neighbor(item_id, d))
            return

        self._search_stats.nodes_visited += 1
        d = self._dist(query, node.pivot_vector)
        if d <= radius:
            result.append(Neighbor(node.pivot_id, d))

        if node.inside is not None:
            if d - radius <= node.in_high and d + radius >= node.in_low:
                self._range_visit(node.inside, query, radius, result)
            else:
                self._search_stats.nodes_pruned += 1
        if node.outside is not None:
            if d - radius <= node.out_high and d + radius >= node.out_low:
                self._range_visit(node.outside, query, radius, result)
            else:
                self._search_stats.nodes_pruned += 1

    # ------------------------------------------------------------------
    # k-NN search
    # ------------------------------------------------------------------
    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        return self._knn_impl(query, k, epsilon=0.0, budget=None)

    def knn_search_approximate(
        self,
        query: np.ndarray,
        k: int,
        *,
        epsilon: float = 0.0,
        max_distance_computations: int | None = None,
    ) -> list[Neighbor]:
        """Approximate k-NN with a relative-error and/or budget bound.

        Parameters
        ----------
        epsilon:
            Relative slack: children are pruned unless they could contain
            an item closer than ``tau / (1 + epsilon)``.  ``0`` is exact.
        max_distance_computations:
            Hard cap on metric evaluations for this query; when reached,
            unexpanded subtrees are abandoned.  ``None`` means unlimited.
        """
        query = self._check_query(query)
        if k < 1:
            raise IndexingError(f"k must be >= 1; got {k}")
        if epsilon < 0.0:
            raise IndexingError(f"epsilon must be non-negative; got {epsilon}")
        if max_distance_computations is not None and max_distance_computations < 1:
            raise IndexingError("max_distance_computations must be >= 1")
        from repro.index.stats import SearchStats

        self._search_stats = SearchStats()
        result = self._knn_impl(query, k, epsilon, max_distance_computations)
        result.sort(key=lambda nb: (nb.distance, nb.id))
        return result

    def _knn_impl(
        self, query: np.ndarray, k: int, epsilon: float, budget: int | None
    ) -> list[Neighbor]:
        # Max-heap of the k best candidates, as (-distance, id).
        heap: list[tuple[float, int]] = []
        shrink = 1.0 / (1.0 + epsilon)

        def tau() -> float:
            return -heap[0][0] if len(heap) == k else np.inf

        def offer(item_id: int, d: float) -> None:
            # (-d, -id): the max-heap then evicts the larger id among
            # equal-distance entries, matching the documented tie-break.
            entry = (-d, -item_id)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)

        def out_of_budget() -> bool:
            return (
                budget is not None
                and self._search_stats.distance_computations >= budget
            )

        def visit(node: "_Node | _Leaf | None") -> None:
            if node is None or out_of_budget():
                return
            if isinstance(node, _Leaf):
                self._search_stats.leaves_visited += 1
                for item_id, vector in zip(node.ids, node.vectors):
                    if out_of_budget():
                        return
                    offer(item_id, self._dist(query, vector))
                return

            self._search_stats.nodes_visited += 1
            d = self._dist(query, node.pivot_vector)
            offer(node.pivot_id, d)

            # Explore the child whose interval is nearer to d first, so tau
            # shrinks before the other child is tested.
            children = [
                (node.inside, node.in_low, node.in_high),
                (node.outside, node.out_low, node.out_high),
            ]
            children.sort(key=lambda c: _interval_gap(d, c[1], c[2]))
            for child, low, high in children:
                if child is None:
                    continue
                if _interval_gap(d, low, high) <= tau() * shrink:
                    visit(child)
                else:
                    self._search_stats.nodes_pruned += 1

        visit(self._root)
        return [Neighbor(-neg_id, -neg_d) for neg_d, neg_id in heap]


def _interval_gap(d: float, low: float, high: float) -> float:
    """Lower bound on the query-to-item distance for a child subset.

    The child's items lie at distances in ``[low, high]`` from the pivot;
    the query is at distance ``d``.  By the triangle inequality no item
    can be closer to the query than ``max(low - d, d - high, 0)``.
    """
    return max(low - d, d - high, 0.0)
