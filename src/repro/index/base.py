"""The common interface of all similarity indexes.

An index is constructed over an initial set of ``(id, vector)`` pairs
with a chosen metric and then answers two query types:

* ``range_search(query, radius)`` — every item within ``radius`` of the
  query (closed ball), sorted by distance;
* ``knn_search(query, k)`` — the ``k`` nearest items, sorted by distance
  (fewer if the index holds fewer than ``k``).

Both return lists of :class:`Neighbor` tuples.  Ties at equal distance
are broken by insertion order so results are deterministic.  After each
query, :attr:`MetricIndex.last_stats` holds the cost counters.

Both also exist in batched form — ``range_search_batch(queries, radius)``
and ``knn_search_batch(queries, k)`` take an ``(m, d)`` query matrix and
return one result list per query.  The contract is strict equivalence:
result ``i`` of a batch is identical (ids, distances, and per-query cost
counters, bit for bit) to running query ``i`` alone; batching saves
interpreter overhead via the metrics' vectorized kernels, never metric
evaluations.  After a batch, :attr:`MetricIndex.last_batch_stats` holds
the per-query counters and :attr:`MetricIndex.last_stats` their sum.

Mutation protocol (see ``docs/mutability.md``)
----------------------------------------------
A built index accepts :meth:`MetricIndex.insert_batch` and
:meth:`MetricIndex.delete`.  Structures with a genuinely dynamic shape
override the ``_insert_batch`` / ``_delete`` hooks (the M-tree grows by
paper-style page splits, the linear scan and LAESA's pivot table extend
their arrays row-wise); the static trees fall back to the base class's
**pending buffer** (inserted items held outside the structure and
scanned per query) plus **tombstones** (deleted ids filtered out of
structural results), with a threshold-triggered rebuild
(:attr:`rebuild_threshold` / :attr:`rebuild_min`) that folds the
overlay back into a fresh structure once it grows past a fraction of
the core.  Every query entry point — scalar, batched, and the
approximate variants — merges the overlay with the structural answer,
so results over the *live* item set are exact and the per-query
distance accounting stays measured (pending items cost one counted
batched evaluation per query, tombstone filtering is free).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import NamedTuple, Sequence

import numpy as np

from repro.db.backend import (
    BackendFactory,
    MemoryBackend,
    MemoryBackendFactory,
    VectorBackend,
)
from repro.errors import IndexingError
from repro.index.stats import BuildStats, SearchStats
from repro.metrics.base import Metric

__all__ = ["Neighbor", "MetricIndex", "GrowableRows"]


class Neighbor(NamedTuple):
    """One search result: the item's id and its distance to the query."""

    id: int
    distance: float


#: Backward-compatible name of the in-memory row store, which moved to
#: :mod:`repro.db.backend` when the storage protocol was extracted.
GrowableRows = MemoryBackend

#: The default storage for index cores; ``ImageDatabase`` overrides
#: :attr:`MetricIndex.backend_factory` per index when configured with a
#: different backend (``docs/storage.md``).
_DEFAULT_BACKEND_FACTORY = MemoryBackendFactory()


class MetricIndex(ABC):
    """Base class: validation, bookkeeping, and the query protocol.

    Subclasses implement ``_build``, ``_range_search`` and ``_knn_search``;
    this class owns operand validation, result ordering, and the stats
    lifecycle.  Distances must only be evaluated through :meth:`_dist`,
    which keeps :attr:`last_stats` exact.
    """

    #: Set False in subclasses that tolerate non-metric distances.
    requires_metric: bool = True

    #: Overlay (pending inserts + tombstones) fraction of the core that
    #: triggers a structural rebuild; see :meth:`_maybe_rebuild`.
    rebuild_threshold: float = 0.25
    #: Overlay size below which a rebuild never triggers (lets small
    #: indexes absorb a few mutations without thrashing).
    rebuild_min: int = 32

    #: Storage factory for the core rows (and any per-index side tables,
    #: e.g. LAESA's pivot table).  A class-level default so the eight
    #: index constructors stay untouched; :class:`~repro.db.database.
    #: ImageDatabase` assigns its configured factory on the instance
    #: before :meth:`build`.
    backend_factory: BackendFactory = _DEFAULT_BACKEND_FACTORY

    def __init__(self, metric: Metric) -> None:
        if not isinstance(metric, Metric):
            raise IndexingError(f"expected a Metric; got {type(metric).__name__}")
        if self.requires_metric and not metric.is_metric:
            raise IndexingError(
                f"{type(self).__name__} relies on the triangle inequality, but "
                f"{metric.name} is not a metric; use LinearScanIndex instead"
            )
        self._metric = metric
        self._ids: list[int] = []
        self._vectors: np.ndarray | None = None
        self._core: VectorBackend | None = None
        self._built = False
        self._build_stats = BuildStats()
        self._search_stats = SearchStats()
        self._batch_stats: list[SearchStats] = []
        # Mutation overlay: items inserted after build that the concrete
        # structure does not hold (scanned per query), and ids deleted
        # from the structure but still physically inside it.
        self._pending_ids: list[int] = []
        self._pending_vectors: list[np.ndarray] = []
        self._pending_block: np.ndarray | None = None
        self._tombstones: set[int] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def metric(self) -> Metric:
        """The distance function the index was built with."""
        return self._metric

    @property
    def size(self) -> int:
        """Number of *live* indexed items (pending inserts included,
        tombstoned deletions excluded)."""
        return len(self._ids) + len(self._pending_ids) - len(self._tombstones)

    @property
    def n_pending(self) -> int:
        """Inserted items the structure holds in its pending buffer."""
        return len(self._pending_ids)

    @property
    def n_tombstones(self) -> int:
        """Deleted ids still physically inside the structure."""
        return len(self._tombstones)

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed vectors."""
        if self._vectors is None:
            raise IndexingError("index has not been built yet")
        return self._vectors.shape[1]

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has succeeded."""
        return self._built

    @property
    def build_stats(self) -> BuildStats:
        """Cost counters of the last :meth:`build`."""
        return self._build_stats

    @property
    def last_stats(self) -> SearchStats:
        """Cost counters of the most recent query (sum over a batch)."""
        return self._search_stats

    @property
    def last_batch_stats(self) -> list[SearchStats]:
        """Per-query cost counters of the most recent batched query.

        Empty when the most recent query was a scalar call.
        """
        return list(self._batch_stats)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, ids: Sequence[int], vectors: np.ndarray) -> "MetricIndex":
        """Build the index over ``(ids[i], vectors[i])`` pairs.

        Parameters
        ----------
        ids:
            Integer identifiers, one per vector; duplicates are rejected.
        vectors:
            ``(n, d)`` float array, ``n >= 1``.

        Returns
        -------
        MetricIndex
            ``self``, for chaining.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise IndexingError(
                f"vectors must be a non-empty (n, d) array; got shape {vectors.shape}"
            )
        ids = [int(i) for i in ids]
        if len(ids) != vectors.shape[0]:
            raise IndexingError(
                f"{len(ids)} ids but {vectors.shape[0]} vectors"
            )
        if len(set(ids)) != len(ids):
            raise IndexingError("duplicate ids in build input")
        if not np.all(np.isfinite(vectors)):
            raise IndexingError("vectors contain non-finite values")

        self._ids = ids
        previous = self._core
        self._core = self.backend_factory(vectors)
        if previous is not None:
            previous.close()
        self._vectors = self._core.view()
        self._pending_ids = []
        self._pending_vectors = []
        self._pending_block = None
        self._tombstones = set()
        self._build_stats = BuildStats()
        self._build(ids, self._vectors)
        self._built = True
        return self

    def close(self) -> None:
        """Release the index's storage backend (idempotent).

        Backend files are derived state, so a bounded backend may
        delete them; the index must not be queried afterwards.  The
        database calls this when it replaces a feature's index.
        """
        if self._core is not None:
            self._core.close()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert_batch(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        """Insert new ``(ids[i], vectors[i])`` items into a built index.

        Dynamic structures (:class:`~repro.index.mtree.MTree`,
        :class:`~repro.index.linear.LinearScanIndex`,
        :class:`~repro.index.laesa.LAESAIndex`) grow in place; the
        static trees buffer the items in a pending overlay scanned per
        query until a threshold rebuild folds them in (see
        ``docs/mutability.md``).  Either way the next query sees the
        new items with exact results and exact distance accounting.

        Raises
        ------
        IndexingError
            If the index is unbuilt, an id is already present (live or
            tombstoned), ids repeat, or vectors have the wrong shape or
            non-finite values.
        """
        if not self._built or self._vectors is None:
            raise IndexingError("insert_batch() requires a built index; call build() first")
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._vectors.shape[1]:
            raise IndexingError(
                f"vectors must be a 2-D array of dim {self._vectors.shape[1]}; "
                f"got shape {vectors.shape}"
            )
        ids = [int(i) for i in ids]
        if len(ids) != vectors.shape[0]:
            raise IndexingError(f"{len(ids)} ids but {vectors.shape[0]} vectors")
        if not ids:
            return
        if not np.all(np.isfinite(vectors)):
            raise IndexingError("vectors contain non-finite values")
        if len(set(ids)) != len(ids):
            raise IndexingError("duplicate ids in insert input")
        present = set(self._ids)
        present.update(self._pending_ids)
        clashes = present.intersection(ids)
        if clashes:
            raise IndexingError(
                f"id {sorted(clashes)[0]} is already indexed "
                f"(tombstoned ids cannot be re-inserted before a rebuild)"
            )
        self._insert_batch(ids, vectors.copy())
        self._maybe_rebuild()

    def delete(self, ids: Sequence[int]) -> None:
        """Delete items by id from a built index.

        The linear scan and LAESA drop the rows outright; tree
        structures tombstone the ids (filtered from every result at no
        distance cost) until a threshold rebuild reclaims the space.

        Raises
        ------
        IndexingError
            If the index is unbuilt, an id is unknown or already
            deleted, or ids repeat.
        """
        if not self._built or self._vectors is None:
            raise IndexingError("delete() requires a built index; call build() first")
        ids = [int(i) for i in ids]
        if not ids:
            return
        if len(set(ids)) != len(ids):
            raise IndexingError("duplicate ids in delete input")
        live = (set(self._ids) - self._tombstones).union(self._pending_ids)
        missing = set(ids) - live
        if missing:
            raise IndexingError(f"id {sorted(missing)[0]} is not indexed")
        self._delete(ids)
        self._maybe_rebuild()

    def rebuild(self) -> "MetricIndex":
        """Fold the mutation overlay into a fresh structure now.

        Rebuilds over the live item set in ascending-id order (the
        order a fresh build over the same data would use), clearing the
        pending buffer and tombstones.  A no-op when the overlay is
        empty; resets :attr:`build_stats` like any :meth:`build`.
        """
        if not self._built or self._vectors is None:
            raise IndexingError("rebuild() requires a built index; call build() first")
        if not self._pending_ids and not self._tombstones:
            return self
        live = [
            (item_id, self._vectors[row])
            for row, item_id in enumerate(self._ids)
            if item_id not in self._tombstones
        ]
        live.extend(zip(self._pending_ids, self._pending_vectors))
        if not live:
            # Nothing left to build over; keep the overlay (queries
            # filter everything out) rather than produce an empty tree.
            return self
        live.sort(key=lambda pair: pair[0])
        ids = [item_id for item_id, _ in live]
        matrix = np.stack([vector for _, vector in live])
        return self.build(ids, matrix)

    def _insert_batch(self, ids: list[int], vectors: np.ndarray) -> None:
        """Structure hook for insertion; the default buffers the items.

        Overrides that grow the structure in place must also extend the
        core arrays via :meth:`_append_core`.
        """
        self._pending_ids.extend(ids)
        self._pending_vectors.extend(vectors)
        self._pending_block = None

    def _delete(self, ids: list[int]) -> None:
        """Structure hook for deletion; the default tombstones core ids
        (pending ones are simply dropped from the buffer)."""
        doomed = set(ids)
        in_pending = doomed.intersection(self._pending_ids)
        if in_pending:
            kept = [
                (item_id, vector)
                for item_id, vector in zip(self._pending_ids, self._pending_vectors)
                if item_id not in in_pending
            ]
            self._pending_ids = [item_id for item_id, _ in kept]
            self._pending_vectors = [vector for _, vector in kept]
            self._pending_block = None
            doomed -= in_pending
        self._tombstones.update(doomed)

    def _maybe_rebuild(self) -> None:
        """Rebuild once the overlay outgrows its threshold.

        The trigger is ``pending + tombstones >= max(rebuild_min,
        rebuild_threshold * core_size)`` — rebuild cost is amortized
        over at least that many mutations, and per-query overlay cost
        (one batched scan of the pending buffer) stays bounded.
        """
        overlay = len(self._pending_ids) + len(self._tombstones)
        if overlay and overlay >= max(
            self.rebuild_min, self.rebuild_threshold * len(self._ids)
        ):
            self.rebuild()

    def _append_core(self, ids: list[int], vectors: np.ndarray) -> None:
        """Extend the validated core arrays (for in-place growers).

        Amortized O(rows appended): the rows land in the spare tail of
        the :class:`GrowableRows` backing buffer, which only reallocates
        (capacity-doubled) when full — a stream of ``m`` single-row
        inserts costs O(n + m) row copies, not the O(m·n) a full
        re-stack per append costs.  ``_vectors`` stays a read-only view
        of the live rows, so subclasses see the same array contract as
        before.
        """
        assert self._core is not None
        self._vectors = self._core.append(vectors)
        self._ids.extend(ids)

    def _remove_core(self, ids: list[int]) -> np.ndarray:
        """Drop rows by id from the core arrays.

        Returns the kept row indices (relative to the old layout) so
        subclasses can slice their own parallel arrays the same way.
        Compacts survivors inside the growth buffer (one copy of the
        kept rows, capacity retained for future appends).
        """
        assert self._core is not None
        doomed = set(ids)
        keep = np.array(
            [row for row, item_id in enumerate(self._ids) if item_id not in doomed],
            dtype=np.intp,
        )
        self._vectors = self._core.take(keep)
        self._ids = [self._ids[row] for row in keep]
        return keep

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        """All live items with ``distance(item, query) <= radius``, nearest first."""
        query = self._check_query(query)
        if radius < 0.0:
            raise IndexingError(f"radius must be non-negative; got {radius}")
        self._search_stats = SearchStats()
        self._batch_stats = []
        result = self._range_search(query, float(radius))
        result = self._overlay_range(query, float(radius), result)
        result.sort(key=lambda nb: (nb.distance, nb.id))
        return result

    def knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        """The ``k`` nearest live items (or all of them when ``k >= size``)."""
        query = self._check_query(query)
        if k < 1:
            raise IndexingError(f"k must be >= 1; got {k}")
        self._search_stats = SearchStats()
        self._batch_stats = []
        result = self._knn_search(query, self._structural_k(int(k)))
        result = self._overlay_knn(query, result)
        result.sort(key=lambda nb: (nb.distance, nb.id))
        return result[: int(k)]

    def range_search_batch(
        self, queries: np.ndarray, radius: float
    ) -> list[list[Neighbor]]:
        """``range_search`` for every row of ``queries``; one list per row.

        Equivalent to ``[range_search(q, radius) for q in queries]`` —
        identical results and per-query counters — but routed through the
        metric's batch kernel where an index supports it.
        """
        queries = self._check_query_batch(queries)
        if radius < 0.0:
            raise IndexingError(f"radius must be non-negative; got {radius}")
        results = self._range_search_batch(queries, float(radius))
        return self._overlay_batch(
            queries,
            results,
            lambda query, result: self._overlay_range(query, float(radius), result),
        )

    def knn_search_batch(self, queries: np.ndarray, k: int) -> list[list[Neighbor]]:
        """``knn_search`` for every row of ``queries``; one list per row.

        Equivalent to ``[knn_search(q, k) for q in queries]`` — identical
        results and per-query counters — but routed through the metric's
        batch kernel where an index supports it.
        """
        queries = self._check_query_batch(queries)
        if k < 1:
            raise IndexingError(f"k must be >= 1; got {k}")
        results = self._knn_search_batch(queries, self._structural_k(int(k)))
        return self._overlay_batch(
            queries, results, self._overlay_knn, truncate=int(k)
        )

    # ------------------------------------------------------------------
    # Mutation overlay applied to query results
    # ------------------------------------------------------------------
    def _structural_k(self, k: int) -> int:
        """k to request from the structure so ``k`` *live* answers survive.

        Tombstoned items still occupy the structure; asking for
        ``k + n_tombstones`` guarantees the structural result retains
        the true top-``k`` live items after filtering (at most
        ``n_tombstones`` of the returned entries can be dead).
        """
        return k + len(self._tombstones)

    def _overlay_range(
        self, query: np.ndarray, radius: float, result: list[Neighbor]
    ) -> list[Neighbor]:
        """Drop tombstoned hits; scan the pending buffer into ``result``.

        The pending scan goes through :meth:`_dist_batch`, so its
        ``len(pending)`` evaluations are counted in the current query's
        stats — the overlay is measured cost, not hidden cost.
        """
        if self._tombstones:
            result = [nb for nb in result if nb.id not in self._tombstones]
        if self._pending_ids:
            distances = self._dist_batch(query, self._pending_matrix())
            result.extend(
                Neighbor(item_id, float(d))
                for item_id, d in zip(self._pending_ids, distances.tolist())
                if d <= radius
            )
        return result

    def _overlay_knn(
        self, query: np.ndarray, result: list[Neighbor]
    ) -> list[Neighbor]:
        """Drop tombstoned hits; merge the whole pending buffer.

        Callers sort the merged candidates by ``(distance, id)`` and
        truncate to the requested ``k`` — the same tie-break a fresh
        build over the live set produces.
        """
        if self._tombstones:
            result = [nb for nb in result if nb.id not in self._tombstones]
        if self._pending_ids:
            distances = self._dist_batch(query, self._pending_matrix())
            result.extend(
                Neighbor(item_id, float(d))
                for item_id, d in zip(self._pending_ids, distances.tolist())
            )
        return result

    def _overlay_batch(self, queries, results, merge_one, truncate: int | None = None):
        """Apply the mutation overlay per query of a finished batch.

        The subclass hooks have already filled ``_batch_stats``; each
        query's pending-buffer scan is counted into *its* stats entry,
        and the aggregate is recomputed afterwards.
        """
        if not (self._tombstones or self._pending_ids):
            return results
        per_query = self._batch_stats
        for i in range(queries.shape[0]):
            self._search_stats = per_query[i]
            merged = merge_one(queries[i], results[i])
            merged.sort(key=lambda nb: (nb.distance, nb.id))
            results[i] = merged if truncate is None else merged[:truncate]
        total = SearchStats()
        for stats in per_query:
            total.merge(stats)
        self._search_stats = total
        return results

    def _pending_matrix(self) -> np.ndarray:
        """The pending buffer as one cached contiguous ``(p, d)`` block."""
        if self._pending_block is None:
            self._pending_block = np.ascontiguousarray(
                np.stack(self._pending_vectors)
            )
        return self._pending_block

    def _range_search_batch(
        self, queries: np.ndarray, radius: float
    ) -> list[list[Neighbor]]:
        """Overridable batched hook; the default runs one query at a time.

        Indexes with a genuinely shared traversal override this: the
        VP-tree (both modes) evaluates each node's pivot against every
        active query in one kernel call, the GNAT (range mode) does the
        same per split point with its range-table kills applied per
        query, and the kd-tree (range mode) evaluates each child's box
        bound for all active queries in one vectorized computation.
        Overrides must fill :attr:`_batch_stats` themselves —
        :meth:`_finish_batch` does the shared ordering/aggregation work.
        """
        return self._run_batch(
            queries, lambda query: self._range_search(query, radius)
        )

    def _knn_search_batch(self, queries: np.ndarray, k: int) -> list[list[Neighbor]]:
        """Overridable batched hook; see :meth:`_range_search_batch`."""
        return self._run_batch(queries, lambda query: self._knn_search(query, k))

    def _finish_batch(
        self, results: list[list[Neighbor]], per_query: list[SearchStats]
    ) -> list[list[Neighbor]]:
        """Order results and publish per-query + aggregate batch stats."""
        for result in results:
            result.sort(key=lambda nb: (nb.distance, nb.id))
        self._batch_stats = per_query
        total = SearchStats()
        for stats in per_query:
            total.merge(stats)
        self._search_stats = total
        return results

    def _run_batch(self, queries, run_one) -> list[list[Neighbor]]:
        """Run one search per query row, tracking per-query stats.

        Subclasses get their batch speedups by vectorizing the per-query
        hooks themselves (``_range_search`` / ``_knn_search`` built on
        :meth:`_dist_batch`), which keeps the scalar and batched entry
        points one code path and the per-query counters identical by
        construction.
        """
        self._batch_stats = []
        results = []
        for query in queries:
            self._search_stats = SearchStats()
            result = run_one(query)
            result.sort(key=lambda nb: (nb.distance, nb.id))
            results.append(result)
            self._batch_stats.append(self._search_stats)
        total = SearchStats()
        for stats in self._batch_stats:
            total.merge(stats)
        self._search_stats = total
        return results

    def _check_query_batch(self, queries: np.ndarray) -> np.ndarray:
        if not self._built or self._vectors is None:
            raise IndexingError("index has not been built yet")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise IndexingError(
                f"queries must be a 2-D (m, d) array; got shape {queries.shape} "
                f"(wrap a single query in a one-row matrix, or use the scalar API)"
            )
        if queries.shape[1] != self._vectors.shape[1]:
            raise IndexingError(
                f"queries have dim {queries.shape[1]}, index expects "
                f"{self._vectors.shape[1]}"
            )
        if not np.all(np.isfinite(queries)):
            raise IndexingError("queries contain non-finite values")
        return queries

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        if not self._built or self._vectors is None:
            raise IndexingError("index has not been built yet")
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape != (self._vectors.shape[1],):
            raise IndexingError(
                f"query has dim {query.size}, index expects {self._vectors.shape[1]}"
            )
        if not np.all(np.isfinite(query)):
            raise IndexingError("query contains non-finite values")
        return query

    def _dist(self, a: np.ndarray, b: np.ndarray) -> float:
        """Metric evaluation, counted in the current query's stats."""
        self._search_stats.distance_computations += 1
        return self._metric.distance(a, b)

    def _dist_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Batched metric evaluation: one counted computation per row.

        Goes through ``Metric.distance_batch`` so an externally wrapped
        :class:`~repro.metrics.base.CountingMetric` sees the same count —
        batching is never a way around the accounting.
        """
        distances = self._metric.distance_batch(query, vectors)
        self._search_stats.distance_computations += int(distances.shape[0])
        return distances

    def _build_dist(self, a: np.ndarray, b: np.ndarray) -> float:
        """Metric evaluation, counted in the build stats."""
        self._build_stats.distance_computations += 1
        return self._metric.distance(a, b)

    def _build_dist_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Batched metric evaluation, counted in the build stats."""
        distances = self._metric.distance_batch(query, vectors)
        self._build_stats.distance_computations += int(distances.shape[0])
        return distances

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        """Construct internal structure (vectors are already validated)."""

    @abstractmethod
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        """Unsorted range result; base class sorts."""

    @abstractmethod
    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        """Unsorted k-NN result; base class sorts."""

    def __repr__(self) -> str:
        state = f"size={self.size}" if self._built else "unbuilt"
        return f"{type(self).__name__}({state}, metric={self._metric.name})"
