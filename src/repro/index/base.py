"""The common interface of all similarity indexes.

An index is constructed over a fixed set of ``(id, vector)`` pairs with a
chosen metric and then answers two query types:

* ``range_search(query, radius)`` — every item within ``radius`` of the
  query (closed ball), sorted by distance;
* ``knn_search(query, k)`` — the ``k`` nearest items, sorted by distance
  (fewer if the index holds fewer than ``k``).

Both return lists of :class:`Neighbor` tuples.  Ties at equal distance
are broken by insertion order so results are deterministic.  After each
query, :attr:`MetricIndex.last_stats` holds the cost counters.

Both also exist in batched form — ``range_search_batch(queries, radius)``
and ``knn_search_batch(queries, k)`` take an ``(m, d)`` query matrix and
return one result list per query.  The contract is strict equivalence:
result ``i`` of a batch is identical (ids, distances, and per-query cost
counters, bit for bit) to running query ``i`` alone; batching saves
interpreter overhead via the metrics' vectorized kernels, never metric
evaluations.  After a batch, :attr:`MetricIndex.last_batch_stats` holds
the per-query counters and :attr:`MetricIndex.last_stats` their sum.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import NamedTuple, Sequence

import numpy as np

from repro.errors import IndexingError
from repro.index.stats import BuildStats, SearchStats
from repro.metrics.base import Metric

__all__ = ["Neighbor", "MetricIndex"]


class Neighbor(NamedTuple):
    """One search result: the item's id and its distance to the query."""

    id: int
    distance: float


class MetricIndex(ABC):
    """Base class: validation, bookkeeping, and the query protocol.

    Subclasses implement ``_build``, ``_range_search`` and ``_knn_search``;
    this class owns operand validation, result ordering, and the stats
    lifecycle.  Distances must only be evaluated through :meth:`_dist`,
    which keeps :attr:`last_stats` exact.
    """

    #: Set False in subclasses that tolerate non-metric distances.
    requires_metric: bool = True

    def __init__(self, metric: Metric) -> None:
        if not isinstance(metric, Metric):
            raise IndexingError(f"expected a Metric; got {type(metric).__name__}")
        if self.requires_metric and not metric.is_metric:
            raise IndexingError(
                f"{type(self).__name__} relies on the triangle inequality, but "
                f"{metric.name} is not a metric; use LinearScanIndex instead"
            )
        self._metric = metric
        self._ids: list[int] = []
        self._vectors: np.ndarray | None = None
        self._built = False
        self._build_stats = BuildStats()
        self._search_stats = SearchStats()
        self._batch_stats: list[SearchStats] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def metric(self) -> Metric:
        """The distance function the index was built with."""
        return self._metric

    @property
    def size(self) -> int:
        """Number of indexed items."""
        return len(self._ids)

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed vectors."""
        if self._vectors is None:
            raise IndexingError("index has not been built yet")
        return self._vectors.shape[1]

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has succeeded."""
        return self._built

    @property
    def build_stats(self) -> BuildStats:
        """Cost counters of the last :meth:`build`."""
        return self._build_stats

    @property
    def last_stats(self) -> SearchStats:
        """Cost counters of the most recent query (sum over a batch)."""
        return self._search_stats

    @property
    def last_batch_stats(self) -> list[SearchStats]:
        """Per-query cost counters of the most recent batched query.

        Empty when the most recent query was a scalar call.
        """
        return list(self._batch_stats)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, ids: Sequence[int], vectors: np.ndarray) -> "MetricIndex":
        """Build the index over ``(ids[i], vectors[i])`` pairs.

        Parameters
        ----------
        ids:
            Integer identifiers, one per vector; duplicates are rejected.
        vectors:
            ``(n, d)`` float array, ``n >= 1``.

        Returns
        -------
        MetricIndex
            ``self``, for chaining.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise IndexingError(
                f"vectors must be a non-empty (n, d) array; got shape {vectors.shape}"
            )
        ids = [int(i) for i in ids]
        if len(ids) != vectors.shape[0]:
            raise IndexingError(
                f"{len(ids)} ids but {vectors.shape[0]} vectors"
            )
        if len(set(ids)) != len(ids):
            raise IndexingError("duplicate ids in build input")
        if not np.all(np.isfinite(vectors)):
            raise IndexingError("vectors contain non-finite values")

        self._ids = ids
        self._vectors = vectors.copy()
        self._vectors.setflags(write=False)
        self._build_stats = BuildStats()
        self._build(ids, self._vectors)
        self._built = True
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        """All items with ``distance(item, query) <= radius``, nearest first."""
        query = self._check_query(query)
        if radius < 0.0:
            raise IndexingError(f"radius must be non-negative; got {radius}")
        self._search_stats = SearchStats()
        self._batch_stats = []
        result = self._range_search(query, float(radius))
        result.sort(key=lambda nb: (nb.distance, nb.id))
        return result

    def knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        """The ``k`` nearest items (or all of them when ``k >= size``)."""
        query = self._check_query(query)
        if k < 1:
            raise IndexingError(f"k must be >= 1; got {k}")
        self._search_stats = SearchStats()
        self._batch_stats = []
        result = self._knn_search(query, int(k))
        result.sort(key=lambda nb: (nb.distance, nb.id))
        return result

    def range_search_batch(
        self, queries: np.ndarray, radius: float
    ) -> list[list[Neighbor]]:
        """``range_search`` for every row of ``queries``; one list per row.

        Equivalent to ``[range_search(q, radius) for q in queries]`` —
        identical results and per-query counters — but routed through the
        metric's batch kernel where an index supports it.
        """
        queries = self._check_query_batch(queries)
        if radius < 0.0:
            raise IndexingError(f"radius must be non-negative; got {radius}")
        return self._range_search_batch(queries, float(radius))

    def knn_search_batch(self, queries: np.ndarray, k: int) -> list[list[Neighbor]]:
        """``knn_search`` for every row of ``queries``; one list per row.

        Equivalent to ``[knn_search(q, k) for q in queries]`` — identical
        results and per-query counters — but routed through the metric's
        batch kernel where an index supports it.
        """
        queries = self._check_query_batch(queries)
        if k < 1:
            raise IndexingError(f"k must be >= 1; got {k}")
        return self._knn_search_batch(queries, int(k))

    def _range_search_batch(
        self, queries: np.ndarray, radius: float
    ) -> list[list[Neighbor]]:
        """Overridable batched hook; the default runs one query at a time.

        Indexes with a genuinely shared traversal override this: the
        VP-tree (both modes) evaluates each node's pivot against every
        active query in one kernel call, the GNAT (range mode) does the
        same per split point with its range-table kills applied per
        query, and the kd-tree (range mode) evaluates each child's box
        bound for all active queries in one vectorized computation.
        Overrides must fill :attr:`_batch_stats` themselves —
        :meth:`_finish_batch` does the shared ordering/aggregation work.
        """
        return self._run_batch(
            queries, lambda query: self._range_search(query, radius)
        )

    def _knn_search_batch(self, queries: np.ndarray, k: int) -> list[list[Neighbor]]:
        """Overridable batched hook; see :meth:`_range_search_batch`."""
        return self._run_batch(queries, lambda query: self._knn_search(query, k))

    def _finish_batch(
        self, results: list[list[Neighbor]], per_query: list[SearchStats]
    ) -> list[list[Neighbor]]:
        """Order results and publish per-query + aggregate batch stats."""
        for result in results:
            result.sort(key=lambda nb: (nb.distance, nb.id))
        self._batch_stats = per_query
        total = SearchStats()
        for stats in per_query:
            total.merge(stats)
        self._search_stats = total
        return results

    def _run_batch(self, queries, run_one) -> list[list[Neighbor]]:
        """Run one search per query row, tracking per-query stats.

        Subclasses get their batch speedups by vectorizing the per-query
        hooks themselves (``_range_search`` / ``_knn_search`` built on
        :meth:`_dist_batch`), which keeps the scalar and batched entry
        points one code path and the per-query counters identical by
        construction.
        """
        self._batch_stats = []
        results = []
        for query in queries:
            self._search_stats = SearchStats()
            result = run_one(query)
            result.sort(key=lambda nb: (nb.distance, nb.id))
            results.append(result)
            self._batch_stats.append(self._search_stats)
        total = SearchStats()
        for stats in self._batch_stats:
            total.merge(stats)
        self._search_stats = total
        return results

    def _check_query_batch(self, queries: np.ndarray) -> np.ndarray:
        if not self._built or self._vectors is None:
            raise IndexingError("index has not been built yet")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise IndexingError(
                f"queries must be a 2-D (m, d) array; got shape {queries.shape} "
                f"(wrap a single query in a one-row matrix, or use the scalar API)"
            )
        if queries.shape[1] != self._vectors.shape[1]:
            raise IndexingError(
                f"queries have dim {queries.shape[1]}, index expects "
                f"{self._vectors.shape[1]}"
            )
        if not np.all(np.isfinite(queries)):
            raise IndexingError("queries contain non-finite values")
        return queries

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        if not self._built or self._vectors is None:
            raise IndexingError("index has not been built yet")
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape != (self._vectors.shape[1],):
            raise IndexingError(
                f"query has dim {query.size}, index expects {self._vectors.shape[1]}"
            )
        if not np.all(np.isfinite(query)):
            raise IndexingError("query contains non-finite values")
        return query

    def _dist(self, a: np.ndarray, b: np.ndarray) -> float:
        """Metric evaluation, counted in the current query's stats."""
        self._search_stats.distance_computations += 1
        return self._metric.distance(a, b)

    def _dist_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Batched metric evaluation: one counted computation per row.

        Goes through ``Metric.distance_batch`` so an externally wrapped
        :class:`~repro.metrics.base.CountingMetric` sees the same count —
        batching is never a way around the accounting.
        """
        distances = self._metric.distance_batch(query, vectors)
        self._search_stats.distance_computations += int(distances.shape[0])
        return distances

    def _build_dist(self, a: np.ndarray, b: np.ndarray) -> float:
        """Metric evaluation, counted in the build stats."""
        self._build_stats.distance_computations += 1
        return self._metric.distance(a, b)

    def _build_dist_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Batched metric evaluation, counted in the build stats."""
        distances = self._metric.distance_batch(query, vectors)
        self._build_stats.distance_computations += int(distances.shape[0])
        return distances

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        """Construct internal structure (vectors are already validated)."""

    @abstractmethod
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        """Unsorted range result; base class sorts."""

    @abstractmethod
    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        """Unsorted k-NN result; base class sorts."""

    def __repr__(self) -> str:
        state = f"size={self.size}" if self._built else "unbuilt"
        return f"{type(self).__name__}({state}, metric={self._metric.name})"
