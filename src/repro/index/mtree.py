"""The M-tree — a dynamic, paged metric index.

The other trees in this package are *static*: they take the whole
database at build time and re-organize from scratch after any change.
A production image database of the reproduced era could not afford that —
pictures arrive one at a time — so the disk-oriented answer was the
M-tree (Ciaccia/Patella/Zezula): a balanced, page-structured metric tree
that grows bottom-up through node splits, exactly like a B-tree, while
pruning with the triangle inequality, exactly like the VP-tree.

Structure
---------
Every node is one fixed-capacity *page* of entries.

* A **leaf entry** stores an object ``(id, vector)`` plus its distance to
  the routing object of the parent node (``d_parent``).
* A **routing entry** stores a routing object, a *covering radius* ``r``
  such that every object in its subtree is within ``r`` of it, its
  ``d_parent``, and a child-page pointer.

Insertion descends to the leaf whose routing objects need the least
covering-radius enlargement, then splits overflowing pages upward:
two entries are *promoted* (policy-controlled), the rest partitioned
around them by the generalized-hyperplane rule, and the parent receives
the two new routing entries — the tree stays balanced by construction.

Search uses two nested applications of the triangle inequality:

1. **parent filtering** — ``|d(q, parent) - d_parent| - r > radius``
   proves a subtree empty *without computing any new distance*;
2. **covering-radius filtering** — ``d(q, routing) - r > radius`` prunes
   after one distance evaluation.

k-NN search is best-first over a priority queue of subtrees keyed by
their distance lower bound, shrinking the candidate radius as results
surface.

``SearchStats.nodes_visited`` counts internal pages read and
``leaves_visited`` leaf pages read — together they are the index's page
I/O per query, the second cost axis (after distance computations) that
experiment T9 reports.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from repro.errors import IndexingError
from repro.index.base import MetricIndex, Neighbor
from repro.metrics.base import Metric

__all__ = ["MTree", "PROMOTION_POLICIES"]

#: Promotion policies accepted by :class:`MTree`.
PROMOTION_POLICIES = ("mmrad", "maxdist", "random")


class _Entry:
    """One slot of a node page.

    Leaf entries have ``child is None`` and ``radius == 0``; routing
    entries carry the covering radius of — and the pointer to — a subtree.
    """

    __slots__ = ("item_id", "vector", "radius", "d_parent", "child")

    def __init__(
        self,
        item_id: int,
        vector: np.ndarray,
        *,
        radius: float = 0.0,
        d_parent: float = 0.0,
        child: "_Node | None" = None,
    ) -> None:
        self.item_id = item_id
        self.vector = vector
        self.radius = radius
        self.d_parent = d_parent
        self.child = child


class _Node:
    """One page: a list of entries plus the back-pointer used by splits.

    The page caches a contiguous ``(len(entries), d)`` block of its entry
    vectors so every visit (insert descent, split matrix, range scan)
    reuses one array instead of re-stacking ``np.array([...])``.  Any
    mutation of the entry list — :meth:`adopt`, :meth:`discard` — drops
    the cache; entry *vectors* are immutable, so nothing else can
    invalidate it.  On a bounded storage backend the tree disables the
    cache (``cache_vectors=False``): entry vectors are rows of a
    memmap, and pinning a RAM copy per page would defeat the resident-
    memory bound, so each visit re-gathers the block through OS paging.
    """

    __slots__ = (
        "entries",
        "is_leaf",
        "parent_node",
        "parent_entry",
        "_matrix",
        "cache_vectors",
    )

    def __init__(self, is_leaf: bool) -> None:
        self.entries: list[_Entry] = []
        self.is_leaf = is_leaf
        self.parent_node: _Node | None = None
        self.parent_entry: _Entry | None = None
        self._matrix: np.ndarray | None = None
        self.cache_vectors = True

    def adopt(self, entry: _Entry) -> None:
        """Add ``entry`` and, for routing entries, fix the child's back-pointers."""
        self.entries.append(entry)
        self._matrix = None
        if entry.child is not None:
            entry.child.parent_node = self
            entry.child.parent_entry = entry

    def discard(self, entry: _Entry) -> None:
        """Remove ``entry`` (used when a split replaces a child page)."""
        self.entries.remove(entry)
        self._matrix = None

    def matrix(self) -> np.ndarray:
        """The page's entry vectors as one contiguous block (cached
        unless the tree's backend bounds resident memory)."""
        if self._matrix is not None:
            return self._matrix
        block = np.array([entry.vector for entry in self.entries])
        if self.cache_vectors:
            self._matrix = block
        return block


class MTree(MetricIndex):
    """Dynamic paged metric tree supporting incremental insertion.

    Parameters
    ----------
    metric:
        Any true metric (both pruning rules are triangle-inequality
        arguments).
    capacity:
        Maximum entries per page (default 8); a page holding more splits.
        Must be at least 4 so splits produce two viable pages.
    promotion:
        Split-promotion policy:

        ``'mmrad'`` (default)
            Examine every candidate pair and keep the one minimizing the
            larger of the two resulting covering radii — the slowest and
            best policy.
        ``'maxdist'``
            Promote the two farthest-apart entries (one pass over the
            pairwise matrix, no partition trials).
        ``'random'``
            Promote a random pair — the fast baseline that experiment T9
            compares the informed policies against.
    seed:
        Seed for the ``'random'`` policy (and tie-breaking shuffles).

    Notes
    -----
    ``build(ids, vectors)`` performs sequential insertions, so build cost
    is directly comparable with the static trees' bulk construction, and
    :meth:`insert` / :meth:`MetricIndex.insert_batch` keep working after
    the initial build — the property the static indexes lack.  Deletion
    tombstones through the base class's overlay (exactly how the era's
    implementations handled it, at the catalog layer) until the
    threshold rebuild reclaims the pages; see ``docs/mutability.md``.
    """

    def __init__(
        self,
        metric: Metric,
        *,
        capacity: int = 8,
        promotion: str = "mmrad",
        seed: int = 0,
    ) -> None:
        super().__init__(metric)
        if capacity < 4:
            raise IndexingError(f"capacity must be >= 4; got {capacity}")
        if promotion not in PROMOTION_POLICIES:
            raise IndexingError(
                f"promotion must be one of {PROMOTION_POLICIES}; got {promotion!r}"
            )
        self._capacity = capacity
        self._promotion = promotion
        self._rng = np.random.default_rng(seed)
        self._root: _Node | None = None
        self._n_splits = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum entries per page."""
        return self._capacity

    @property
    def promotion(self) -> str:
        """The configured split-promotion policy."""
        return self._promotion

    @property
    def n_splits(self) -> int:
        """Page splits performed since construction."""
        return self._n_splits

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        if self._root is None:
            return 0
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0].child  # type: ignore[assignment]
            levels += 1
        return levels

    @property
    def n_pages(self) -> int:
        """Total pages (internal + leaf) currently allocated."""

        def count(node: _Node | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return 1 + sum(count(entry.child) for entry in node.entries)

        return count(self._root)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        self._root = None
        self._n_splits = 0
        for item_id, vector in zip(ids, vectors):
            self._insert(item_id, vector)
        self._build_stats.n_leaves = sum(
            1 for node in self._iter_nodes() if node.is_leaf
        )
        self._build_stats.n_nodes = self.n_pages - self._build_stats.n_leaves
        self._build_stats.depth = self.height - 1
        self._build_stats.extra["n_splits"] = self._n_splits

    def insert(self, item_id: int, vector: np.ndarray) -> None:
        """Insert one object into an already-built tree.

        Scalar convenience over :meth:`MetricIndex.insert_batch` (the
        tree grows through the same descend-and-split path either way).

        Raises
        ------
        IndexingError
            If the tree has not been built, the id already exists, or the
            vector dimensionality disagrees with the index.
        """
        if not self.is_built or self._vectors is None:
            raise IndexingError("insert() requires a built index; call build() first")
        vector = np.asarray(vector, dtype=np.float64).ravel()
        self.insert_batch([item_id], vector[None, :])

    def _insert_batch(self, ids: list[int], vectors: np.ndarray) -> None:
        """True dynamic insertion: descend to the best leaf, split upward.

        Each object pays the paper's insertion cost (one batched routing
        evaluation per level plus any split matrices), counted in
        :attr:`build_stats` — the structure absorbs the items
        immediately, no pending buffer.
        """
        for item_id, vector in zip(ids, vectors):
            self._insert(item_id, vector)
        self._append_core(ids, vectors)

    def _new_node(self, is_leaf: bool) -> _Node:
        """A page configured for the active storage backend (no RAM
        block cache when the backend bounds resident memory)."""
        node = _Node(is_leaf=is_leaf)
        node.cache_vectors = self._core is None or not self._core.bounded
        return node

    def _insert(self, item_id: int, vector: np.ndarray) -> None:
        if self._root is None:
            self._root = self._new_node(is_leaf=True)
            self._root.adopt(_Entry(item_id, vector))
            return

        # Descend to the best leaf, remembering the distance to each
        # chosen routing object so d_parent needs no recomputation.
        # Every routing entry's distance is needed (no short-circuit in
        # the choice rule), so each level is one batched evaluation.
        node = self._root
        d_to_parent = 0.0
        while not node.is_leaf:
            distances = self._build_dist_batch(vector, node.matrix()).tolist()
            best_entry: _Entry | None = None
            best_d = np.inf
            best_enlargement = np.inf
            for entry, d in zip(node.entries, distances):
                enlargement = max(0.0, d - entry.radius)
                if (enlargement, d) < (best_enlargement, best_d):
                    best_entry, best_d, best_enlargement = entry, d, enlargement
            assert best_entry is not None and best_entry.child is not None
            best_entry.radius = max(best_entry.radius, best_d)
            node = best_entry.child
            d_to_parent = best_d

        node.adopt(_Entry(item_id, vector, d_parent=d_to_parent))
        if len(node.entries) > self._capacity:
            self._split(node)

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def _split(self, node: _Node) -> None:
        self._n_splits += 1
        entries = node.entries
        n = len(entries)
        # Upper-triangle pairwise matrix: one batched sweep per anchor
        # (same n(n-1)/2 counted evaluations as the scalar double loop).
        entry_matrix = node.matrix()
        pairwise = np.zeros((n, n))
        for i in range(n - 1):
            row = self._build_dist_batch(entry_matrix[i], entry_matrix[i + 1 :])
            pairwise[i, i + 1 :] = row
            pairwise[i + 1 :, i] = row

        i1, i2 = self._promote(entries, pairwise)
        group1, group2 = self._partition(entries, pairwise, i1, i2)

        left = self._new_node(is_leaf=node.is_leaf)
        right = self._new_node(is_leaf=node.is_leaf)
        r_left = self._fill(left, entries, group1, pairwise, i1)
        r_right = self._fill(right, entries, group2, pairwise, i2)

        entry_left = _Entry(
            entries[i1].item_id, entries[i1].vector, radius=r_left, child=left
        )
        entry_right = _Entry(
            entries[i2].item_id, entries[i2].vector, radius=r_right, child=right
        )

        parent = node.parent_node
        if parent is None:
            # The root split: the tree grows one level.
            new_root = self._new_node(is_leaf=False)
            new_root.adopt(entry_left)
            new_root.adopt(entry_right)
            self._root = new_root
            return

        parent.discard(node.parent_entry)
        parent_routing = parent.parent_entry
        for entry in (entry_left, entry_right):
            if parent_routing is not None:
                entry.d_parent = self._build_dist(entry.vector, parent_routing.vector)
                # A promoted object may lie farther from the grandparent
                # routing object than anything seen before.
                parent_routing.radius = max(
                    parent_routing.radius, entry.d_parent + entry.radius
                )
            parent.adopt(entry)
        if len(parent.entries) > self._capacity:
            self._split(parent)

    def _promote(
        self, entries: list[_Entry], pairwise: np.ndarray
    ) -> tuple[int, int]:
        n = len(entries)
        if self._promotion == "random":
            i1, i2 = self._rng.choice(n, size=2, replace=False)
            return int(i1), int(i2)
        if self._promotion == "maxdist":
            flat = int(np.argmax(pairwise))
            return flat // n, flat % n
        # mmrad: try every pair, keep the one whose generalized-hyperplane
        # partition yields the smallest maximum covering radius.
        best_pair = (0, 1)
        best_score = np.inf
        for i1, i2 in itertools.combinations(range(n), 2):
            group1, group2 = self._partition(entries, pairwise, i1, i2)
            r1 = max(
                (pairwise[i1, j] + entries[j].radius for j in group1), default=0.0
            )
            r2 = max(
                (pairwise[i2, j] + entries[j].radius for j in group2), default=0.0
            )
            score = max(r1, r2)
            if score < best_score:
                best_score = score
                best_pair = (i1, i2)
        return best_pair

    @staticmethod
    def _partition(
        entries: list[_Entry], pairwise: np.ndarray, i1: int, i2: int
    ) -> tuple[list[int], list[int]]:
        """Generalized hyperplane: each entry joins its nearer promoted object.

        The promoted entries anchor their own sides, so neither side is
        empty; ties go to the smaller side to curb degeneracy when many
        entries are equidistant.
        """
        group1: list[int] = [i1]
        group2: list[int] = [i2]
        for j in range(len(entries)):
            if j in (i1, i2):
                continue
            d1 = pairwise[i1, j]
            d2 = pairwise[i2, j]
            if d1 < d2 or (d1 == d2 and len(group1) <= len(group2)):
                group1.append(j)
            else:
                group2.append(j)
        return group1, group2

    @staticmethod
    def _fill(
        node: _Node,
        entries: list[_Entry],
        member_rows: list[int],
        pairwise: np.ndarray,
        promoted_row: int,
    ) -> float:
        """Move entries into ``node``; return the covering radius."""
        radius = 0.0
        for row in member_rows:
            entry = entries[row]
            entry.d_parent = float(pairwise[promoted_row, row])
            node.adopt(entry)
            radius = max(radius, entry.d_parent + entry.radius)
        return radius

    def _iter_nodes(self):
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)

    # ------------------------------------------------------------------
    # Range search
    # ------------------------------------------------------------------
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        result: list[Neighbor] = []
        if self._root is not None:
            self._range_visit(self._root, query, radius, None, result)
        return result

    def _range_visit(
        self,
        node: _Node,
        query: np.ndarray,
        radius: float,
        d_q_parent: float | None,
        result: list[Neighbor],
    ) -> None:
        if node.is_leaf:
            self._search_stats.leaves_visited += 1
        else:
            self._search_stats.nodes_visited += 1
        # Parent filtering prunes without a new distance computation and
        # depends only on the parent distance, so the survivors are known
        # up front and their distances are one batched evaluation over
        # the page's cached vector block (or a row subset of it).
        if d_q_parent is None:
            survivors = list(node.entries)
            block = node.matrix()
        else:
            survivors = []
            rows = []
            for row, entry in enumerate(node.entries):
                if abs(d_q_parent - entry.d_parent) > radius + entry.radius:
                    self._search_stats.nodes_pruned += 1
                else:
                    survivors.append(entry)
                    rows.append(row)
            if not survivors:
                return
            block = node.matrix()[rows]
        if not survivors:
            return
        distances = self._dist_batch(query, block).tolist()
        for entry, d in zip(survivors, distances):
            if entry.child is None:
                if d <= radius:
                    result.append(Neighbor(entry.item_id, d))
            elif d <= radius + entry.radius:
                self._range_visit(entry.child, query, radius, d, result)
            else:
                self._search_stats.nodes_pruned += 1

    # ------------------------------------------------------------------
    # k-NN search
    # ------------------------------------------------------------------
    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        if self._root is None:
            return []
        # Best-first search: subtrees keyed by the lower bound of any
        # object they can contain; candidates kept in a k-bounded max-heap.
        # This loop stays on scalar evaluations on purpose: the parent
        # filter re-checks against tau, which shrinks as entries of the
        # same page are offered, so later entries can be skipped entirely.
        # Batching a page up front would evaluate entries the scalar path
        # never pays for, breaking the exact distance accounting.
        best: list[tuple[float, int]] = []  # (-distance, id)
        tiebreak = itertools.count()
        queue: list[tuple[float, int, _Node, float | None]] = [
            (0.0, next(tiebreak), self._root, None)
        ]

        def tau() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def offer(item_id: int, d: float) -> None:
            # (-d, -id): the max-heap then evicts the larger id among
            # equal-distance entries, matching the documented tie-break.
            entry = (-d, -item_id)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)

        while queue:
            bound, _, node, d_q_parent = heapq.heappop(queue)
            if bound > tau():
                self._search_stats.nodes_pruned += 1
                continue
            if node.is_leaf:
                self._search_stats.leaves_visited += 1
            else:
                self._search_stats.nodes_visited += 1
            for entry in node.entries:
                if d_q_parent is not None:
                    lower = abs(d_q_parent - entry.d_parent) - entry.radius
                    if lower > tau():
                        self._search_stats.nodes_pruned += 1
                        continue
                d = self._dist(query, entry.vector)
                if entry.child is None:
                    offer(entry.item_id, d)
                else:
                    child_bound = max(d - entry.radius, 0.0)
                    if child_bound <= tau():
                        heapq.heappush(
                            queue, (child_bound, next(tiebreak), entry.child, d)
                        )
                    else:
                        self._search_stats.nodes_pruned += 1

        return [Neighbor(-neg_id, -neg_d) for neg_d, neg_id in best]
