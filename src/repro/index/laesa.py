"""LAESA: the pivot-table index (Micó, Oncina & Vidal, 1994).

Exactly contemporary with the reproduced paper, LAESA (Linear
Approximating and Eliminating Search Algorithm) takes the opposite
trade from the trees: instead of a hierarchy, it precomputes and stores
the distance from every database object to ``m`` fixed **pivots**
(an ``n x m`` table).  At query time:

1. compute the query's distance to each pivot (``m`` metric calls),
2. every object ``x`` now has a free lower bound
   ``L(x) = max_p | d(q, p) - d(x, p) |`` (triangle inequality),
3. scan candidates in increasing ``L(x)`` order, computing true
   distances only while ``L(x)`` does not exceed the current search
   radius (range) or k-th best (k-NN).

Cost per query is ``m + (candidates that survive the bound)`` distance
computations plus O(n·m) cheap arithmetic — the classic trade of memory
(the table) for metric evaluations.  Pivots are chosen by the standard
maximum-minimum-distance greedy sweep.

The pivot machinery is batched wherever the evaluation order does not
matter: the build sweeps and the pivot table go through
``Metric.distance_batch``, query-time pivot distances are one batch call
(the *batch prefilter* — bounds for all n objects from m evaluations),
and range queries refine all surviving candidates in a second batch
call.  Only the k-NN refinement stays sequential: its early-termination
rule (stop when the lower bound exceeds the running k-th best) depends
on each previous true distance, and short-circuiting evaluations is the
whole point of the structure.  Counted distance computations are
identical to the scalar path throughout.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.db.backend import VectorBackend
from repro.errors import IndexingError
from repro.index.base import MetricIndex, Neighbor
from repro.metrics.base import Metric

__all__ = ["LAESAIndex"]


class LAESAIndex(MetricIndex):
    """Pivot-table (LAESA) index.

    Parameters
    ----------
    metric:
        Any true metric.
    n_pivots:
        Number of pivots ``m``.  More pivots tighten the lower bound
        (fewer true distances at query time) but cost more per query in
        pivot evaluations and more memory; the sweet spot grows with
        intrinsic dimensionality.  Default 8.
    seed:
        Seed for the first pivot choice (the rest are deterministic
        max-min selections).
    """

    def __init__(self, metric: Metric, *, n_pivots: int = 8, seed: int = 0) -> None:
        super().__init__(metric)
        if n_pivots < 1:
            raise IndexingError(f"n_pivots must be >= 1; got {n_pivots}")
        self._n_pivots = n_pivots
        self._seed = seed
        #: Table row of each pivot object, -1 once the object was deleted
        #: (its column survives — a pivot is just a reference anchor).
        self._pivot_rows: list[int] = []
        self._pivot_ids: list[int] = []
        #: (n, m) object-to-pivot distances behind the same storage
        #: backend as the core rows, so per-insert growth is amortized
        #: O(m) in memory and the table pages to disk under ``mmap``.
        self._table_store: VectorBackend | None = None
        self._pivot_table: np.ndarray | None = None  # live (n, m) view
        self._pivot_vectors: np.ndarray | None = None  # (m, d) pivot rows

    def close(self) -> None:
        super().close()
        if self._table_store is not None:
            self._table_store.close()

    @property
    def n_pivots(self) -> int:
        """Number of pivots actually used (capped at the build size)."""
        return len(self._pivot_rows)

    @property
    def pivot_ids(self) -> list[int]:
        """Ids of the chosen pivot objects (kept even after deletion —
        the pivot columns remain valid lower-bound anchors)."""
        return list(self._pivot_ids)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        n = vectors.shape[0]
        m = min(self._n_pivots, n)
        rng = np.random.default_rng(self._seed)

        # Greedy max-min pivot selection: start random, then repeatedly
        # take the object farthest from the chosen pivot set.  Each sweep
        # is one batched evaluation over the whole table (n counted
        # computations, as before).
        first = int(rng.integers(n))
        pivot_rows = [first]
        min_dist = self._build_dist_batch(vectors[first], vectors)
        while len(pivot_rows) < m:
            candidate = int(np.argmax(min_dist))
            if min_dist[candidate] <= 0.0:
                break  # remaining objects duplicate existing pivots
            pivot_rows.append(candidate)
            distances = self._build_dist_batch(vectors[candidate], vectors)
            min_dist = np.minimum(min_dist, distances)

        # The pivot table re-uses no build distances (they were consumed
        # by the max-min sweep), so fill it explicitly.
        table = np.empty((n, len(pivot_rows)))
        for column, row in enumerate(pivot_rows):
            table[:, column] = self._build_dist_batch(vectors[row], vectors)

        self._pivot_rows = pivot_rows
        self._pivot_ids = [ids[row] for row in pivot_rows]
        previous = self._table_store
        self._table_store = self.backend_factory(table)
        if previous is not None:
            previous.close()
        self._pivot_table = self._table_store.view()
        self._pivot_vectors = vectors[pivot_rows].copy()
        self._build_stats.n_leaves = 1
        self._build_stats.extra["n_pivots"] = len(pivot_rows)

    def _insert_batch(self, ids: list[int], vectors: np.ndarray) -> None:
        """True dynamic insertion: one new table row per object.

        Each inserted object costs exactly ``m`` metric evaluations (its
        distance to every pivot), counted in :attr:`build_stats` — the
        same per-object table cost the initial build pays.  The table
        rows land in the same capacity-doubled buffer scheme as the
        core vectors, so a mutation stream never re-copies the whole
        (n, m) table per insert.
        """
        assert self._table_store is not None and self._pivot_vectors is not None
        block = np.ascontiguousarray(vectors)
        new_rows = np.empty((block.shape[0], len(self._pivot_rows)))
        for column in range(len(self._pivot_rows)):
            new_rows[:, column] = self._build_dist_batch(
                self._pivot_vectors[column], block
            )
        self._pivot_table = self._table_store.append(new_rows)
        self._append_core(ids, vectors)

    def _delete(self, ids: list[int]) -> None:
        """True deletion: the rows leave the table and the scan.

        A deleted pivot *object* stays a reference anchor (its column and
        stored vector survive); only its free exact distance at query
        time is lost, marked by a -1 row index.
        """
        assert self._table_store is not None
        keep = self._remove_core(ids)
        self._pivot_table = self._table_store.take(keep)
        row_of = {item_id: row for row, item_id in enumerate(self._ids)}
        self._pivot_rows = [
            row_of.get(pivot_id, -1) for pivot_id in self._pivot_ids
        ]

    # ------------------------------------------------------------------
    # Shared query machinery
    # ------------------------------------------------------------------
    def _row(self, row: int) -> np.ndarray:
        """One core row, via the buffer pool on a bounded backend."""
        assert self._vectors is not None and self._core is not None
        if self._core.bounded:
            return self._core.rows([row])[0]
        return self._vectors[row]

    def _lower_bounds(self, query: np.ndarray) -> tuple[np.ndarray, dict[int, float]]:
        """``L(x) = max_p |d(q,p) - d(x,p)|`` for every object x.

        The batch prefilter: all m query-to-pivot distances in one
        batched evaluation, then bounds for every object with cheap
        arithmetic.  Also returns the exact query-to-pivot distances
        (keyed by row), which the searches re-use so pivots never cost a
        second evaluation.
        """
        assert self._pivot_table is not None and self._pivot_vectors is not None
        assert self._table_store is not None
        pivot_distances = self._dist_batch(query, self._pivot_vectors)
        if self._table_store.bounded:
            # One buffer-pool page of the table at a time: the per-row
            # max is block-independent, so the concatenation is
            # bit-identical to the whole-table evaluation below.
            parts = [
                np.abs(block - pivot_distances[None, :]).max(axis=1)
                for _start, block in self._table_store.iter_blocks()
            ]
            bounds = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
            )
        else:
            bounds = np.abs(self._pivot_table - pivot_distances[None, :]).max(axis=1)
        known = {
            row: float(d)
            for row, d in zip(self._pivot_rows, pivot_distances)
            if row >= 0  # a deleted pivot object has no table row
        }
        return bounds, known

    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        assert self._vectors is not None
        bounds, known = self._lower_bounds(query)
        candidates = [int(row) for row in np.flatnonzero(bounds <= radius)]
        # Pivots already have exact distances; refine the rest in one
        # batched evaluation (order is irrelevant for a range query).
        unknown = [row for row in candidates if row not in known]
        assert self._core is not None
        survivors = (
            self._core.rows(unknown)  # gathered through the buffer pool
            if self._core.bounded
            else self._vectors[unknown]
        )
        refined = dict(zip(unknown, self._dist_batch(query, survivors)))
        result: list[Neighbor] = []
        for row in candidates:
            d = known.get(row)
            if d is None:
                d = float(refined[row])
            if d <= radius:
                result.append(Neighbor(self._ids[row], d))
        self._search_stats.leaves_visited = 1
        self._search_stats.nodes_pruned = int(np.sum(bounds > radius))
        return result

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        assert self._vectors is not None
        bounds, known = self._lower_bounds(query)
        order = np.argsort(bounds, kind="stable")

        best: list[tuple[float, int]] = []

        def tau() -> float:
            return -best[0][0] if len(best) == k else np.inf

        examined = 0
        for row in order:
            row = int(row)
            if bounds[row] > tau():
                break  # everything later has an even larger lower bound
            d = known.get(row)
            if d is None:
                d = self._dist(query, self._row(row))
            examined += 1
            # (-d, -id): evict the larger id among equal-distance entries,
            # matching the documented tie-break.
            entry = (-d, -self._ids[row])
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)
        self._search_stats.leaves_visited = 1
        self._search_stats.nodes_pruned = len(order) - examined
        return [Neighbor(-neg_id, -neg_d) for neg_d, neg_id in best]
