"""Distance browsing: lazy best-first neighbor enumeration.

k-NN search needs ``k`` up front, but the classic CBIR interaction is a
result page the user keeps scrolling — "show me more like this" until
they stop.  Re-running k-NN with growing k repeats all earlier work;
*distance browsing* (Hjaltason & Samet's incremental nearest-neighbor
algorithm) instead yields neighbors one at a time, nearest first,
doing only the work each next result needs.

One priority queue holds both unvisited subtrees (keyed by the lower
bound of anything inside them) and already-measured items (keyed by
their true distance).  When an *item* surfaces at the front, no subtree
can contain anything closer, so it is safe to yield immediately.

:func:`browse` works against any :class:`~repro.index.base.MetricIndex`:
indexes that expose a ``_browse_parts`` hook (the VP-tree) are browsed
lazily; anything else falls back to a fully-sorted scan (correct, not
lazy — the docstring of the fallback says so loudly).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

import numpy as np

from repro.errors import IndexingError
from repro.index.base import MetricIndex, Neighbor
from repro.index.vptree import VPTree, _interval_gap, _Leaf, _Node

__all__ = ["browse"]


def browse(index: MetricIndex, query: np.ndarray) -> Iterator[Neighbor]:
    """Yield the index's items nearest-first, lazily where supported.

    For a :class:`~repro.index.vptree.VPTree` this is true incremental
    browsing: consuming the first few results costs only the distance
    computations their proof of rank requires.  For other indexes the
    fallback computes every distance up front and yields from a sorted
    list — same output contract, linear cost.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.index.vptree import VPTree
    >>> from repro.metrics.minkowski import EuclideanDistance
    >>> rng = np.random.default_rng(0)
    >>> tree = VPTree(EuclideanDistance()).build(range(50), rng.random((50, 3)))
    >>> stream = browse(tree, rng.random(3))
    >>> first = next(stream)
    >>> second = next(stream)
    >>> first.distance <= second.distance
    True
    """
    if not index.is_built:
        raise IndexingError("index has not been built yet")
    if isinstance(index, VPTree):
        return _browse_vptree(index, query)
    return _browse_sorted(index, query)


def _browse_sorted(index: MetricIndex, query: np.ndarray) -> Iterator[Neighbor]:
    """Fallback: one full k=n query, then yield from the sorted result."""
    return iter(index.knn_search(query, index.size))


def _browse_vptree(tree: VPTree, query: np.ndarray) -> Iterator[Neighbor]:
    query = tree._check_query(query)
    from repro.index.stats import SearchStats

    tree._search_stats = SearchStats()
    stats = tree._search_stats

    # Queue entries: (bound, kind, tiebreak, payload); kind 0 = measured
    # item (payload: Neighbor), kind 1 = pending subtree (payload: node).
    # Measured items sort before subtrees at an equal bound, so an item
    # is yielded as soon as nothing strictly closer can exist (ties in
    # distance may surface in any order).
    tiebreak = itertools.count()
    queue: list[tuple[float, int, int, object]] = []
    root = tree._root
    if root is not None:
        heapq.heappush(queue, (0.0, 1, next(tiebreak), root))

    while queue:
        bound, kind, _, payload = heapq.heappop(queue)
        if kind == 0:
            yield payload  # type: ignore[misc]
            continue

        node = payload
        if isinstance(node, _Leaf):
            stats.leaves_visited += 1
            for item_id, vector in zip(node.ids, node.vectors):
                stats.distance_computations += 1
                d = tree.metric.distance(query, vector)
                heapq.heappush(
                    queue, (d, 0, next(tiebreak), Neighbor(item_id, d))
                )
            continue

        assert isinstance(node, _Node)
        stats.nodes_visited += 1
        stats.distance_computations += 1
        d = tree.metric.distance(query, node.pivot_vector)
        heapq.heappush(
            queue, (d, 0, next(tiebreak), Neighbor(node.pivot_id, d))
        )
        for child, low, high in (
            (node.inside, node.in_low, node.in_high),
            (node.outside, node.out_low, node.out_high),
        ):
            if child is not None:
                child_bound = max(bound, _interval_gap(d, low, high))
                heapq.heappush(queue, (child_bound, 1, next(tiebreak), child))
