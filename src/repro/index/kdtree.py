"""k-d tree: the coordinate-space baseline.

Unlike the metric trees, a k-d tree needs coordinates, not just distances:
it splits on the median of the widest dimension and prunes using the
geometric distance from the query to a subtree's bounding box.  That makes
it inapplicable to black-box metrics (quadratic form, Hausdorff, shifted
matching) — precisely the gap the paper's metric-space indexing fills —
but on plain Minkowski distances it is the natural comparison point for
experiments F1/F2.

Box lower bounds are coordinate arithmetic, not metric evaluations, so
they are *not* counted as distance computations; this mirrors the cost
model of the era (a distance computation = fetching a feature vector),
and is exactly why the k-d tree looks strong at low dimensionality.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import IndexingError
from repro.index.base import MetricIndex, Neighbor
from repro.index.stats import SearchStats
from repro.metrics.base import Metric
from repro.metrics.minkowski import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
    WeightedEuclideanDistance,
)

__all__ = ["KDTree"]


@dataclass
class _KDLeaf:
    ids: list[int]
    vectors: np.ndarray


@dataclass
class _KDNode:
    split_dim: int
    split_value: float
    left: "_KDNode | _KDLeaf"
    right: "_KDNode | _KDLeaf"
    box_low: np.ndarray
    box_high: np.ndarray


class KDTree(MetricIndex):
    """Median-split k-d tree for Minkowski metrics.

    Parameters
    ----------
    metric:
        One of the Minkowski-family metrics (L1, L2, L-infinity, general
        L_p, weighted L2).  Anything else is rejected — the box lower
        bound would be unsound.
    leaf_size:
        Maximum items per leaf bucket (default 8).
    """

    def __init__(self, metric: Metric, *, leaf_size: int = 8) -> None:
        super().__init__(metric)
        if not isinstance(
            metric,
            (
                ManhattanDistance,
                EuclideanDistance,
                ChebyshevDistance,
                MinkowskiDistance,
                WeightedEuclideanDistance,
            ),
        ):
            raise IndexingError(
                f"KDTree requires a Minkowski-family metric; got {metric.name}"
            )
        if leaf_size < 1:
            raise IndexingError(f"leaf_size must be >= 1; got {leaf_size}")
        self._leaf_size = leaf_size
        self._root: _KDNode | _KDLeaf | None = None

    # ------------------------------------------------------------------
    # Box lower bound under the configured metric
    # ------------------------------------------------------------------
    # The scalar and batched bounds must agree to the last ulp — a prune
    # decision may not depend on which entry point evaluated it — so both
    # stick to elementwise arithmetic plus last-axis reductions (the same
    # rules the metric kernels follow; BLAS-backed ``linalg.norm``
    # accumulates differently for one vector than for a matrix of them).
    def _box_lower_bound(
        self, query: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> float:
        excess = np.maximum(np.maximum(low - query, query - high), 0.0)
        metric = self._metric
        if isinstance(metric, ManhattanDistance):
            return float(excess.sum())
        if isinstance(metric, EuclideanDistance):
            return float(np.sqrt((excess * excess).sum()))
        if isinstance(metric, ChebyshevDistance):
            return float(excess.max())
        if isinstance(metric, WeightedEuclideanDistance):
            return float(np.sqrt(np.sum(metric.weights * excess * excess)))
        assert isinstance(metric, MinkowskiDistance)
        return float(np.sum(excess**metric.p) ** (1.0 / metric.p))

    def _box_lower_bound_batch(
        self, queries: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """:meth:`_box_lower_bound` for a query matrix, row-identical."""
        excess = np.maximum(np.maximum(low[None, :] - queries, queries - high[None, :]), 0.0)
        metric = self._metric
        if isinstance(metric, ManhattanDistance):
            return excess.sum(axis=1)
        if isinstance(metric, EuclideanDistance):
            return np.sqrt((excess * excess).sum(axis=1))
        if isinstance(metric, ChebyshevDistance):
            return excess.max(axis=1)
        if isinstance(metric, WeightedEuclideanDistance):
            return np.sqrt(np.sum(metric.weights * excess * excess, axis=1))
        assert isinstance(metric, MinkowskiDistance)
        return np.sum(excess**metric.p, axis=1) ** (1.0 / metric.p)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        self._root = self._build_node(list(ids), vectors, depth=0)

    def _build_node(
        self, ids: list[int], vectors: np.ndarray, depth: int
    ) -> "_KDNode | _KDLeaf":
        stats = self._build_stats
        stats.depth = max(stats.depth, depth)
        if len(ids) <= self._leaf_size:
            stats.n_leaves += 1
            # Contiguous block: leaf scans are single kernel passes.
            return _KDLeaf(ids, np.ascontiguousarray(vectors))

        box_low = vectors.min(axis=0)
        box_high = vectors.max(axis=0)
        spreads = box_high - box_low
        split_dim = int(np.argmax(spreads))
        if spreads[split_dim] <= 0.0:
            # All points identical: no split possible.
            stats.n_leaves += 1
            return _KDLeaf(ids, np.ascontiguousarray(vectors))

        column = vectors[:, split_dim]
        split_value = float(np.median(column))
        left_mask = column <= split_value
        if left_mask.all() or not left_mask.any():
            # Median equals the maximum (heavy ties): split strictly below.
            left_mask = column < split_value
            if not left_mask.any():
                stats.n_leaves += 1
                return _KDLeaf(ids, np.ascontiguousarray(vectors))

        stats.n_nodes += 1
        right_mask = ~left_mask
        return _KDNode(
            split_dim=split_dim,
            split_value=split_value,
            left=self._build_node(
                [i for i, keep in zip(ids, left_mask) if keep],
                vectors[left_mask],
                depth + 1,
            ),
            right=self._build_node(
                [i for i, keep in zip(ids, right_mask) if keep],
                vectors[right_mask],
                depth + 1,
            ),
            box_low=box_low,
            box_high=box_high,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        result: list[Neighbor] = []

        def visit(node: "_KDNode | _KDLeaf") -> None:
            if isinstance(node, _KDLeaf):
                self._search_stats.leaves_visited += 1
                # One kernel pass over the leaf block + vectorized filter.
                distances = self._dist_batch(query, node.vectors)
                for row in np.flatnonzero(distances <= radius):
                    result.append(Neighbor(node.ids[row], float(distances[row])))
                return
            self._search_stats.nodes_visited += 1
            for child in (node.left, node.right):
                bound = self._child_bound(child, query)
                if bound <= radius:
                    visit(child)
                else:
                    self._search_stats.nodes_pruned += 1

        if self._root is not None:
            visit(self._root)
        return result

    def _child_bound(self, child: "_KDNode | _KDLeaf", query: np.ndarray) -> float:
        if isinstance(child, _KDNode):
            return self._box_lower_bound(query, child.box_low, child.box_high)
        if child.vectors.shape[0] == 0:
            return np.inf
        return self._box_lower_bound(
            query, child.vectors.min(axis=0), child.vectors.max(axis=0)
        )

    def _child_bound_batch(
        self, child: "_KDNode | _KDLeaf", queries: np.ndarray
    ) -> np.ndarray:
        if isinstance(child, _KDNode):
            return self._box_lower_bound_batch(queries, child.box_low, child.box_high)
        if child.vectors.shape[0] == 0:
            return np.full(queries.shape[0], np.inf)
        return self._box_lower_bound_batch(
            queries, child.vectors.min(axis=0), child.vectors.max(axis=0)
        )

    # ------------------------------------------------------------------
    # Shared batched range traversal
    # ------------------------------------------------------------------
    # Range mode is order-independent, so one walk serves the whole query
    # batch: each child's box lower bound is evaluated for every active
    # query in one vectorized computation (box bounds are coordinate
    # arithmetic, not counted distance computations), and each leaf block
    # is one kernel pass per surviving query.  Per query the visited
    # nodes, prune decisions, and counters are exactly the scalar path's.
    # k-NN keeps the per-query loop: its best-first pop order and prune
    # tests depend on the query's own shrinking tau.
    def _range_search_batch(
        self, queries: np.ndarray, radius: float
    ) -> list[list[Neighbor]]:
        n_queries = queries.shape[0]
        results: list[list[Neighbor]] = [[] for _ in range(n_queries)]
        stats = [SearchStats() for _ in range(n_queries)]

        def visit(node: "_KDNode | _KDLeaf", rows: list[int]) -> None:
            if not rows:
                return
            if isinstance(node, _KDLeaf):
                for qi in rows:
                    st = stats[qi]
                    st.leaves_visited += 1
                    st.distance_computations += node.vectors.shape[0]
                    distances = self._metric.distance_batch(
                        queries[qi], node.vectors
                    )
                    for row in np.flatnonzero(distances <= radius):
                        results[qi].append(
                            Neighbor(node.ids[row], float(distances[row]))
                        )
                return
            for qi in rows:
                stats[qi].nodes_visited += 1
            active = queries[rows]
            for child in (node.left, node.right):
                bounds = self._child_bound_batch(child, active).tolist()
                survivors: list[int] = []
                for qi, bound in zip(rows, bounds):
                    if bound <= radius:
                        survivors.append(qi)
                    else:
                        stats[qi].nodes_pruned += 1
                visit(child, survivors)

        if self._root is not None:
            visit(self._root, list(range(n_queries)))
        return self._finish_batch(results, stats)

    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        best: list[tuple[float, int]] = []

        def tau() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def offer(item_id: int, d: float) -> None:
            # (-d, -id): the max-heap then evicts the larger id among
            # equal-distance entries, matching the documented tie-break.
            entry = (-d, -item_id)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)

        counter = itertools.count()
        frontier: list[tuple[float, int, "_KDNode | _KDLeaf"]] = []
        if self._root is not None:
            heapq.heappush(frontier, (0.0, next(counter), self._root))

        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > tau():
                self._search_stats.nodes_pruned += 1
                continue
            if isinstance(node, _KDLeaf):
                self._search_stats.leaves_visited += 1
                # One kernel pass over the leaf block.
                for item_id, d in zip(
                    node.ids, self._dist_batch(query, node.vectors).tolist()
                ):
                    offer(item_id, d)
                continue
            self._search_stats.nodes_visited += 1
            for child in (node.left, node.right):
                child_bound = self._child_bound(child, query)
                if child_bound <= tau():
                    heapq.heappush(frontier, (child_bound, next(counter), child))
                else:
                    self._search_stats.nodes_pruned += 1

        return [Neighbor(-neg_id, -neg_d) for neg_d, neg_id in best]
