"""Instrumentation for index builds and searches.

The evaluation's primary cost unit is the **distance computation**: in the
reproduced system feature vectors lived on disk, so each distance
evaluation implied a page fetch, and CPU time was secondary.  Every index
therefore fills in a :class:`SearchStats` per query and a
:class:`BuildStats` per construction, and the test suite cross-checks the
distance counts against an externally wrapped counting metric — the
numbers in the result tables are measured, not estimated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SearchStats", "BuildStats"]


@dataclass
class SearchStats:
    """Counters accumulated while answering one query.

    Attributes
    ----------
    distance_computations:
        Metric evaluations performed (pivots and leaf items alike).
    nodes_visited:
        Internal tree nodes expanded.
    nodes_pruned:
        Subtrees discarded via the triangle inequality without visiting.
    leaves_visited:
        Leaf buckets whose contents were examined.
    items_included_wholesale:
        Items reported *without* a distance computation because their
        whole cluster provably lies inside the query ball (the Antipole
        tree's inclusion-side use of the triangle inequality).
    """

    distance_computations: int = 0
    nodes_visited: int = 0
    nodes_pruned: int = 0
    leaves_visited: int = 0
    items_included_wholesale: int = 0

    def __add__(self, other: "SearchStats") -> "SearchStats":
        return SearchStats(
            self.distance_computations + other.distance_computations,
            self.nodes_visited + other.nodes_visited,
            self.nodes_pruned + other.nodes_pruned,
            self.leaves_visited + other.leaves_visited,
            self.items_included_wholesale + other.items_included_wholesale,
        )

    def merge(self, other: "SearchStats") -> None:
        """In-place accumulation (used when averaging over a workload)."""
        self.distance_computations += other.distance_computations
        self.nodes_visited += other.nodes_visited
        self.nodes_pruned += other.nodes_pruned
        self.leaves_visited += other.leaves_visited
        self.items_included_wholesale += other.items_included_wholesale


@dataclass
class BuildStats:
    """Counters describing one index construction.

    ``depth`` is the longest root-to-leaf path; ``n_nodes`` counts internal
    nodes and ``n_leaves`` leaf buckets.
    """

    distance_computations: int = 0
    n_nodes: int = 0
    n_leaves: int = 0
    depth: int = 0
    extra: dict = field(default_factory=dict)
