"""The GNAT — geometric near-neighbor access tree (Brin, VLDB 1995).

Where the VP-tree splits two ways around one pivot, the GNAT splits
*m* ways around m *split points* per node and compensates for the extra
build cost with much richer pruning information: every node stores, for
each ordered pair of split points ``(i, j)``, the exact interval
``[low, high]`` of distances from split point ``i`` to the members of
subtree ``j``.  One query-to-split-point distance then prunes with *m*
triangle-inequality tests instead of one:

    if ``[d(q, p_i) - r, d(q, p_i) + r]`` misses ``range[i][j]``,
    subtree ``j`` cannot contain an answer.

Split points are chosen greedily max-min ("spread out"): the first at
random, each next one maximizing its minimum distance to those already
chosen — the same heuristic Brin used, which tends to pick points near
mutually distant cluster centers.

Range search follows the paper; k-NN search (which the paper left open)
is the natural best-first extension: children are visited in order of
the strongest available lower bound, with the bound re-checked against
the shrinking candidate radius before each expansion.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import IndexingError
from repro.index.base import MetricIndex, Neighbor
from repro.index.pivot import anchor_distances
from repro.index.stats import SearchStats
from repro.metrics.base import Metric

__all__ = ["GNAT", "greedy_maxmin_rows"]


def greedy_maxmin_rows(
    vectors: np.ndarray,
    count: int,
    dist,
    rng: np.random.Generator,
    *,
    dist_batch=None,
) -> list[int]:
    """Pick ``count`` well-spread row indices by greedy max-min selection.

    The first row is random; each subsequent row maximizes its minimum
    distance to the rows already picked.  Costs ``count * n`` distance
    evaluations through ``dist`` — or one batched kernel pass per sweep
    when the caller supplies its counted ``dist_batch``.
    """
    n = vectors.shape[0]
    if count > n:
        raise IndexingError(f"cannot pick {count} split points from {n} items")

    def sweep(anchor_row: int) -> np.ndarray:
        return anchor_distances(vectors[anchor_row], vectors, dist, dist_batch)

    first = int(rng.integers(n))
    chosen = [first]
    min_dist = sweep(first)
    while len(chosen) < count:
        candidate = int(np.argmax(min_dist))
        if min_dist[candidate] == 0.0 and n > len(chosen):
            # All remaining points coincide with chosen ones; any row not
            # yet chosen keeps the selection well-defined.
            remaining = [row for row in range(n) if row not in chosen]
            candidate = remaining[0]
        chosen.append(candidate)
        min_dist = np.minimum(min_dist, sweep(candidate))
    return chosen


@dataclass
class _LeafNode:
    ids: list[int]
    vectors: np.ndarray


@dataclass
class _InnerNode:
    split_ids: list[int]
    split_vectors: np.ndarray
    children: list["_InnerNode | _LeafNode | None"]
    #: ``low[i, j]`` / ``high[i, j]``: distance interval from split point
    #: i to everything stored under child j (including split point j).
    low: np.ndarray = field(default_factory=lambda: np.empty(0))
    high: np.ndarray = field(default_factory=lambda: np.empty(0))


class GNAT(MetricIndex):
    """Geometric near-neighbor access tree over an arbitrary metric.

    Parameters
    ----------
    metric:
        Any true metric.
    degree:
        Split points (and children) per internal node, default 8.
    leaf_size:
        Item sets of at most this size become leaf buckets (default:
        ``degree``, so a node always has enough items for its splits).
    seed:
        Seed for the random choice of the first split point.
    """

    def __init__(
        self,
        metric: Metric,
        *,
        degree: int = 8,
        leaf_size: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(metric)
        if degree < 2:
            raise IndexingError(f"degree must be >= 2; got {degree}")
        leaf_size = degree if leaf_size is None else leaf_size
        if leaf_size < degree:
            raise IndexingError(
                f"leaf_size must be >= degree ({degree}); got {leaf_size}"
            )
        self._degree = degree
        self._leaf_size = leaf_size
        self._seed = seed
        self._root: _InnerNode | _LeafNode | None = None

    @property
    def degree(self) -> int:
        """Split points per internal node."""
        return self._degree

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: Sequence[int], vectors: np.ndarray) -> None:
        rng = np.random.default_rng(self._seed)
        self._root = self._build_node(list(ids), vectors, rng, depth=0)

    def _build_node(
        self, ids: list[int], vectors: np.ndarray, rng: np.random.Generator, depth: int
    ) -> "_InnerNode | _LeafNode":
        stats = self._build_stats
        stats.depth = max(stats.depth, depth)
        if len(ids) <= self._leaf_size:
            stats.n_leaves += 1
            # Contiguous block: leaf scans are single kernel passes.
            return _LeafNode(ids, np.ascontiguousarray(vectors))
        stats.n_nodes += 1

        m = min(self._degree, len(ids))
        split_rows = greedy_maxmin_rows(
            vectors, m, self._build_dist, rng, dist_batch=self._build_dist_batch
        )
        split_ids = [ids[row] for row in split_rows]
        split_vectors = np.ascontiguousarray(vectors[split_rows])

        # Assign every non-split item to its nearest split point, keeping
        # the distances: they seed the range tables for free.  The whole
        # (m, rest) distance matrix is m batched sweeps instead of one
        # interpreted call per (split point, item) pair.
        rest_rows = [row for row in range(len(ids)) if row not in set(split_rows)]
        rest_block = np.ascontiguousarray(vectors[rest_rows])
        distance_matrix = np.empty((m, len(rest_rows)))
        for i in range(m):
            distance_matrix[i] = self._build_dist_batch(split_vectors[i], rest_block)

        low = np.full((m, m), np.inf)
        high = np.zeros((m, m))
        buckets: list[list[int]] = [[] for _ in range(m)]
        owners = (
            np.argmin(distance_matrix, axis=0)
            if rest_rows
            else np.empty(0, dtype=int)
        )
        for owner in range(m):
            columns = np.flatnonzero(owners == owner)
            if columns.size:
                low[:, owner] = distance_matrix[:, columns].min(axis=1)
                high[:, owner] = distance_matrix[:, columns].max(axis=1)
            buckets[owner] = [rest_rows[column] for column in columns]

        # Each child's interval must also cover its own split point.
        for i in range(m):
            pair_distances = self._build_dist_batch(split_vectors[i], split_vectors)
            low[i] = np.minimum(low[i], pair_distances)
            high[i] = np.maximum(high[i], pair_distances)

        children: list[_InnerNode | _LeafNode | None] = []
        for owner, bucket in enumerate(buckets):
            if not bucket:
                children.append(None)
                continue
            children.append(
                self._build_node(
                    [ids[row] for row in bucket], vectors[bucket], rng, depth + 1
                )
            )
        return _InnerNode(split_ids, split_vectors, children, low, high)

    # ------------------------------------------------------------------
    # Range search
    # ------------------------------------------------------------------
    def _range_search(self, query: np.ndarray, radius: float) -> list[Neighbor]:
        result: list[Neighbor] = []
        self._range_visit(self._root, query, radius, result)
        return result

    def _range_visit(
        self,
        node: "_InnerNode | _LeafNode | None",
        query: np.ndarray,
        radius: float,
        result: list[Neighbor],
    ) -> None:
        if node is None:
            return
        if isinstance(node, _LeafNode):
            self._search_stats.leaves_visited += 1
            # One kernel pass over the leaf block + a vectorized filter.
            distances = self._dist_batch(query, node.vectors)
            for row in np.flatnonzero(distances <= radius):
                result.append(Neighbor(node.ids[row], float(distances[row])))
            return

        self._search_stats.nodes_visited += 1
        m = len(node.split_ids)
        alive = np.ones(m, dtype=bool)
        for i in range(m):
            if not alive[i]:
                continue
            d = self._dist(query, node.split_vectors[i])
            if d <= radius:
                result.append(Neighbor(node.split_ids[i], d))
            # One computed distance kills every child whose interval from
            # split point i misses the query annulus.
            for j in range(m):
                if j == i or not alive[j]:
                    continue
                if d - radius > node.high[i, j] or d + radius < node.low[i, j]:
                    alive[j] = False
                    if node.children[j] is not None:
                        self._search_stats.nodes_pruned += 1
        for j in range(m):
            if alive[j]:
                self._range_visit(node.children[j], query, radius, result)

    # ------------------------------------------------------------------
    # Shared batched range traversal
    # ------------------------------------------------------------------
    # One walk of the tree serves the whole query batch.  Range search is
    # order-independent *across* queries but not across split points: the
    # scalar loop examines split points in index order precisely so an
    # early distance can kill later split points before they are
    # evaluated.  The shared traversal keeps that order and shares the
    # kernel call the other way around: split point ``i`` is evaluated
    # against every query that still has ``i`` alive in one
    # ``distance_batch`` call (operand order flipped — the bitwise
    # symmetry the parity suite pins), then each query applies its own
    # range-table kills.  Per query, the evaluated split points, the
    # prune decisions, and the child visit order are exactly the scalar
    # path's, so results and per-query counters are bit-identical.
    def _range_search_batch(
        self, queries: np.ndarray, radius: float
    ) -> list[list[Neighbor]]:
        n_queries = queries.shape[0]
        results: list[list[Neighbor]] = [[] for _ in range(n_queries)]
        stats = [SearchStats() for _ in range(n_queries)]

        def visit(node: "_InnerNode | _LeafNode | None", rows: list[int]) -> None:
            if node is None or not rows:
                return
            if isinstance(node, _LeafNode):
                for qi in rows:
                    st = stats[qi]
                    st.leaves_visited += 1
                    st.distance_computations += node.vectors.shape[0]
                    distances = self._metric.distance_batch(
                        queries[qi], node.vectors
                    )
                    for row in np.flatnonzero(distances <= radius):
                        results[qi].append(
                            Neighbor(node.ids[row], float(distances[row]))
                        )
                return

            m = len(node.split_ids)
            has_child = np.array(
                [child is not None for child in node.children], dtype=bool
            )
            alive = {qi: np.ones(m, dtype=bool) for qi in rows}
            for qi in rows:
                stats[qi].nodes_visited += 1
            for i in range(m):
                active = [qi for qi in rows if alive[qi][i]]
                if not active:
                    continue
                split_distances = self._metric.distance_batch(
                    node.split_vectors[i], queries[active]
                ).tolist()
                for qi, d in zip(active, split_distances):
                    st = stats[qi]
                    st.distance_computations += 1
                    if d <= radius:
                        results[qi].append(Neighbor(node.split_ids[i], d))
                    row_alive = alive[qi]
                    killed = (d - radius > node.high[i]) | (
                        d + radius < node.low[i]
                    )
                    killed[i] = False
                    killed &= row_alive
                    if killed.any():
                        row_alive[killed] = False
                        st.nodes_pruned += int(has_child[killed].sum())
            for j in range(m):
                visit(
                    node.children[j], [qi for qi in rows if alive[qi][j]]
                )

        visit(self._root, list(range(n_queries)))
        return self._finish_batch(results, stats)

    # ------------------------------------------------------------------
    # k-NN search
    # ------------------------------------------------------------------
    def _knn_search(self, query: np.ndarray, k: int) -> list[Neighbor]:
        best: list[tuple[float, int]] = []  # max-heap as (-distance, id)
        tiebreak = itertools.count()
        queue: list[tuple[float, int, object]] = [(0.0, next(tiebreak), self._root)]

        def tau() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def offer(item_id: int, d: float) -> None:
            # (-d, -id): the max-heap then evicts the larger id among
            # equal-distance entries, matching the documented tie-break.
            entry = (-d, -item_id)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)

        while queue:
            bound, _, node = heapq.heappop(queue)
            if node is None:
                continue
            if bound > tau():
                self._search_stats.nodes_pruned += 1
                continue
            if isinstance(node, _LeafNode):
                self._search_stats.leaves_visited += 1
                # One kernel pass over the leaf block.
                for item_id, d in zip(
                    node.ids, self._dist_batch(query, node.vectors).tolist()
                ):
                    offer(item_id, d)
                continue

            self._search_stats.nodes_visited += 1
            m = len(node.split_ids)
            lower = np.zeros(m)
            # Every split point's distance is needed (the scalar loop had
            # no short-circuit), so all m are one batched evaluation.
            split_distances = self._dist_batch(query, node.split_vectors).tolist()
            for i, d in enumerate(split_distances):
                offer(node.split_ids[i], d)
                lower = np.maximum(
                    lower, np.maximum(node.low[i] - d, d - node.high[i])
                )
            for j in range(m):
                if node.children[j] is None:
                    continue
                child_bound = max(float(lower[j]), 0.0)
                if child_bound <= tau():
                    heapq.heappush(
                        queue, (child_bound, next(tiebreak), node.children[j])
                    )
                else:
                    self._search_stats.nodes_pruned += 1

        return [Neighbor(-neg_id, -neg_d) for neg_d, neg_id in best]
