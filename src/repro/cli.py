"""Command-line interface: a content-based image database on real files.

The library's public API is Python-first, but the system the paper
describes was an end-user tool: point it at a directory of pictures,
build an index, query by example.  This module is that tool::

    python -m repro demo  corpus/            # write a synthetic PPM corpus
    python -m repro build corpus/ --db my.db # extract features + save
    python -m repro info  --db my.db         # what's inside
    python -m repro query corpus/red_scenes/red_scenes_000.ppm --db my.db -k 5
    python -m repro query-batch corpus/red_scenes/ --db my.db -k 5
    python -m repro serve --db my.db --port 8753  # HTTP query service

Images are read with the library's own codecs (PPM/PGM/BMP — the
formats a 1994 system would have spoken); each image's *label* is the
name of the directory it sits in, which makes retrieval quality
immediately eyeballable on the demo corpus.

The CLI is deliberately a thin shell over the public API — every
subcommand body is the few lines a reader would write themselves, so it
doubles as executable documentation.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.db.database import ImageDatabase
from repro.errors import ReproError
from repro.eval.harness import ascii_table
from repro.features.pipeline import FeatureSchema, default_schema
from repro.image.core import Image
from repro.image.io_bmp import read_bmp, write_bmp
from repro.image.io_ppm import read_ppm, write_ppm

__all__ = ["main", "read_image_file", "iter_image_files"]

#: File extensions the CLI recognizes, mapped to their readers.
_READERS = {
    ".ppm": read_ppm,
    ".pgm": read_ppm,  # the PPM reader handles both P2/P3 and P5/P6
    ".bmp": read_bmp,
}


def read_image_file(path: str | Path) -> Image:
    """Read one image file using the library's own codecs.

    Raises
    ------
    ReproError
        If the extension is not one of .ppm/.pgm/.bmp.
    """
    path = Path(path)
    reader = _READERS.get(path.suffix.lower())
    if reader is None:
        raise ReproError(
            f"unsupported image file {path.name!r} "
            f"(supported: {sorted(_READERS)})"
        )
    return reader(path)


def iter_image_files(root: str | Path) -> list[tuple[Path, str]]:
    """All recognized image files under ``root``, with directory labels.

    Returns ``(path, label)`` pairs sorted by path; the label is the
    immediate parent directory's name ('' for files directly in root).
    """
    root = Path(root)
    if not root.is_dir():
        raise ReproError(f"{root} is not a directory")
    found = [
        path
        for path in sorted(root.rglob("*"))
        if path.is_file() and path.suffix.lower() in _READERS
    ]
    return [
        (path, path.parent.name if path.parent != root else "")
        for path in found
    ]


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.eval.datasets import CORPUS_CLASS_NAMES, make_class_image

    out = Path(args.directory)
    rng = np.random.default_rng(args.seed)
    written = 0
    for label in CORPUS_CLASS_NAMES:
        class_dir = out / label
        class_dir.mkdir(parents=True, exist_ok=True)
        for index in range(args.per_class):
            image = make_class_image(label, rng, size=args.size)
            name = f"{label}_{index:03d}"
            if args.format == "bmp":
                write_bmp(image, class_dir / f"{name}.bmp")
            else:
                write_ppm(image, class_dir / f"{name}.ppm")
            written += 1
    print(f"wrote {written} images ({len(CORPUS_CLASS_NAMES)} classes) to {out}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    files = iter_image_files(args.directory)
    if not files:
        print(f"no images found under {args.directory}", file=sys.stderr)
        return 1
    schema = _make_schema(args.working_size)
    db = ImageDatabase(schema)
    started = time.perf_counter()
    for path, label in files:
        db.add_image(
            read_image_file(path), label=label or None, name=str(path)
        )
    extract_seconds = time.perf_counter() - started
    db.build_indexes()
    db.save(args.db)
    print(
        f"indexed {len(db)} images ({len(schema)} features, "
        f"{schema.total_dim()} dims/image) in {extract_seconds:.1f}s -> {args.db}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    db = _load(args)
    labels: dict[str, int] = {}
    for image_id in db.catalog.ids:
        label = db.catalog.get(image_id).label or "(unlabelled)"
        labels[label] = labels.get(label, 0) + 1
    rows = [[label, count] for label, count in sorted(labels.items())]
    print(ascii_table(["label", "images"], rows, title=f"database {args.db}"))
    print(f"\nfeatures: {', '.join(db.schema.names)}")
    print(f"total signature dims/image: {db.schema.total_dim()}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    db = _load(args)
    query = read_image_file(args.image)
    feature = args.feature or db.default_feature
    started = time.perf_counter()
    results = db.query(query, k=args.k, feature=feature)
    elapsed = (time.perf_counter() - started) * 1e3
    rows = [
        [r.record.name, r.record.label or "-", r.distance] for r in results
    ]
    print(
        ascii_table(
            ["image", "label", "distance"],
            rows,
            title=f"top-{args.k} by {feature} for {args.image}",
        )
    )
    stats = db.index_for(feature).last_stats
    print(
        f"\n{elapsed:.1f} ms; {stats.distance_computations} distance "
        f"computations of {len(db)} stored images "
        f"({stats.nodes_pruned} subtrees pruned)"
    )
    return 0


def _cmd_query_batch(args: argparse.Namespace) -> int:
    db = _load(args)
    paths: list[Path] = []
    for target in args.images:
        path = Path(target)
        if path.is_dir():
            paths.extend(found for found, _label in iter_image_files(path))
        else:
            paths.append(path)
    if not paths:
        print("no query images found", file=sys.stderr)
        return 1
    images = [read_image_file(path) for path in paths]
    feature = args.feature or db.default_feature

    started = time.perf_counter()
    batches = db.query_batch(images, k=args.k, feature=feature)
    elapsed = time.perf_counter() - started

    rows = []
    for path, results in zip(paths, batches):
        best = results[0]
        rows.append([path.name, best.record.label or "-", best.record.name, best.distance])
    print(
        ascii_table(
            ["query", "best label", "best match", "distance"],
            rows,
            title=f"best of top-{args.k} by {feature} for {len(paths)} queries",
        )
    )
    stats = db.index_for(feature).last_stats
    print(
        f"\n{len(paths)} queries in {elapsed * 1e3:.1f} ms "
        f"({len(paths) / elapsed:.0f} queries/s, batched engine); "
        f"{stats.distance_computations} distance computations total"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve.http import QueryServer

    db = _load(args)
    journal_set = None
    if args.journal:
        from repro.db.recovery import open_serving_root

        # Recover-or-seed the durable root: replay the write-ahead
        # journal onto the last snapshot (or seed from --db on an empty
        # root), then compact so the service starts with a fresh
        # snapshot and empty logs.  See docs/durability.md.
        db, journal_set, report = open_serving_root(
            Path(args.journal), db, n_shards=args.shards
        )
        if report is not None:
            print(report.summary(), flush=True)
    if args.shards == 1:
        db.build_indexes()  # pay the lazy builds before the first request
    access_log = None
    if args.access_log:
        from repro.serve.logsys import StructuredLog

        access_log = StructuredLog(sample_every=args.access_log_sample)
    server = QueryServer(
        db,
        host=args.host,
        port=args.port,
        access_log=access_log,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        cache_size=args.cache_size,
        shards=args.shards,
        rate_limit_qps=args.rate_limit,
        journal=journal_set,
        trace_depth=args.trace_depth,
        slow_query_ms=args.slow_ms,
    )
    host, port = server.address
    print(
        f"serving {len(db)} images on http://{host}:{port} "
        f"(features: {', '.join(db.schema.names)}; shards={args.shards}, "
        f"max_batch={args.max_batch}, max_wait_ms={args.max_wait_ms:g}, "
        f"cache_size={args.cache_size}, "
        f"backend={db.backend_info()['name']}"
        + (f", rate_limit={args.rate_limit:g}/s" if args.rate_limit else "")
        + (f", journal={args.journal}" if args.journal else "")
        + (
            f", tracing={args.trace_depth} traces/slow>{args.slow_ms:g}ms"
            if args.trace_depth
            else ", tracing=off"
        )
        + (", access_log=on" if access_log else "")
        + ")",
        flush=True,
    )

    # SIGTERM (CI, process managers) and Ctrl-C both exit cleanly: break
    # out of the serving loop, settle the scheduler, report what was
    # served.  (Raising is the signal-safe way out — calling shutdown()
    # from the serving thread itself would deadlock.)  SIGTERM is the
    # graceful-shutdown path: the in-flight batch completes and its
    # mutations reach the journal, but the queued backlog fails fast
    # with HTTP 503 ("shutting_down") instead of delaying termination.
    drain = {"requests": True}

    def _terminate(*_: object) -> None:
        drain["requests"] = False
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop(drain=drain["requests"])
        stats = server.scheduler.stats()
        print(
            f"\nserved {stats.completed} requests "
            f"({stats.throughput_qps:.1f} q/s, mean batch "
            f"{stats.mean_batch_size:.1f}, cache hit rate "
            f"{stats.cache_hit_rate:.0%}); shutdown clean",
            flush=True,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.serve.client import ServiceClient
    from repro.serve.trace import format_trace

    client = ServiceClient(args.host, args.port)
    if args.id:
        print(format_trace(client.debug_trace(args.id)))
        return 0
    if args.slow:
        payload = client.debug_slow()
        threshold = payload.get("threshold_ms")
        print(
            f"slow-query log (threshold "
            f"{threshold:g} ms, {payload.get('captured', 0)} captured)"
            if threshold is not None
            else "slow-query log (disabled)"
        )
        for trace in payload.get("traces", [])[: args.limit]:
            print()
            print(format_trace(trace))
        return 0
    payload = client.debug_traces()
    if not payload.get("enabled", False):
        print("tracing is off (server started with --trace-depth 0)")
        return 0
    summaries = payload.get("traces", [])[: args.limit]
    rows = [
        [
            summary["trace_id"],
            summary["route"],
            summary["status"],
            f"{summary['latency_ms']:.2f}",
            summary["n_spans"],
        ]
        for summary in summaries
    ]
    print(
        ascii_table(
            ["trace id", "route", "status", "latency ms", "spans"],
            rows,
            title=f"flight recorder: newest {len(summaries)} of "
            f"{payload.get('recorded', 0)} recorded",
        )
    )
    print("\ninspect one: repro trace --id <trace_id>")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.db.recovery import recover

    schema = _make_schema(args.working_size)
    db, report = recover(Path(args.journal), schema, repair=not args.no_repair)
    print(report.summary())
    if args.export:
        db.save(args.export)
        print(f"exported {len(db)} images to {args.export}")
    if args.compact:
        from repro.db.journal import JournalSet
        from repro.db.recovery import compact, database_fingerprint

        n_shards = max(1, len(JournalSet.existing_paths(Path(args.journal))))
        journals = JournalSet(
            Path(args.journal), database_fingerprint(db), n_shards=n_shards
        )
        try:
            snapshot = compact(journals, db)
        finally:
            journals.close()
        print(f"compacted into {snapshot} (journals reset)")
    return 0


def _make_schema(working_size: int) -> FeatureSchema:
    return default_schema(working_size=working_size)


def _load(args: argparse.Namespace) -> ImageDatabase:
    backend = getattr(args, "backend", None)
    cache_pages = getattr(args, "cache_pages", None)
    if backend is not None or cache_pages is not None:
        from repro.db.backend import resolve_backend_factory

        # Resolve here so --cache-pages reaches the factory; shard views
        # share the resolved object (and its pool counters).
        backend = resolve_backend_factory(backend, cache_pages=cache_pages)
    return ImageDatabase.load(
        args.db, _make_schema(args.working_size), backend=backend
    )


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-based image indexing (VLDB 1994 reproduction).",
    )
    parser.add_argument(
        "--working-size",
        type=int,
        default=64,
        help="square size images are resampled to before feature "
        "extraction (must match between build and query; default 64)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser(
        "demo", help="write a labelled synthetic corpus as PPM/BMP files"
    )
    demo.add_argument("directory", help="output directory (one subdir per class)")
    demo.add_argument("--per-class", type=int, default=8)
    demo.add_argument("--size", type=int, default=64, help="image side in pixels")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--format", choices=("ppm", "bmp"), default="ppm")
    demo.set_defaults(handler=_cmd_demo)

    build = commands.add_parser(
        "build", help="extract features from an image directory and save a database"
    )
    build.add_argument("directory", help="directory scanned recursively for images")
    build.add_argument("--db", required=True, help="output database directory")
    build.set_defaults(handler=_cmd_build)

    info = commands.add_parser("info", help="summarize a saved database")
    info.add_argument("--db", required=True)
    info.set_defaults(handler=_cmd_info)

    query = commands.add_parser("query", help="query a database by example image")
    query.add_argument("image", help="query image file (.ppm/.pgm/.bmp)")
    query.add_argument("--db", required=True)
    query.add_argument("-k", type=int, default=10)
    query.add_argument(
        "--feature", default=None, help="feature to search (default: schema's first)"
    )
    query.set_defaults(handler=_cmd_query)

    query_batch = commands.add_parser(
        "query-batch",
        help="query a database with many example images in one batched pass",
    )
    query_batch.add_argument(
        "images",
        nargs="+",
        help="query image files and/or directories (scanned recursively)",
    )
    query_batch.add_argument("--db", required=True)
    query_batch.add_argument("-k", type=int, default=5)
    query_batch.add_argument(
        "--feature", default=None, help="feature to search (default: schema's first)"
    )
    query_batch.set_defaults(handler=_cmd_query_batch)

    serve = commands.add_parser(
        "serve",
        help="serve a database over HTTP with micro-batch coalescing "
        "(POST /query, POST /range, POST /add, POST /remove, "
        "POST /save, GET /stats, GET /metrics, GET /healthz, "
        "GET /debug/traces|trace|slow)",
        epilog="The service mutates in place: POST /add and POST /remove "
        "serialize with query batches and cached results are "
        "generation-stamped, so a stale answer is never served. "
        "With --shards N the item set is partitioned by id hash into N "
        "independent shard views queried in parallel and merged exactly "
        "— results stay bit-identical to --shards 1. "
        "With --journal DIR every acknowledged mutation is durable: "
        "mutations are written to a checksummed write-ahead log before "
        "their futures resolve, startup replays the log onto the last "
        "atomic snapshot (kill -9 loses nothing acknowledged), and "
        "POST /save compacts online (docs/durability.md). "
        "On SIGTERM the in-flight batch completes and queued requests "
        "fail fast with HTTP 503; Ctrl-C drains fully. Both print a "
        "traffic summary and exit with code 0. "
        "Full protocol and knob semantics: docs/serving.md "
        "(mutation design: docs/mutability.md).",
    )
    serve.add_argument("--db", required=True, help="saved database directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8753,
        help="listen port (0 picks a free port, printed at startup)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="largest coalesced batch per engine call (default 32)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="longest a request waits for batch company (default 2.0)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="LRU result-cache entries; 0 disables (default 1024)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the item set into N scatter-gather shards "
        "queried in parallel; results stay bit-identical (default 1)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="QPS",
        help="token-bucket admission limit in requests/s; throttled "
        "submissions get HTTP 429 (default: unlimited)",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="durable serving root: write-ahead journal + atomic "
        "snapshots; on restart the journal is replayed onto the last "
        "snapshot, so acknowledged mutations survive kill -9 "
        "(default: in-memory only)",
    )
    serve.add_argument(
        "--trace-depth",
        type=int,
        default=256,
        metavar="N",
        help="flight-recorder capacity: the newest N request traces are "
        "kept for GET /debug/traces and repro trace; 0 disables "
        "tracing entirely (default 256)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=100.0,
        metavar="MS",
        help="requests at/above this end-to-end latency are also kept "
        "in the slow-query log (GET /debug/slow; default 100.0)",
    )
    serve.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON line per handled request to "
        "stderr (method, path, status, latency, trace id), sampled "
        "with --access-log-sample and rate-limited",
    )
    serve.add_argument(
        "--access-log-sample",
        type=int,
        default=1,
        metavar="N",
        help="with --access-log, keep 1 request line in N (default 1)",
    )
    serve.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help="vector storage backend: 'memory' (default) or 'mmap' / "
        "'mmap:ROOT' to page index cores through a bounded buffer pool "
        "on disk, so databases larger than RAM serve with bounded "
        "resident memory (docs/storage.md; env REPRO_BACKEND)",
    )
    serve.add_argument(
        "--cache-pages",
        type=int,
        default=None,
        metavar="N",
        help="buffer-pool pages per mmap store — the resident-memory "
        "cap; ignored by the memory backend (default 8; env "
        "REPRO_CACHE_PAGES)",
    )
    serve.set_defaults(handler=_cmd_serve)

    trace_cmd = commands.add_parser(
        "trace",
        help="inspect a serving process's request traces "
        "(GET /debug/traces, /debug/trace?id=, /debug/slow)",
        epilog="With no flags, lists the flight recorder's newest traces. "
        "--id renders one trace as a per-stage waterfall (offsets, "
        "durations, per-shard distance computations). --slow renders "
        "the slow-query log. The trace id is returned by every query "
        "response (X-Repro-Trace-Id header and trace_id field). "
        "See docs/observability.md.",
    )
    trace_cmd.add_argument("--host", default="127.0.0.1")
    trace_cmd.add_argument("--port", type=int, default=8753)
    trace_cmd.add_argument(
        "--id", default=None, metavar="TRACE_ID", help="render one trace by id"
    )
    trace_cmd.add_argument(
        "--slow",
        action="store_true",
        help="render the slow-query log instead of the recorder listing",
    )
    trace_cmd.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="most traces to list/render (default 20)",
    )
    trace_cmd.set_defaults(handler=_cmd_trace)

    recover_cmd = commands.add_parser(
        "recover",
        help="replay a durable serving root's write-ahead journal and "
        "report (optionally export or compact) the recovered state",
        epilog="Recovery loads the snapshot the MANIFEST points at and "
        "replays every intact journal record onto it; a torn tail "
        "(interrupted write) is detected by checksum and truncated. "
        "A root written by a different feature configuration is "
        "refused rather than misread. See docs/durability.md.",
    )
    recover_cmd.add_argument(
        "--journal", required=True, metavar="DIR", help="the durable serving root"
    )
    recover_cmd.add_argument(
        "--export",
        default=None,
        metavar="DIR",
        help="save the recovered database to this directory "
        "(loadable with --db)",
    )
    recover_cmd.add_argument(
        "--compact",
        action="store_true",
        help="fold the journal into a fresh snapshot and reset the logs",
    )
    recover_cmd.add_argument(
        "--no-repair",
        action="store_true",
        help="inspect only: leave a detected torn tail on disk",
    )
    recover_cmd.set_defaults(handler=_cmd_recover)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
