"""Hausdorff distance between point sets.

For features that are *sets* (edge-pixel coordinates, dominant-color
palettes) rather than fixed-length vectors, the paper uses the Hausdorff
distance: the farthest any point of one set is from the other set,

    H(A, B) = max( h(A, B), h(B, A) ),
    h(A, B) = max_{a in A} min_{b in B} d(a, b),

with Euclidean point-to-point distance.  It is a true metric on non-empty
compact sets.  The implementation is vectorized over the smaller side and
exact; point sets are modest (edge maps are subsampled upstream).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric

__all__ = ["directed_hausdorff", "hausdorff", "HausdorffDistance"]


def _as_point_set(points: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(points, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2 or array.shape[0] == 0:
        raise MetricError(f"{name}: expected a non-empty (n, d) point set; got {array.shape}")
    return array


def directed_hausdorff(a: np.ndarray, b: np.ndarray) -> float:
    """``h(A, B) = max_a min_b ||a - b||`` (one-sided)."""
    a = _as_point_set(a, "hausdorff")
    b = _as_point_set(b, "hausdorff")
    if a.shape[1] != b.shape[1]:
        raise MetricError(
            f"hausdorff: point dimensionality differs: {a.shape[1]} vs {b.shape[1]}"
        )
    worst = 0.0
    # Chunk over A to bound the (|A| x |B|) intermediate.
    chunk = max(1, 4096 // max(1, b.shape[0]) + 1)
    for start in range(0, a.shape[0], chunk):
        block = a[start : start + chunk]
        deltas = block[:, None, :] - b[None, :, :]
        nearest = np.sqrt((deltas**2).sum(axis=2)).min(axis=1)
        worst = max(worst, float(nearest.max()))
    return worst


def hausdorff(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric Hausdorff distance ``max(h(A,B), h(B,A))``."""
    return max(directed_hausdorff(a, b), directed_hausdorff(b, a))


class HausdorffDistance(Metric):
    """Metric adapter: operands are flattened ``(n*d,)`` point buffers.

    Because the index layer traffics in 1-D vectors, point sets are packed
    as flat arrays with a declared point dimensionality; trailing NaN
    padding (from fixed-size store records) is dropped.

    Parameters
    ----------
    point_dim:
        Dimensionality of each point (2 for pixel coordinates).
    """

    def __init__(self, point_dim: int = 2) -> None:
        if point_dim < 1:
            raise MetricError(f"point_dim must be >= 1; got {point_dim}")
        self._point_dim = point_dim

    @property
    def name(self) -> str:
        return f"hausdorff_{self._point_dim}d"

    def _unpack(self, flat: np.ndarray) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64).ravel()
        flat = flat[~np.isnan(flat)]
        if flat.size == 0 or flat.size % self._point_dim:
            raise MetricError(
                f"hausdorff: buffer of {flat.size} values is not a whole number "
                f"of {self._point_dim}-d points"
            )
        return flat.reshape(-1, self._point_dim)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return hausdorff(self._unpack(a), self._unpack(b))
