"""Hausdorff distance between point sets.

For features that are *sets* (edge-pixel coordinates, dominant-color
palettes) rather than fixed-length vectors, the paper uses the Hausdorff
distance: the farthest any point of one set is from the other set,

    H(A, B) = max( h(A, B), h(B, A) ),
    h(A, B) = max_{a in A} min_{b in B} d(a, b),

with Euclidean point-to-point distance.  It is a true metric on non-empty
compact sets.  The implementation is vectorized over the smaller side and
exact; point sets are modest (edge maps are subsampled upstream).

The batch kernel handles *ragged* candidate sets (rows carry different
point counts after their NaN padding is dropped) by compacting each
row's valid values to the front, padding the stacked point tensor to the
largest set, and evaluating all pairwise point-distance blocks at once
with the padding masked out of the min/max folds.  The per-pair floats
— elementwise squared differences, a last-axis sum, a square root — are
grouped exactly as the scalar path groups them, and min/max reductions
are order-free, so every row is bit-identical to ``distance``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric, validate_batch_operands

__all__ = ["directed_hausdorff", "hausdorff", "HausdorffDistance"]


def _as_point_set(points: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(points, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2 or array.shape[0] == 0:
        raise MetricError(f"{name}: expected a non-empty (n, d) point set; got {array.shape}")
    return array


def directed_hausdorff(a: np.ndarray, b: np.ndarray) -> float:
    """``h(A, B) = max_a min_b ||a - b||`` (one-sided)."""
    a = _as_point_set(a, "hausdorff")
    b = _as_point_set(b, "hausdorff")
    if a.shape[1] != b.shape[1]:
        raise MetricError(
            f"hausdorff: point dimensionality differs: {a.shape[1]} vs {b.shape[1]}"
        )
    worst = 0.0
    # Chunk over A to bound the (|A| x |B|) intermediate.
    chunk = max(1, 4096 // max(1, b.shape[0]) + 1)
    for start in range(0, a.shape[0], chunk):
        block = a[start : start + chunk]
        deltas = block[:, None, :] - b[None, :, :]
        nearest = np.sqrt((deltas**2).sum(axis=2)).min(axis=1)
        worst = max(worst, float(nearest.max()))
    return worst


def hausdorff(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric Hausdorff distance ``max(h(A,B), h(B,A))``."""
    return max(directed_hausdorff(a, b), directed_hausdorff(b, a))


class HausdorffDistance(Metric):
    """Metric adapter: operands are flattened ``(n*d,)`` point buffers.

    Because the index layer traffics in 1-D vectors, point sets are packed
    as flat arrays with a declared point dimensionality; trailing NaN
    padding (from fixed-size store records) is dropped.

    Parameters
    ----------
    point_dim:
        Dimensionality of each point (2 for pixel coordinates).
    """

    supports_batch = True

    def __init__(self, point_dim: int = 2) -> None:
        if point_dim < 1:
            raise MetricError(f"point_dim must be >= 1; got {point_dim}")
        self._point_dim = point_dim

    @property
    def name(self) -> str:
        return f"hausdorff_{self._point_dim}d"

    def _unpack(self, flat: np.ndarray) -> np.ndarray:
        flat = np.asarray(flat, dtype=np.float64).ravel()
        flat = flat[~np.isnan(flat)]
        if flat.size == 0 or flat.size % self._point_dim:
            raise MetricError(
                f"hausdorff: buffer of {flat.size} values is not a whole number "
                f"of {self._point_dim}-d points"
            )
        return flat.reshape(-1, self._point_dim)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return hausdorff(self._unpack(a), self._unpack(b))

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Vectorized kernel over padded/masked ragged point sets."""
        query, vectors = validate_batch_operands(query, vectors, self.name)
        n = vectors.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.float64)
        query_points = self._unpack(query)
        dim = self._point_dim

        valid = ~np.isnan(vectors)
        counts = valid.sum(axis=1)
        bad = (counts == 0) | (counts % dim != 0)
        if np.any(bad):
            size = int(counts[int(np.argmax(bad))])
            raise MetricError(
                f"hausdorff: buffer of {size} values is not a whole number "
                f"of {dim}-d points"
            )

        # Compact each row's valid values to the front; the stable sort
        # keeps them in buffer order, exactly like the scalar unpack.
        # Padding becomes +inf, so padded points sit at infinite squared
        # distance and drop out of the min folds with no explicit mask.
        order = np.argsort(~valid, axis=1, kind="stable")
        packed = np.take_along_axis(vectors, order, axis=1)
        max_values = int(counts.max())  # a multiple of dim: every count is
        packed = packed[:, :max_values]
        packed = np.where(
            np.arange(max_values)[None, :] < counts[:, None], packed, np.inf
        )
        points = np.ascontiguousarray(packed).reshape(n, max_values // dim, dim)
        point_valid = (
            np.arange(max_values // dim)[None, :] < (counts // dim)[:, None]
        )

        n_query = query_points.shape[0]
        max_points = points.shape[1]
        out = np.empty(n, dtype=np.float64)
        # The folds run on *squared* distances — sqrt is monotone, so
        # min/max commute with it bit for bit and one sqrt per row at the
        # end reproduces the scalar path's per-pair sqrt exactly.  Chunk
        # over rows to keep the (chunk, |A|, |B|, d) intermediate in
        # cache (~1 MB).
        chunk = max(1, 131_072 // max(1, n_query * max_points * dim))
        for start in range(0, n, chunk):
            block = points[start : start + chunk]
            block_valid = point_valid[start : start + chunk]
            deltas = query_points[None, :, None, :] - block[:, None, :, :]
            np.multiply(deltas, deltas, out=deltas)
            squared = deltas.sum(axis=3)  # (chunk, |A|, |B|)
            # h(A, B): each query point's nearest candidate point (padding
            # is +inf and never the min), then the farthest such.
            forward = squared.min(axis=2).max(axis=1)
            # h(B, A): each valid candidate point's nearest query point,
            # padding masked out of the outer max.
            backward = np.where(block_valid, squared.min(axis=1), -np.inf).max(
                axis=1
            )
            out[start : start + chunk] = np.sqrt(np.maximum(forward, backward))
        return out
