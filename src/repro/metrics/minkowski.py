"""Minkowski-family distances: L1, L2, L-infinity, general p, weighted L2.

Histogram Euclidean distance — compare identical bins only, all bins
contributing equally — is the paper's primary similarity measure; the
rest of the family costs nothing extra to provide and the evaluation's
metric-comparison experiment (T7) sweeps them all.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric, validate_same_shape

__all__ = [
    "ManhattanDistance",
    "EuclideanDistance",
    "ChebyshevDistance",
    "MinkowskiDistance",
    "WeightedEuclideanDistance",
]


class ManhattanDistance(Metric):
    """L1 distance: sum of absolute coordinate differences."""

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "L1")
        return float(np.abs(a - b).sum())


class EuclideanDistance(Metric):
    """L2 distance — the paper's histogram comparison measure."""

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "L2")
        return float(np.linalg.norm(a - b))


class ChebyshevDistance(Metric):
    """L-infinity distance: the largest single-coordinate difference."""

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "Linf")
        return float(np.abs(a - b).max())


class MinkowskiDistance(Metric):
    """General L_p distance for ``p >= 1`` (p < 1 violates the triangle
    inequality and is rejected)."""

    def __init__(self, p: float) -> None:
        if p < 1.0:
            raise MetricError(f"Minkowski requires p >= 1 to be a metric; got {p}")
        self._p = float(p)

    @property
    def p(self) -> float:
        """The exponent."""
        return self._p

    @property
    def name(self) -> str:
        return f"L{self._p:g}"

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, self.name)
        return float(np.power(np.abs(a - b) ** self._p, 1.0).sum() ** (1.0 / self._p))


class WeightedEuclideanDistance(Metric):
    """Euclidean distance with fixed non-negative per-dimension weights.

    ``d(a, b) = sqrt(sum_i w_i (a_i - b_i)^2)``.  This is how a composite
    feature vector expresses "color matters three times as much as
    texture" while staying a true metric (it is the Euclidean distance
    after rescaling each axis by ``sqrt(w_i)``).
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.size == 0:
            raise MetricError("weights must be non-empty")
        if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
            raise MetricError("weights must be finite and non-negative")
        self._weights = weights

    @property
    def weights(self) -> np.ndarray:
        """The per-dimension weights (read-only copy)."""
        return self._weights.copy()

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "weightedL2")
        if a.shape != self._weights.shape:
            raise MetricError(
                f"weightedL2: operands have dim {a.size}, weights have {self._weights.size}"
            )
        diff = a - b
        return float(np.sqrt(np.sum(self._weights * diff * diff)))
