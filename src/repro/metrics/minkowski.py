"""Minkowski-family distances: L1, L2, L-infinity, general p, weighted L2.

Histogram Euclidean distance — compare identical bins only, all bins
contributing equally — is the paper's primary similarity measure; the
rest of the family costs nothing extra to provide and the evaluation's
metric-comparison experiment (T7) sweeps them all.

Every member has a vectorized batch kernel.  The scalar ``distance``
evaluates the same kernel on a one-row matrix, so scalar and batched
results are bit-identical by construction (see :mod:`repro.metrics.base`
for why the kernels avoid BLAS).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric, validate_batch_operands, validate_same_shape

__all__ = [
    "ManhattanDistance",
    "EuclideanDistance",
    "ChebyshevDistance",
    "MinkowskiDistance",
    "WeightedEuclideanDistance",
]


class ManhattanDistance(Metric):
    """L1 distance: sum of absolute coordinate differences."""

    supports_batch = True

    @staticmethod
    def _kernel(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        return np.abs(query - vectors).sum(axis=1)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "L1")
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "L1")
        return self._kernel(query, vectors)


class EuclideanDistance(Metric):
    """L2 distance — the paper's histogram comparison measure."""

    supports_batch = True

    @staticmethod
    def _kernel(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        diff = query - vectors
        return np.sqrt((diff * diff).sum(axis=1))

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "L2")
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "L2")
        return self._kernel(query, vectors)


class ChebyshevDistance(Metric):
    """L-infinity distance: the largest single-coordinate difference."""

    supports_batch = True

    @staticmethod
    def _kernel(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        return np.abs(query - vectors).max(axis=1)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "Linf")
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "Linf")
        return self._kernel(query, vectors)


class MinkowskiDistance(Metric):
    """General L_p distance for ``p >= 1`` (p < 1 violates the triangle
    inequality and is rejected)."""

    supports_batch = True

    def __init__(self, p: float) -> None:
        if p < 1.0:
            raise MetricError(f"Minkowski requires p >= 1 to be a metric; got {p}")
        self._p = float(p)

    @property
    def p(self) -> float:
        """The exponent."""
        return self._p

    @property
    def name(self) -> str:
        return f"L{self._p:g}"

    def _kernel(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        return (np.abs(query - vectors) ** self._p).sum(axis=1) ** (1.0 / self._p)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, self.name)
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, self.name)
        return self._kernel(query, vectors)


class WeightedEuclideanDistance(Metric):
    """Euclidean distance with fixed non-negative per-dimension weights.

    ``d(a, b) = sqrt(sum_i w_i (a_i - b_i)^2)``.  This is how a composite
    feature vector expresses "color matters three times as much as
    texture" while staying a true metric (it is the Euclidean distance
    after rescaling each axis by ``sqrt(w_i)``).
    """

    supports_batch = True

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.size == 0:
            raise MetricError("weights must be non-empty")
        if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
            raise MetricError("weights must be finite and non-negative")
        self._weights = weights

    @property
    def weights(self) -> np.ndarray:
        """The per-dimension weights (read-only copy)."""
        return self._weights.copy()

    def _kernel(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        diff = query - vectors
        return np.sqrt((self._weights * diff * diff).sum(axis=1))

    def _check_dim(self, dim: int) -> None:
        if dim != self._weights.size:
            raise MetricError(
                f"weightedL2: operands have dim {dim}, weights have {self._weights.size}"
            )

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "weightedL2")
        self._check_dim(a.size)
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "weightedL2")
        self._check_dim(query.size)
        return self._kernel(query, vectors)
