"""Circular-shift matching for orientation histograms.

Edge-orientation histograms rotate with the image: a 30-degree rotation
circularly shifts the histogram by 30 degrees' worth of bins.  The paper's
remedy is to "iteratively shift the histogram to find the best match" —
exactly what :class:`CircularShiftDistance` does: it evaluates a base
distance at every cyclic shift (optionally limited to ``max_shift`` bins)
and returns the minimum.

Taking a minimum over shifts breaks the triangle inequality in general,
so this measure is flagged non-metric and belongs in linear scans or in
the re-ranking stage after an index narrowed the candidates.

``distance_batch`` runs a **stacked-shift kernel**: for each candidate
shift the whole ``(n, d)`` vector block is rolled along its bin axis in
one ``np.roll`` call and handed to the base metric's batch kernel, and
the per-row minimum accumulates through ``np.minimum``.  Row ``i`` of
``np.roll(V, s, axis=1)`` equals ``np.roll(V[i], s)`` and the base
kernel is bit-identical to its scalar path by the batch contract, so
the minimum over the same shift set reproduces the scalar result bit
for bit — the scalar loop's early exit at an exact zero changes which
shifts are *evaluated*, never the minimum.  Every shipped base metric
now carries a kernel (EMD was the last holdout); a user-supplied base
without one degrades gracefully to the same per-row cost as the scalar
path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import (
    Metric,
    validate_batch_operands,
    validate_same_shape,
)
from repro.metrics.minkowski import EuclideanDistance

__all__ = ["CircularShiftDistance"]


class CircularShiftDistance(Metric):
    """Minimum of a base distance over cyclic shifts of the second operand.

    Parameters
    ----------
    base:
        The distance evaluated at each shift (default Euclidean).
    max_shift:
        Largest shift magnitude to try, in bins; ``None`` tries all
        ``dim`` shifts.  Limiting the range models "small rotations only"
        and cuts cost proportionally.
    """

    is_metric = False

    def __init__(self, base: Metric | None = None, *, max_shift: int | None = None) -> None:
        self._base = base if base is not None else EuclideanDistance()
        if max_shift is not None and max_shift < 0:
            raise MetricError(f"max_shift must be non-negative; got {max_shift}")
        self._max_shift = max_shift
        # The stacked-shift kernel is only a real vectorization when the
        # base metric brings one; with a loop-fallback base each shift
        # still costs one interpreted call per row.
        self.supports_batch = bool(self._base.supports_batch)

    @property
    def name(self) -> str:
        limit = "all" if self._max_shift is None else str(self._max_shift)
        return f"shift[{limit}]({self._base.name})"

    def _shifts(self, dim: int) -> range | list[int]:
        if self._max_shift is None or self._max_shift >= dim:
            return range(dim)
        k = self._max_shift
        return [s % dim for s in range(-k, k + 1)]

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "shift")
        best = np.inf
        for shift in self._shifts(a.size):
            candidate = self._base.distance(a, np.roll(b, shift))
            if candidate < best:
                best = candidate
                if best == 0.0:
                    break
        return float(best)

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, self.name)
        if vectors.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        best: np.ndarray | None = None
        for shift in self._shifts(query.size):
            candidate = self._base.distance_batch(
                query, np.roll(vectors, shift, axis=1)
            )
            best = candidate if best is None else np.minimum(best, candidate)
        assert best is not None  # _shifts is never empty (dim >= 1)
        return best
