"""Metric protocol and instrumentation.

:class:`Metric` is the tiny contract every distance measure implements.
:class:`CountingMetric` wraps any metric and counts invocations — the
number of distance computations is the primary cost measure of the whole
evaluation (each distance computation in the 1994 setting implied fetching
a feature vector from disk), so the counter must be exact: indexes receive
the wrapped metric and are never allowed to sneak vectorized shortcuts
around it.

Batched evaluation goes through the same accounting.  ``distance_batch``
evaluates one query against many vectors in a single call; metrics with a
vectorized kernel override it (and set ``supports_batch``), everything
else inherits a loop fallback.  The contract either way:

* ``distance_batch(q, V)[i]`` is **bit-identical** to ``distance(q, V[i])``
  — a batch kernel may reorganize the arithmetic for SIMD, but not change
  a single ulp, so scalar and batched query paths return the same floats;
* a batch over ``n`` vectors counts as exactly ``n`` distance
  computations on :class:`CountingMetric` and in index stats.  Batching
  saves interpreter overhead, never metric evaluations.

In practice bit-identity means kernels stick to elementwise arithmetic
plus ``sum``/``max`` reductions over the last axis (NumPy's pairwise
summation groups identically for a 1-D array and for each row of a 2-D
array) and avoid BLAS (``dot`` / ``matmul`` / ``linalg.norm``), whose
accumulation order differs between the vector and matrix code paths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import MetricError

__all__ = [
    "Metric",
    "CountingMetric",
    "hide_batch_kernel",
    "pairwise_distances",
    "validate_same_shape",
    "validate_batch_operands",
]


def validate_same_shape(a: np.ndarray, b: np.ndarray, name: str) -> tuple[np.ndarray, np.ndarray]:
    """Coerce operands to float64 1-D arrays and check they align."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise MetricError(f"{name}: operand shapes differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise MetricError(f"{name}: operands are empty")
    return a, b


def validate_batch_operands(
    query: np.ndarray, vectors: np.ndarray, name: str
) -> tuple[np.ndarray, np.ndarray]:
    """Coerce a (query, vector-matrix) pair for batched evaluation.

    The query becomes a float64 1-D array, the vectors a float64
    ``(n, d)`` array with matching ``d``.  ``n == 0`` is allowed (the
    batch is simply empty).
    """
    query = np.asarray(query, dtype=np.float64).ravel()
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise MetricError(
            f"{name}: expected a 2-D (n, d) vector array; got shape {vectors.shape}"
        )
    if query.size == 0:
        raise MetricError(f"{name}: operands are empty")
    if vectors.shape[1] != query.size:
        raise MetricError(
            f"{name}: query has dim {query.size} but vectors have dim {vectors.shape[1]}"
        )
    return query, vectors


class Metric(ABC):
    """A distance function between feature vectors.

    Attributes
    ----------
    is_metric:
        True when the function satisfies the metric axioms (symmetry,
        identity, triangle inequality).  Tree indexes require it; scans
        do not.
    supports_batch:
        True when :meth:`distance_batch` runs a vectorized kernel rather
        than the per-row loop fallback.  Purely informational — the
        fallback is correct, just slower.
    """

    is_metric: bool = True
    supports_batch: bool = False

    @property
    def name(self) -> str:
        """Human-readable identifier (defaults to the class name)."""
        return type(self).__name__

    @abstractmethod
    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Distance between two vectors (non-negative float)."""

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Distances from ``query`` to every row of ``vectors``.

        ``result[i]`` equals ``distance(query, vectors[i])`` bit-for-bit;
        vectorized overrides must preserve that (see the module docstring
        for the arithmetic rules that make it hold).  This default is the
        loop fallback: correct for any metric, one interpreted call per
        row.
        """
        query, vectors = validate_batch_operands(query, vectors, self.name)
        return np.array(
            [self.distance(query, row) for row in vectors], dtype=np.float64
        )

    def __call__(self, a: np.ndarray, b: np.ndarray) -> float:
        return self.distance(a, b)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CountingMetric(Metric):
    """Wrapper that counts every distance evaluation.

    The count is cumulative; use :meth:`reset` between measurements or
    :meth:`snapshot` for differential counting.

    Examples
    --------
    >>> from repro.metrics import EuclideanDistance
    >>> counter = CountingMetric(EuclideanDistance())
    >>> _ = counter.distance([0.0, 0.0], [3.0, 4.0])
    >>> counter.count
    1
    """

    def __init__(self, inner: Metric) -> None:
        if not isinstance(inner, Metric):
            raise MetricError(f"CountingMetric wraps a Metric; got {type(inner).__name__}")
        self._inner = inner
        self._count = 0
        self.is_metric = inner.is_metric
        self.supports_batch = inner.supports_batch

    @property
    def inner(self) -> Metric:
        """The wrapped metric."""
        return self._inner

    @property
    def name(self) -> str:
        return f"counted({self._inner.name})"

    @property
    def count(self) -> int:
        """Number of distance evaluations since construction or reset."""
        return self._count

    def reset(self) -> None:
        """Zero the counter."""
        self._count = 0

    def snapshot(self) -> int:
        """Current count, for differential measurement."""
        return self._count

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        self._count += 1
        return self._inner.distance(a, b)

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        # Delegate to the inner kernel so batching stays fast, then count
        # one evaluation per row — a batch is n fetches, not one.  (The
        # inner loop fallback calls the *unwrapped* scalar distance, so
        # nothing is double-counted.)
        distances = self._inner.distance_batch(query, vectors)
        self._count += int(distances.shape[0])
        return distances


def hide_batch_kernel(metric: Metric) -> Metric:
    """A clone of ``metric`` whose ``distance_batch`` is the loop fallback.

    Benchmarks and parity tests use this to model the scalar-era cost:
    every batched call site degrades to one interpreted ``distance``
    call per row, while results stay bit-identical by the batch
    contract.  The clone subclasses the metric's own class, so indexes
    with ``isinstance`` checks (the kd-tree) still accept it.
    """
    import copy

    cls = type(metric)
    hidden = type(
        f"Scalar{cls.__name__}",
        (cls,),
        {"distance_batch": Metric.distance_batch, "supports_batch": False},
    )
    clone = copy.copy(metric)
    clone.__class__ = hidden
    return clone


def pairwise_distances(metric: Metric, vectors: np.ndarray) -> np.ndarray:
    """Full symmetric pairwise distance matrix of a vector set.

    O(n^2) metric calls; intended for evaluation statistics on modest sets,
    not for search (that is what the indexes are for).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise MetricError(f"expected a 2-D (n, d) array; got shape {vectors.shape}")
    n = vectors.shape[0]
    result = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            d = metric.distance(vectors[i], vectors[j])
            result[i, j] = d
            result[j, i] = d
    return result
