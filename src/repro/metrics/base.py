"""Metric protocol and instrumentation.

:class:`Metric` is the tiny contract every distance measure implements.
:class:`CountingMetric` wraps any metric and counts invocations — the
number of distance computations is the primary cost measure of the whole
evaluation (each distance computation in the 1994 setting implied fetching
a feature vector from disk), so the counter must be exact: indexes receive
the wrapped metric and are never allowed to sneak vectorized shortcuts
around it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import MetricError

__all__ = ["Metric", "CountingMetric", "pairwise_distances", "validate_same_shape"]


def validate_same_shape(a: np.ndarray, b: np.ndarray, name: str) -> tuple[np.ndarray, np.ndarray]:
    """Coerce operands to float64 1-D arrays and check they align."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise MetricError(f"{name}: operand shapes differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise MetricError(f"{name}: operands are empty")
    return a, b


class Metric(ABC):
    """A distance function between feature vectors.

    Attributes
    ----------
    is_metric:
        True when the function satisfies the metric axioms (symmetry,
        identity, triangle inequality).  Tree indexes require it; scans
        do not.
    """

    is_metric: bool = True

    @property
    def name(self) -> str:
        """Human-readable identifier (defaults to the class name)."""
        return type(self).__name__

    @abstractmethod
    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Distance between two vectors (non-negative float)."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> float:
        return self.distance(a, b)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CountingMetric(Metric):
    """Wrapper that counts every distance evaluation.

    The count is cumulative; use :meth:`reset` between measurements or
    :meth:`snapshot` for differential counting.

    Examples
    --------
    >>> from repro.metrics import EuclideanDistance
    >>> counter = CountingMetric(EuclideanDistance())
    >>> _ = counter.distance([0.0, 0.0], [3.0, 4.0])
    >>> counter.count
    1
    """

    def __init__(self, inner: Metric) -> None:
        if not isinstance(inner, Metric):
            raise MetricError(f"CountingMetric wraps a Metric; got {type(inner).__name__}")
        self._inner = inner
        self._count = 0
        self.is_metric = inner.is_metric

    @property
    def inner(self) -> Metric:
        """The wrapped metric."""
        return self._inner

    @property
    def name(self) -> str:
        return f"counted({self._inner.name})"

    @property
    def count(self) -> int:
        """Number of distance evaluations since construction or reset."""
        return self._count

    def reset(self) -> None:
        """Zero the counter."""
        self._count = 0

    def snapshot(self) -> int:
        """Current count, for differential measurement."""
        return self._count

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        self._count += 1
        return self._inner.distance(a, b)


def pairwise_distances(metric: Metric, vectors: np.ndarray) -> np.ndarray:
    """Full symmetric pairwise distance matrix of a vector set.

    O(n^2) metric calls; intended for evaluation statistics on modest sets,
    not for search (that is what the indexes are for).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise MetricError(f"expected a 2-D (n, d) array; got shape {vectors.shape}")
    n = vectors.shape[0]
    result = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            d = metric.distance(vectors[i], vectors[j])
            result[i, j] = d
            result[j, i] = d
    return result
