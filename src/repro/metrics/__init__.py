"""Similarity measures between feature vectors.

Indexing in metric space only needs one thing from a distance function:
the **triangle inequality**.  Every class here declares via
``is_metric`` whether it provides it; the tree indexes refuse
non-metrics, the linear scan accepts anything.

Implemented measures (the paper's section 4 set plus the QBIC standards).
"Batch?" marks measures with a vectorized ``distance_batch`` kernel; the
rest inherit the correct per-row loop fallback (see
:mod:`repro.metrics.base` for the batch contract):

=============================  ========  ======  =============================
Measure                        Metric?   Batch?  Typical operand
=============================  ========  ======  =============================
L1 / L2 / L-infinity           yes       yes     any vector
WeightedEuclidean              yes       yes     heterogeneous composites
HistogramIntersection          yes*      yes     L1-normalized histograms
ChiSquareDistance              no        yes     histograms
BhattacharyyaDistance          yes**     yes     L1-normalized histograms
QuadraticFormDistance          yes       yes     histograms + bin similarity
MatchDistance (1-D EMD)        yes       yes     ordered histograms (CDF L1)
CircularShiftDistance          no        yes***  orientation histograms
HausdorffDistance              yes       yes     point sets
CosineDistance                 no        yes     any vector (direction only)
CanberraDistance               yes       yes     any vector (relative per-bin)
JensenShannonDistance          yes       yes     histograms (sqrt JS div.)
=============================  ========  ======  =============================

``*`` equal to half the L1 distance on L1-normalized inputs, hence metric.
``**`` the Bhattacharyya *angle* form used here is a metric on the simplex.
``***`` the stacked-shift kernel rolls the whole vector block per shift
and reduces with ``np.minimum``; it is vectorized whenever the base
distance has a kernel — since the EMD kernel landed, every shipped base
qualifies.
"""

from repro.metrics.base import (
    CountingMetric,
    Metric,
    pairwise_distances,
    validate_batch_operands,
)
from repro.metrics.minkowski import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
    WeightedEuclideanDistance,
)
from repro.metrics.histogram import (
    BhattacharyyaDistance,
    ChiSquareDistance,
    HistogramIntersection,
)
from repro.metrics.quadratic import QuadraticFormDistance, color_similarity_matrix
from repro.metrics.emd import (
    MatchDistance,
    circular_match_distance,
    circular_match_distance_batch,
    match_distance,
    match_distance_batch,
)
from repro.metrics.shifted import CircularShiftDistance
from repro.metrics.hausdorff import HausdorffDistance, directed_hausdorff
from repro.metrics.divergence import (
    CanberraDistance,
    CosineDistance,
    JensenShannonDistance,
)

__all__ = [
    "Metric",
    "CountingMetric",
    "pairwise_distances",
    "validate_batch_operands",
    "ManhattanDistance",
    "EuclideanDistance",
    "ChebyshevDistance",
    "MinkowskiDistance",
    "WeightedEuclideanDistance",
    "HistogramIntersection",
    "ChiSquareDistance",
    "BhattacharyyaDistance",
    "QuadraticFormDistance",
    "color_similarity_matrix",
    "MatchDistance",
    "match_distance",
    "match_distance_batch",
    "circular_match_distance",
    "circular_match_distance_batch",
    "CircularShiftDistance",
    "HausdorffDistance",
    "directed_hausdorff",
    "CosineDistance",
    "CanberraDistance",
    "JensenShannonDistance",
]
