"""Similarity measures between feature vectors.

Indexing in metric space only needs one thing from a distance function:
the **triangle inequality**.  Every class here declares via
``is_metric`` whether it provides it; the tree indexes refuse
non-metrics, the linear scan accepts anything.

Implemented measures (the paper's section 4 set plus the QBIC standards):

=============================  ========  ===================================
Measure                        Metric?   Typical operand
=============================  ========  ===================================
L1 / L2 / L-infinity           yes       any vector
WeightedEuclidean              yes       heterogeneous composite vectors
HistogramIntersection          yes*      L1-normalized histograms
ChiSquareDistance              no        histograms
BhattacharyyaDistance          yes**     L1-normalized histograms
QuadraticFormDistance          yes       histograms + bin-similarity matrix
MatchDistance (1-D EMD)        yes       ordered histograms (CDF L1)
CircularShiftDistance          no        orientation histograms
HausdorffDistance              yes       point sets
CosineDistance                 no        any vector (direction only)
CanberraDistance               yes       any vector (relative per-bin)
JensenShannonDistance          yes       histograms (sqrt JS divergence)
=============================  ========  ===================================

``*`` equal to half the L1 distance on L1-normalized inputs, hence metric.
``**`` the Bhattacharyya *angle* form used here is a metric on the simplex.
"""

from repro.metrics.base import CountingMetric, Metric, pairwise_distances
from repro.metrics.minkowski import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
    WeightedEuclideanDistance,
)
from repro.metrics.histogram import (
    BhattacharyyaDistance,
    ChiSquareDistance,
    HistogramIntersection,
)
from repro.metrics.quadratic import QuadraticFormDistance, color_similarity_matrix
from repro.metrics.emd import MatchDistance, circular_match_distance
from repro.metrics.shifted import CircularShiftDistance
from repro.metrics.hausdorff import HausdorffDistance, directed_hausdorff
from repro.metrics.divergence import (
    CanberraDistance,
    CosineDistance,
    JensenShannonDistance,
)

__all__ = [
    "Metric",
    "CountingMetric",
    "pairwise_distances",
    "ManhattanDistance",
    "EuclideanDistance",
    "ChebyshevDistance",
    "MinkowskiDistance",
    "WeightedEuclideanDistance",
    "HistogramIntersection",
    "ChiSquareDistance",
    "BhattacharyyaDistance",
    "QuadraticFormDistance",
    "color_similarity_matrix",
    "MatchDistance",
    "circular_match_distance",
    "CircularShiftDistance",
    "HausdorffDistance",
    "directed_hausdorff",
    "CosineDistance",
    "CanberraDistance",
    "JensenShannonDistance",
]
