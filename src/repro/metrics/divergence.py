"""Cosine, Canberra and Jensen-Shannon distances.

These three round out the section-4 similarity-measure inventory:

:class:`CosineDistance`
    ``1 - cos(a, b)`` — compares vector *direction* only, the standard
    choice when overall signature magnitude (image size, exposure) should
    not matter.  Scale invariance is exactly why it is **not** a metric:
    ``x`` and ``2x`` are at distance zero.  Usable with the linear scan
    and filter-refine paths, refused by the triangle-inequality trees.
:class:`CanberraDistance`
    ``sum |a_i - b_i| / (|a_i| + |b_i|)`` — a per-coordinate relative L1,
    very sensitive to differences in small-valued bins (rare colors),
    which plain L1 drowns out.  A true metric.
:class:`JensenShannonDistance`
    The square root of the Jensen-Shannon divergence between two
    L1-normalized histograms — the symmetrized, always-finite relative
    entropy.  Endres & Schindelin proved the square root is a true
    metric, so the trees accept it; it is the information-theoretic
    alternative to the chi-square measure (which is not a metric).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric, validate_same_shape

__all__ = ["CosineDistance", "CanberraDistance", "JensenShannonDistance"]


class CosineDistance(Metric):
    """``1 - cosine_similarity``; direction-only comparison.

    The zero vector has no direction; by convention its distance to
    anything (including itself) is 1, keeping outputs in ``[0, 2]``.
    """

    is_metric = False

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "CosineDistance")
        norm_a = float(np.linalg.norm(a))
        norm_b = float(np.linalg.norm(b))
        if norm_a == 0.0 or norm_b == 0.0:
            return 1.0
        cosine = float(np.dot(a, b)) / (norm_a * norm_b)
        return 1.0 - float(np.clip(cosine, -1.0, 1.0))


class CanberraDistance(Metric):
    """Per-coordinate relative L1: ``sum |a-b| / (|a| + |b|)``.

    Coordinates where both operands are zero contribute nothing (the
    standard convention).  Emphasizes proportional change in small bins.
    """

    is_metric = True

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "CanberraDistance")
        denominator = np.abs(a) + np.abs(b)
        mask = denominator > 0.0
        if not mask.any():
            return 0.0
        return float(np.sum(np.abs(a - b)[mask] / denominator[mask]))


class JensenShannonDistance(Metric):
    """Square root of the Jensen-Shannon divergence (base 2), a metric.

    Operands must be non-negative; they are L1-normalized internally so
    raw histogram counts are fine.  Output lies in ``[0, 1]``: 0 for
    identical distributions, 1 for disjoint supports.
    """

    is_metric = True

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "JensenShannonDistance")
        if np.any(a < 0.0) or np.any(b < 0.0):
            raise MetricError("JensenShannonDistance: operands must be non-negative")
        total_a = float(a.sum())
        total_b = float(b.sum())
        if total_a == 0.0 or total_b == 0.0:
            # An empty histogram carries no distribution; it is identical
            # to another empty one and maximally far from any non-empty one.
            return 0.0 if total_a == total_b else 1.0
        p = a / total_a
        q = b / total_b
        mixture = 0.5 * (p + q)

        def half_divergence(dist: np.ndarray) -> float:
            # mixture >= dist/2 > 0 wherever dist > 0 mathematically, but
            # halving the smallest subnormal underflows to zero; such a
            # coordinate's true contribution is itself subnormal, so it
            # is safe (and necessary) to skip it.
            mask = (dist > 0.0) & (mixture > 0.0)
            return float(np.sum(dist[mask] * np.log2(dist[mask] / mixture[mask])))

        divergence = 0.5 * half_divergence(p) + 0.5 * half_divergence(q)
        # Rounding can push the sum a hair outside the theoretical [0, 1].
        return float(np.sqrt(np.clip(divergence, 0.0, 1.0)))
