"""Cosine, Canberra and Jensen-Shannon distances.

These three round out the section-4 similarity-measure inventory:

:class:`CosineDistance`
    ``1 - cos(a, b)`` — compares vector *direction* only, the standard
    choice when overall signature magnitude (image size, exposure) should
    not matter.  Scale invariance is exactly why it is **not** a metric:
    ``x`` and ``2x`` are at distance zero.  Usable with the linear scan
    and filter-refine paths, refused by the triangle-inequality trees.
:class:`CanberraDistance`
    ``sum |a_i - b_i| / (|a_i| + |b_i|)`` — a per-coordinate relative L1,
    very sensitive to differences in small-valued bins (rare colors),
    which plain L1 drowns out.  A true metric.
:class:`JensenShannonDistance`
    The square root of the Jensen-Shannon divergence between two
    L1-normalized histograms — the symmetrized, always-finite relative
    entropy.  Endres & Schindelin proved the square root is a true
    metric, so the trees accept it; it is the information-theoretic
    alternative to the chi-square measure (which is not a metric).

All three have vectorized batch kernels; the scalar ``distance`` runs
the same kernel on a one-row matrix, keeping scalar and batched results
bit-identical (the kernels use only elementwise ops and last-axis sums —
no BLAS — per the contract in :mod:`repro.metrics.base`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric, validate_batch_operands, validate_same_shape

__all__ = ["CosineDistance", "CanberraDistance", "JensenShannonDistance"]


class CosineDistance(Metric):
    """``1 - cosine_similarity``; direction-only comparison.

    The zero vector has no direction; by convention its distance to
    anything (including itself) is 1, keeping outputs in ``[0, 2]``.
    """

    is_metric = False
    supports_batch = True

    @staticmethod
    def _kernel(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        norm_q = np.sqrt((query * query).sum())
        norms = np.sqrt((vectors * vectors).sum(axis=1))
        dots = (query * vectors).sum(axis=1)
        scales = norm_q * norms
        safe = np.where(scales > 0.0, scales, 1.0)
        cosines = np.clip(dots / safe, -1.0, 1.0)
        return np.where(scales > 0.0, 1.0 - cosines, 1.0)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "CosineDistance")
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "CosineDistance")
        return self._kernel(query, vectors)


class CanberraDistance(Metric):
    """Per-coordinate relative L1: ``sum |a-b| / (|a| + |b|)``.

    Coordinates where both operands are zero contribute nothing (the
    standard convention).  Emphasizes proportional change in small bins.
    """

    is_metric = True
    supports_batch = True

    @staticmethod
    def _kernel(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        denominators = np.abs(query) + np.abs(vectors)
        safe = np.where(denominators > 0.0, denominators, 1.0)
        contributions = np.where(
            denominators > 0.0, np.abs(query - vectors) / safe, 0.0
        )
        return contributions.sum(axis=1)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "CanberraDistance")
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "CanberraDistance")
        return self._kernel(query, vectors)


class JensenShannonDistance(Metric):
    """Square root of the Jensen-Shannon divergence (base 2), a metric.

    Operands must be non-negative; they are L1-normalized internally so
    raw histogram counts are fine.  Output lies in ``[0, 1]``: 0 for
    identical distributions, 1 for disjoint supports.
    """

    is_metric = True
    supports_batch = True

    @staticmethod
    def _kernel(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        mass_q = query.sum()
        masses = vectors.sum(axis=1)
        valid = (masses > 0.0) & (mass_q > 0.0)
        p = query / mass_q if mass_q > 0.0 else query
        safe_masses = np.where(masses > 0.0, masses, 1.0)
        q = vectors / safe_masses[:, None]
        mixture = 0.5 * (p + q)

        def half_divergence(dist: np.ndarray) -> np.ndarray:
            # mixture >= dist/2 > 0 wherever dist > 0 mathematically, but
            # halving the smallest subnormal underflows to zero; such a
            # coordinate's true contribution is itself subnormal, so it
            # is safe (and necessary) to skip it.
            mask = (dist > 0.0) & (mixture > 0.0)
            ratios = np.divide(dist, mixture, out=np.ones_like(mixture), where=mask)
            return np.where(mask, dist * np.log2(ratios), 0.0).sum(axis=1)

        divergences = 0.5 * half_divergence(np.broadcast_to(p, q.shape)) + (
            0.5 * half_divergence(q)
        )
        # Rounding can push the sum a hair outside the theoretical [0, 1].
        distances = np.sqrt(np.clip(divergences, 0.0, 1.0))
        # An empty histogram carries no distribution; it is identical to
        # another empty one and maximally far from any non-empty one.
        return np.where(valid, distances, np.where(masses == mass_q, 0.0, 1.0))

    @staticmethod
    def _check_nonnegative(a: np.ndarray) -> None:
        if np.any(a < 0.0):
            raise MetricError("JensenShannonDistance: operands must be non-negative")

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "JensenShannonDistance")
        self._check_nonnegative(a)
        self._check_nonnegative(b)
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "JensenShannonDistance")
        self._check_nonnegative(query)
        self._check_nonnegative(vectors)
        return self._kernel(query, vectors)
