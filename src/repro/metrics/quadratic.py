"""Quadratic-form (QBIC) distance: cross-bin color similarity.

Plain bin-by-bin measures never compare *perceptually similar but
distinct* colors — dark red vs. slightly-darker red land in different
bins and count as fully different.  QBIC's answer is the quadratic form

    d(h, g) = sqrt( (h - g)^T  A  (h - g) )

where ``A[i, j]`` says how similar bin colors ``i`` and ``j`` are
(``A = I`` recovers Euclidean).  With ``A`` symmetric positive
semi-definite this is the Mahalanobis-style seminorm of the difference,
hence a true (pseudo)metric.

:func:`color_similarity_matrix` builds the standard ``A`` from the bin
centers of a joint RGB quantization: ``a_ij = 1 - d_ij / d_max``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric, validate_batch_operands, validate_same_shape

__all__ = ["QuadraticFormDistance", "color_similarity_matrix", "rgb_bin_centers"]

_PSD_TOL = 1e-8

#: Cap on elements per (chunk, d, d) intermediate in the batch kernel.
_CHUNK_ELEMENTS = 1 << 22


class QuadraticFormDistance(Metric):
    """``sqrt((h-g)^T A (h-g))`` with a fixed PSD similarity matrix ``A``.

    Parameters
    ----------
    matrix:
        Symmetric positive semi-definite ``(d, d)`` array.  Symmetry and
        PSD-ness are verified at construction (eigenvalues down to a small
        negative tolerance are accepted and clipped).

    Both evaluation paths expand ``diff^T A diff`` with broadcasting and
    axis sums instead of BLAS matmul: BLAS accumulates differently for a
    single vector than for a matrix of them, which would break the
    bit-identity contract between ``distance`` and ``distance_batch``.
    """

    supports_batch = True

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise MetricError(f"similarity matrix must be square; got {matrix.shape}")
        if not np.allclose(matrix, matrix.T, atol=1e-10):
            raise MetricError("similarity matrix must be symmetric")
        eigenvalues = np.linalg.eigvalsh(matrix)
        if eigenvalues.min() < -_PSD_TOL:
            raise MetricError(
                f"similarity matrix must be positive semi-definite; "
                f"min eigenvalue {eigenvalues.min():.3g}"
            )
        self._matrix = matrix

    @property
    def dim(self) -> int:
        """Expected operand dimensionality."""
        return self._matrix.shape[0]

    def _kernel(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        # values[i] = diff_i^T A diff_i via (chunk, d, d) broadcasting.
        dim = self.dim
        chunk = max(1, _CHUNK_ELEMENTS // (dim * dim))
        values = np.empty(vectors.shape[0], dtype=np.float64)
        for start in range(0, vectors.shape[0], chunk):
            diff = query - vectors[start : start + chunk]
            transformed = (diff[:, :, None] * self._matrix[None, :, :]).sum(axis=1)
            values[start : start + chunk] = (transformed * diff).sum(axis=1)
        # Guard tiny negative round-off before the root.
        return np.sqrt(np.maximum(values, 0.0))

    def _check_dim(self, dim: int) -> None:
        if dim != self.dim:
            raise MetricError(
                f"quadratic: operands have dim {dim}, matrix expects {self.dim}"
            )

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "quadratic")
        self._check_dim(a.size)
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "quadratic")
        self._check_dim(query.size)
        return self._kernel(query, vectors)


def rgb_bin_centers(levels_per_channel: int) -> np.ndarray:
    """RGB coordinates of the joint-quantization bin centers.

    Bin order matches :func:`repro.image.color.quantize_rgb` (R most
    significant).  Returns an ``(levels**3, 3)`` array in [0, 1].
    """
    if levels_per_channel < 1:
        raise MetricError(f"levels_per_channel must be >= 1; got {levels_per_channel}")
    centers_1d = (np.arange(levels_per_channel) + 0.5) / levels_per_channel
    r, g, b = np.meshgrid(centers_1d, centers_1d, centers_1d, indexing="ij")
    return np.stack([r.ravel(), g.ravel(), b.ravel()], axis=1)


def color_similarity_matrix(levels_per_channel: int) -> np.ndarray:
    """The QBIC similarity matrix ``a_ij = 1 - d_ij / d_max`` over RGB bins.

    ``d_ij`` is the Euclidean distance between bin centers in RGB space
    and ``d_max`` its maximum, so diagonal entries are 1 and the most
    dissimilar color pair scores 0.  The result is symmetric; a small
    ridge is added if needed so it is numerically PSD.
    """
    centers = rgb_bin_centers(levels_per_channel)
    deltas = centers[:, None, :] - centers[None, :, :]
    distances = np.sqrt((deltas**2).sum(axis=2))
    d_max = distances.max()
    matrix = 1.0 - distances / d_max if d_max > 0 else np.ones_like(distances)
    eigenvalues = np.linalg.eigvalsh(matrix)
    if eigenvalues.min() < 0.0:
        matrix = matrix + (abs(eigenvalues.min()) + 1e-10) * np.eye(matrix.shape[0])
    return matrix
