"""Match distance: the 1-D earth mover's distance between histograms.

For histograms over an *ordered* domain (intensity levels, distance-
transform cells) the right notion of difference is how much mass must be
moved how far, not how bins differ point-wise.  In one dimension the
earth mover's distance has a closed form: the L1 distance between the
cumulative distributions,

    EMD(h, g) = sum_i | H_i - G_i |,   H, G = prefix sums of h, g.

This is Werman's *match distance*; it is a true metric on equal-mass
histograms.  A circular variant handles periodic domains (hue,
orientation) by optimally choosing the cut point (Pele & Werman's
closed form: subtract the median of the CDF differences).

Both variants carry vectorized batch kernels: the CDF differences of a
whole candidate matrix are one ``np.cumsum(..., axis=1)`` over the
broadcast ``h - G`` block, the circular cut point is a row-wise
``np.median``, and the final L1 folds are row-wise absolute sums.  Every
step is elementwise arithmetic or a last-axis reduction, so each row
reproduces the scalar result bit for bit (see the arithmetic rules in
``repro.metrics.base``); row-wise ``np.median`` partitions each row
exactly as the 1-D call does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import (
    Metric,
    validate_batch_operands,
    validate_same_shape,
)

__all__ = [
    "MatchDistance",
    "circular_match_distance",
    "circular_match_distance_batch",
    "match_distance",
    "match_distance_batch",
]


def match_distance(h: np.ndarray, g: np.ndarray) -> float:
    """1-D EMD between two same-mass non-negative histograms."""
    h, g = validate_same_shape(h, g, "match")
    if np.any(h < 0) or np.any(g < 0):
        raise MetricError("match distance requires non-negative histograms")
    mass_h, mass_g = float(h.sum()), float(g.sum())
    if not np.isclose(mass_h, mass_g, rtol=1e-6, atol=1e-9):
        raise MetricError(
            f"match distance requires equal masses; got {mass_h:.6g} vs {mass_g:.6g}"
        )
    return float(np.abs(np.cumsum(h - g)).sum())


def circular_match_distance(h: np.ndarray, g: np.ndarray) -> float:
    """1-D EMD on a circular domain (optimal cut via the median shift)."""
    h, g = validate_same_shape(h, g, "circular-match")
    if np.any(h < 0) or np.any(g < 0):
        raise MetricError("match distance requires non-negative histograms")
    if not np.isclose(float(h.sum()), float(g.sum()), rtol=1e-6, atol=1e-9):
        raise MetricError("circular match distance requires equal masses")
    cdf_diff = np.cumsum(h - g)
    return float(np.abs(cdf_diff - np.median(cdf_diff)).sum())


def _validate_batch_masses(
    h: np.ndarray, candidates: np.ndarray, name: str, message: str
) -> None:
    """The scalar functions' non-negativity and equal-mass checks, batched.

    Raises for the first offending row, with the scalar error text.
    """
    if np.any(h < 0) or np.any(candidates < 0):
        raise MetricError("match distance requires non-negative histograms")
    mass_h = float(h.sum())
    masses = candidates.sum(axis=1)
    mismatched = ~np.isclose(mass_h, masses, rtol=1e-6, atol=1e-9)
    if np.any(mismatched):
        mass_g = float(masses[int(np.argmax(mismatched))])
        if name == "match":
            raise MetricError(
                f"match distance requires equal masses; got {mass_h:.6g} vs {mass_g:.6g}"
            )
        raise MetricError(message)


def match_distance_batch(h: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Row-wise :func:`match_distance` between ``h`` and every candidate."""
    h, candidates = validate_batch_operands(h, candidates, "match")
    if candidates.shape[0] == 0:
        return np.empty(0, dtype=np.float64)
    _validate_batch_masses(h, candidates, "match", "")
    cdf_diff = np.cumsum(h[None, :] - candidates, axis=1)
    return np.abs(cdf_diff).sum(axis=1)


def circular_match_distance_batch(h: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Row-wise :func:`circular_match_distance` (median-shift cut points)."""
    h, candidates = validate_batch_operands(h, candidates, "circular-match")
    if candidates.shape[0] == 0:
        return np.empty(0, dtype=np.float64)
    _validate_batch_masses(
        h,
        candidates,
        "circular-match",
        "circular match distance requires equal masses",
    )
    cdf_diff = np.cumsum(h[None, :] - candidates, axis=1)
    medians = np.median(cdf_diff, axis=1)
    return np.abs(cdf_diff - medians[:, None]).sum(axis=1)


class MatchDistance(Metric):
    """Metric wrapper around :func:`match_distance`.

    Parameters
    ----------
    circular:
        Treat the histogram domain as periodic (hue, edge orientation).
    normalize:
        L1-normalize operands first, so histograms of different total mass
        (different image sizes) are comparable.  Default True.
    """

    supports_batch = True

    def __init__(self, *, circular: bool = False, normalize: bool = True) -> None:
        self._circular = circular
        self._normalize = normalize

    @property
    def name(self) -> str:
        return "circular_match" if self._circular else "match"

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, self.name)
        if self._normalize:
            mass_a, mass_b = float(a.sum()), float(b.sum())
            if mass_a <= 0.0 or mass_b <= 0.0:
                return 0.0 if mass_a == mass_b else 1.0
            a = a / mass_a
            b = b / mass_b
        if self._circular:
            return circular_match_distance(a, b)
        return match_distance(a, b)

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Vectorized kernel: one stacked cumsum per candidate matrix.

        Normalization divides each row by its own mass (the same
        elementwise floats the scalar path produces), rows with
        non-positive mass take the scalar path's degenerate 0/1 answers,
        and the surviving block goes through the stacked kernel — row
        ``i`` equals ``distance(query, vectors[i])`` bit for bit.
        """
        query, vectors = validate_batch_operands(query, vectors, self.name)
        n = vectors.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.float64)
        kernel = (
            circular_match_distance_batch if self._circular else match_distance_batch
        )
        if not self._normalize:
            return kernel(query, vectors)
        mass_q = float(query.sum())
        masses = vectors.sum(axis=1)
        degenerate = (masses <= 0.0) | (mass_q <= 0.0)
        if not np.any(degenerate):
            return kernel(query / mass_q, vectors / masses[:, None])
        out = np.empty(n, dtype=np.float64)
        out[degenerate] = np.where(masses[degenerate] == mass_q, 0.0, 1.0)
        live = ~degenerate
        if np.any(live):
            out[live] = kernel(
                query / mass_q, vectors[live] / masses[live][:, None]
            )
        return out
