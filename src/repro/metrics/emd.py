"""Match distance: the 1-D earth mover's distance between histograms.

For histograms over an *ordered* domain (intensity levels, distance-
transform cells) the right notion of difference is how much mass must be
moved how far, not how bins differ point-wise.  In one dimension the
earth mover's distance has a closed form: the L1 distance between the
cumulative distributions,

    EMD(h, g) = sum_i | H_i - G_i |,   H, G = prefix sums of h, g.

This is Werman's *match distance*; it is a true metric on equal-mass
histograms.  A circular variant handles periodic domains (hue,
orientation) by optimally choosing the cut point (Pele & Werman's
closed form: subtract the median of the CDF differences).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric, validate_same_shape

__all__ = ["MatchDistance", "circular_match_distance", "match_distance"]


def match_distance(h: np.ndarray, g: np.ndarray) -> float:
    """1-D EMD between two same-mass non-negative histograms."""
    h, g = validate_same_shape(h, g, "match")
    if np.any(h < 0) or np.any(g < 0):
        raise MetricError("match distance requires non-negative histograms")
    mass_h, mass_g = float(h.sum()), float(g.sum())
    if not np.isclose(mass_h, mass_g, rtol=1e-6, atol=1e-9):
        raise MetricError(
            f"match distance requires equal masses; got {mass_h:.6g} vs {mass_g:.6g}"
        )
    return float(np.abs(np.cumsum(h - g)).sum())


def circular_match_distance(h: np.ndarray, g: np.ndarray) -> float:
    """1-D EMD on a circular domain (optimal cut via the median shift)."""
    h, g = validate_same_shape(h, g, "circular-match")
    if np.any(h < 0) or np.any(g < 0):
        raise MetricError("match distance requires non-negative histograms")
    if not np.isclose(float(h.sum()), float(g.sum()), rtol=1e-6, atol=1e-9):
        raise MetricError("circular match distance requires equal masses")
    cdf_diff = np.cumsum(h - g)
    return float(np.abs(cdf_diff - np.median(cdf_diff)).sum())


class MatchDistance(Metric):
    """Metric wrapper around :func:`match_distance`.

    Parameters
    ----------
    circular:
        Treat the histogram domain as periodic (hue, edge orientation).
    normalize:
        L1-normalize operands first, so histograms of different total mass
        (different image sizes) are comparable.  Default True.
    """

    def __init__(self, *, circular: bool = False, normalize: bool = True) -> None:
        self._circular = circular
        self._normalize = normalize

    @property
    def name(self) -> str:
        return "circular_match" if self._circular else "match"

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, self.name)
        if self._normalize:
            mass_a, mass_b = float(a.sum()), float(b.sum())
            if mass_a <= 0.0 or mass_b <= 0.0:
                return 0.0 if mass_a == mass_b else 1.0
            a = a / mass_a
            b = b / mass_b
        if self._circular:
            return circular_match_distance(a, b)
        return match_distance(a, b)
