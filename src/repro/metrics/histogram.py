"""Histogram-specific dissimilarity measures.

These exploit the fact that histograms are probability mass functions:

* **Histogram intersection** (Swain & Ballard) — the paper's equation (5):
  ``sum_i min(h_i, g_i)`` normalized by the smaller histogram's mass,
  turned into a dissimilarity as ``1 - intersection``.  Colors absent
  from the query contribute nothing, which suppresses background.
* **Chi-square** — bin differences discounted by bin mass; a statistics
  staple but *not* a metric (triangle inequality fails), so only scan
  indexes accept it.
* **Bhattacharyya** — the angle form ``arccos(sum_i sqrt(h_i g_i))``,
  which is the geodesic distance on the probability simplex and hence a
  proper metric.

All three carry vectorized batch kernels; the scalar ``distance`` runs
the same kernel on a one-row matrix so scalar and batched results are
bit-identical (degenerate empty-histogram cases included, handled with
``np.where`` branches that mirror the scalar definitions).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric, validate_batch_operands, validate_same_shape

__all__ = ["HistogramIntersection", "ChiSquareDistance", "BhattacharyyaDistance"]


def _check_nonnegative(a: np.ndarray, name: str) -> None:
    if np.any(a < -1e-12):
        raise MetricError(f"{name}: histograms must be non-negative")


class HistogramIntersection(Metric):
    """``1 - sum(min(h, g)) / min(|h|, |g|)`` over non-negative histograms.

    On L1-normalized inputs this equals half the L1 distance, which is why
    ``is_metric`` is True.  The normalization by the smaller mass follows
    the paper: the sum "is normalized by the histogram with fewest
    samples".  Two empty histograms are defined to be identical.
    """

    supports_batch = True

    @staticmethod
    def _kernel(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        mass_q = query.sum()
        masses = vectors.sum(axis=1)
        smaller = np.minimum(masses, mass_q)
        larger = np.maximum(masses, mass_q)
        overlap = np.minimum(vectors, query).sum(axis=1)
        # An empty histogram is identical to another empty one (distance
        # 0) and maximally far (1) from any non-empty one.
        safe = np.where(smaller > 0.0, smaller, 1.0)
        return np.where(
            smaller > 0.0,
            1.0 - overlap / safe,
            np.where(larger <= 0.0, 0.0, 1.0),
        )

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "intersection")
        _check_nonnegative(a, "intersection")
        _check_nonnegative(b, "intersection")
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "intersection")
        _check_nonnegative(query, "intersection")
        _check_nonnegative(vectors, "intersection")
        return self._kernel(query, vectors)


class ChiSquareDistance(Metric):
    """Symmetric chi-square: ``0.5 * sum (h-g)^2 / (h+g)`` (empty bins skip).

    Emphasizes differences in low-mass bins.  Not a true metric.
    """

    is_metric = False
    supports_batch = True

    @staticmethod
    def _kernel(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        total = query + vectors
        diff = query - vectors
        safe = np.where(total > 0.0, total, 1.0)
        contributions = np.where(total > 0.0, diff * diff / safe, 0.0)
        return 0.5 * contributions.sum(axis=1)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "chi2")
        _check_nonnegative(a, "chi2")
        _check_nonnegative(b, "chi2")
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "chi2")
        _check_nonnegative(query, "chi2")
        _check_nonnegative(vectors, "chi2")
        return self._kernel(query, vectors)


class BhattacharyyaDistance(Metric):
    """Bhattacharyya angle: ``arccos( sum sqrt(h_i * g_i) )``.

    Operands are L1-normalized internally so the coefficient lies in
    [0, 1]; the arccos form (Fisher-Rao geodesic up to scale) satisfies
    the triangle inequality, unlike the common ``-log`` form.
    """

    supports_batch = True

    @staticmethod
    def _kernel(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        mass_q = query.sum()
        masses = vectors.sum(axis=1)
        valid = (masses > 0.0) & (mass_q > 0.0)
        normalized_q = np.clip(query / mass_q, 0, None) if mass_q > 0.0 else query
        safe_masses = np.where(masses > 0.0, masses, 1.0)
        normalized = np.clip(vectors / safe_masses[:, None], 0, None)
        coefficients = np.sqrt(normalized_q * normalized).sum(axis=1)
        angles = np.arccos(np.clip(coefficients, -1.0, 1.0))
        # Empty vs. empty is identical; empty vs. non-empty is maximal.
        return np.where(valid, angles, np.where(masses == mass_q, 0.0, np.pi / 2.0))

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "bhattacharyya")
        _check_nonnegative(a, "bhattacharyya")
        _check_nonnegative(b, "bhattacharyya")
        return float(self._kernel(a, b[None, :])[0])

    def distance_batch(self, query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        query, vectors = validate_batch_operands(query, vectors, "bhattacharyya")
        _check_nonnegative(query, "bhattacharyya")
        _check_nonnegative(vectors, "bhattacharyya")
        return self._kernel(query, vectors)
