"""Histogram-specific dissimilarity measures.

These exploit the fact that histograms are probability mass functions:

* **Histogram intersection** (Swain & Ballard) — the paper's equation (5):
  ``sum_i min(h_i, g_i)`` normalized by the smaller histogram's mass,
  turned into a dissimilarity as ``1 - intersection``.  Colors absent
  from the query contribute nothing, which suppresses background.
* **Chi-square** — bin differences discounted by bin mass; a statistics
  staple but *not* a metric (triangle inequality fails), so only scan
  indexes accept it.
* **Bhattacharyya** — the angle form ``arccos(sum_i sqrt(h_i g_i))``,
  which is the geodesic distance on the probability simplex and hence a
  proper metric.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metrics.base import Metric, validate_same_shape

__all__ = ["HistogramIntersection", "ChiSquareDistance", "BhattacharyyaDistance"]


def _check_nonnegative(a: np.ndarray, name: str) -> None:
    if np.any(a < -1e-12):
        raise MetricError(f"{name}: histograms must be non-negative")


class HistogramIntersection(Metric):
    """``1 - sum(min(h, g)) / min(|h|, |g|)`` over non-negative histograms.

    On L1-normalized inputs this equals half the L1 distance, which is why
    ``is_metric`` is True.  The normalization by the smaller mass follows
    the paper: the sum "is normalized by the histogram with fewest
    samples".  Two empty histograms are defined to be identical.
    """

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "intersection")
        _check_nonnegative(a, "intersection")
        _check_nonnegative(b, "intersection")
        smaller_mass = min(float(a.sum()), float(b.sum()))
        if smaller_mass <= 0.0:
            return 0.0 if max(float(a.sum()), float(b.sum())) <= 0.0 else 1.0
        overlap = float(np.minimum(a, b).sum())
        return 1.0 - overlap / smaller_mass


class ChiSquareDistance(Metric):
    """Symmetric chi-square: ``0.5 * sum (h-g)^2 / (h+g)`` (empty bins skip).

    Emphasizes differences in low-mass bins.  Not a true metric.
    """

    is_metric = False

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "chi2")
        _check_nonnegative(a, "chi2")
        _check_nonnegative(b, "chi2")
        total = a + b
        mask = total > 0.0
        if not np.any(mask):
            return 0.0
        diff = a[mask] - b[mask]
        return float(0.5 * np.sum(diff * diff / total[mask]))


class BhattacharyyaDistance(Metric):
    """Bhattacharyya angle: ``arccos( sum sqrt(h_i * g_i) )``.

    Operands are L1-normalized internally so the coefficient lies in
    [0, 1]; the arccos form (Fisher-Rao geodesic up to scale) satisfies
    the triangle inequality, unlike the common ``-log`` form.
    """

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = validate_same_shape(a, b, "bhattacharyya")
        _check_nonnegative(a, "bhattacharyya")
        _check_nonnegative(b, "bhattacharyya")
        mass_a = float(a.sum())
        mass_b = float(b.sum())
        if mass_a <= 0.0 or mass_b <= 0.0:
            return 0.0 if mass_a == mass_b else float(np.pi / 2.0)
        coefficient = float(np.sqrt(np.clip(a / mass_a, 0, None) * np.clip(b / mass_b, 0, None)).sum())
        return float(np.arccos(np.clip(coefficient, -1.0, 1.0)))
