"""Distance-distribution statistics of a dataset under a metric.

Two quantities steer the index experiments:

* the **intrinsic dimensionality** estimate of Chávez et al.,
  ``rho = mu^2 / (2 sigma^2)`` over the pairwise-distance distribution —
  the single number that predicts how prunable a dataset is (uniform
  high-dimensional data: large rho, hopeless; clustered data: small rho,
  easy);
* the **radius for a target selectivity** — experiment F3 sweeps range
  queries from 1% to 50% selectivity, and the radius achieving a given
  selectivity is a quantile of the same pairwise-distance sample.

Both work from a random sample of pairs, so they stay cheap on any
dataset size.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.metrics.base import Metric

__all__ = [
    "distance_sample",
    "intrinsic_dimensionality",
    "estimate_radius_for_selectivity",
    "distance_histogram",
]


def distance_sample(
    metric: Metric,
    vectors: np.ndarray,
    *,
    n_pairs: int = 2000,
    seed: int = 0,
) -> np.ndarray:
    """Distances of ``n_pairs`` random (distinct) vector pairs."""
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[0] < 2:
        raise ReproError(
            f"need a (n >= 2, d) vector array; got shape {vectors.shape}"
        )
    if n_pairs < 1:
        raise ReproError(f"n_pairs must be >= 1; got {n_pairs}")
    rng = np.random.default_rng(seed)
    n = vectors.shape[0]
    first = rng.integers(n, size=n_pairs)
    second = rng.integers(n - 1, size=n_pairs)
    second = np.where(second >= first, second + 1, second)  # distinct pairs
    return np.array(
        [metric.distance(vectors[i], vectors[j]) for i, j in zip(first, second)]
    )


def intrinsic_dimensionality(
    metric: Metric,
    vectors: np.ndarray,
    *,
    n_pairs: int = 2000,
    seed: int = 0,
) -> float:
    """Chávez et al. intrinsic dimensionality ``mu^2 / (2 sigma^2)``.

    Larger values mean the distance distribution is concentrated (all
    points roughly equidistant) and triangle-inequality pruning buys
    little; values of a few units or less mean trees prune well.
    """
    sample = distance_sample(metric, vectors, n_pairs=n_pairs, seed=seed)
    mean = float(sample.mean())
    variance = float(sample.var())
    if variance <= 0.0:
        return np.inf if mean > 0.0 else 0.0
    return mean * mean / (2.0 * variance)


def estimate_radius_for_selectivity(
    metric: Metric,
    vectors: np.ndarray,
    selectivity: float,
    *,
    n_pairs: int = 2000,
    seed: int = 0,
) -> float:
    """Radius whose range query returns about ``selectivity * n`` items.

    The radius is the ``selectivity`` quantile of the pairwise-distance
    sample: by symmetry, a ball of that radius around a random point
    captures about that fraction of the data.
    """
    if not 0.0 < selectivity <= 1.0:
        raise ReproError(f"selectivity must lie in (0, 1]; got {selectivity}")
    sample = distance_sample(metric, vectors, n_pairs=n_pairs, seed=seed)
    return float(np.quantile(sample, selectivity))


def distance_histogram(
    metric: Metric,
    vectors: np.ndarray,
    *,
    bins: int = 32,
    n_pairs: int = 2000,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram (counts, bin_edges) of the pairwise-distance sample."""
    if bins < 1:
        raise ReproError(f"bins must be >= 1; got {bins}")
    sample = distance_sample(metric, vectors, n_pairs=n_pairs, seed=seed)
    counts, edges = np.histogram(sample, bins=bins)
    return counts.astype(np.float64), edges
