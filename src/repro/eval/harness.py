"""Workload runners and report formatting shared by the benchmarks.

Each benchmark answers one experiment from DESIGN.md; the harness keeps
them uniform: run a batch of queries against an index, average the cost
counters, and print rows through one ASCII table formatter so
``pytest benchmarks/`` output reads like the paper's tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.index.base import MetricIndex
from repro.index.stats import SearchStats

__all__ = [
    "QueryWorkloadResult",
    "run_knn_workload",
    "run_range_workload",
    "ascii_table",
    "format_float",
]


@dataclass
class QueryWorkloadResult:
    """Averaged cost of a query workload against one index.

    ``mean_*`` fields average over queries; ``stats`` keeps the raw
    per-query counters for anyone needing distributions.
    """

    n_queries: int
    mean_distance_computations: float
    mean_nodes_visited: float
    mean_nodes_pruned: float
    mean_latency_seconds: float
    mean_result_size: float
    stats: list[SearchStats] = field(default_factory=list)

    @property
    def speedup_vs_scan(self) -> float | None:
        """Filled in by callers that also ran the linear baseline."""
        return getattr(self, "_speedup", None)

    def set_speedup(self, baseline_distance_computations: float) -> None:
        """Record speedup relative to a baseline's distance count."""
        if self.mean_distance_computations > 0:
            self._speedup = baseline_distance_computations / self.mean_distance_computations
        else:
            self._speedup = float("inf")


def run_knn_workload(
    index: MetricIndex, queries: np.ndarray, k: int
) -> QueryWorkloadResult:
    """Run ``knn_search`` for every query row; average the counters."""
    return _run_workload(index, queries, lambda q: index.knn_search(q, k))


def run_range_workload(
    index: MetricIndex, queries: np.ndarray, radius: float
) -> QueryWorkloadResult:
    """Run ``range_search`` for every query row; average the counters."""
    return _run_workload(index, queries, lambda q: index.range_search(q, radius))


def _run_workload(index, queries, run_one) -> QueryWorkloadResult:
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim == 1:
        queries = queries[None, :]
    if queries.shape[0] == 0:
        raise ReproError("empty query workload")

    all_stats: list[SearchStats] = []
    total_latency = 0.0
    total_results = 0
    for query in queries:
        started = time.perf_counter()
        results = run_one(query)
        total_latency += time.perf_counter() - started
        total_results += len(results)
        all_stats.append(index.last_stats)

    n = queries.shape[0]
    return QueryWorkloadResult(
        n_queries=n,
        mean_distance_computations=float(
            np.mean([s.distance_computations for s in all_stats])
        ),
        mean_nodes_visited=float(np.mean([s.nodes_visited for s in all_stats])),
        mean_nodes_pruned=float(np.mean([s.nodes_pruned for s in all_stats])),
        mean_latency_seconds=total_latency / n,
        mean_result_size=total_results / n,
        stats=all_stats,
    )


def format_float(value: float, *, digits: int = 3) -> str:
    """Compact numeric formatting for table cells."""
    if value != value:  # NaN
        return "nan"
    if value == float("inf"):
        return "inf"
    if value == 0:
        return "0"
    if abs(value) >= 10000 or abs(value) < 0.001:
        return f"{value:.{digits}g}"
    return f"{value:.{digits}f}".rstrip("0").rstrip(".")


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str | None = None
) -> str:
    """Render a padded ASCII table (the benches' output format)."""
    if not headers:
        raise ReproError("table needs headers")
    text_rows = [
        [
            cell if isinstance(cell, str) else format_float(float(cell))
            for cell in row
        ]
        for row in rows
    ]
    for row in text_rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in text_rows), 1)
        if text_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
