"""Retrieval-quality metrics: precision/recall family.

These are the standard information-retrieval scores of the reproduced
paper's era (precision@k, recall@k, average precision, and their means
over a query workload), computed over ranked id lists against
:class:`~repro.eval.groundtruth.RelevanceJudgments`-style relevant sets.

Conventions: the query itself must already be excluded from the ranking
by the caller (the harness does this); duplicate ids in a ranking are an
error since they would silently inflate precision.
"""

from __future__ import annotations

from typing import AbstractSet, Mapping, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "f1_score",
    "average_precision",
    "mean_average_precision",
    "mean_precision_at_k",
    "precision_recall_curve",
]


def _check_ranking(ranking: Sequence[int]) -> list[int]:
    ids = [int(i) for i in ranking]
    if len(set(ids)) != len(ids):
        raise ReproError("ranking contains duplicate ids")
    return ids


def precision_at_k(
    ranking: Sequence[int], relevant: AbstractSet[int], k: int
) -> float:
    """Fraction of the top-k that is relevant.

    If the ranking is shorter than ``k`` the denominator is still ``k``
    (missing results are wrong results).
    """
    if k < 1:
        raise ReproError(f"k must be >= 1; got {k}")
    ids = _check_ranking(ranking)[:k]
    hits = sum(1 for item_id in ids if item_id in relevant)
    return hits / k


def recall_at_k(ranking: Sequence[int], relevant: AbstractSet[int], k: int) -> float:
    """Fraction of the relevant set found in the top-k (1.0 if none exist)."""
    if k < 1:
        raise ReproError(f"k must be >= 1; got {k}")
    if not relevant:
        return 1.0
    ids = _check_ranking(ranking)[:k]
    hits = sum(1 for item_id in ids if item_id in relevant)
    return hits / len(relevant)


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision < 0.0 or recall < 0.0:
        raise ReproError("precision and recall must be non-negative")
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def average_precision(ranking: Sequence[int], relevant: AbstractSet[int]) -> float:
    """Average of precision@rank over the ranks of relevant hits.

    Normalized by the size of the relevant set, so missing relevant items
    lower the score.  Returns 1.0 for an empty relevant set.
    """
    if not relevant:
        return 1.0
    ids = _check_ranking(ranking)
    hits = 0
    precision_sum = 0.0
    for rank, item_id in enumerate(ids, start=1):
        if item_id in relevant:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / len(relevant)


def mean_average_precision(
    rankings: Mapping[int, Sequence[int]],
    judgments: Mapping[int, AbstractSet[int]] | "object",
) -> float:
    """MAP over a query workload.

    ``judgments`` may be a mapping query-id -> relevant set or any object
    with a ``relevant(query_id)`` method (duck-typed to
    :class:`~repro.eval.groundtruth.RelevanceJudgments`).
    """
    if not rankings:
        raise ReproError("no rankings supplied")
    total = 0.0
    for query_id, ranking in rankings.items():
        relevant = _lookup_relevant(judgments, query_id)
        total += average_precision(ranking, relevant)
    return total / len(rankings)


def mean_precision_at_k(
    rankings: Mapping[int, Sequence[int]],
    judgments: Mapping[int, AbstractSet[int]] | "object",
    k: int,
) -> float:
    """Mean precision@k over a query workload."""
    if not rankings:
        raise ReproError("no rankings supplied")
    total = 0.0
    for query_id, ranking in rankings.items():
        relevant = _lookup_relevant(judgments, query_id)
        total += precision_at_k(ranking, relevant, k)
    return total / len(rankings)


def precision_recall_curve(
    ranking: Sequence[int], relevant: AbstractSet[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Precision and recall after each rank, as parallel arrays.

    Arrays have one entry per ranking position; an empty relevant set
    yields all-zero precision and all-one recall.
    """
    ids = _check_ranking(ranking)
    precision = np.zeros(len(ids))
    recall = np.zeros(len(ids))
    hits = 0
    for index, item_id in enumerate(ids):
        if item_id in relevant:
            hits += 1
        precision[index] = hits / (index + 1)
        recall[index] = hits / len(relevant) if relevant else 1.0
    return precision, recall


def _lookup_relevant(judgments: object, query_id: int) -> AbstractSet[int]:
    if hasattr(judgments, "relevant"):
        return judgments.relevant(query_id)  # type: ignore[union-attr]
    try:
        return judgments[query_id]  # type: ignore[index]
    except (KeyError, TypeError):
        raise ReproError(f"no judgments available for query id {query_id}") from None
