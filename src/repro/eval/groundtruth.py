"""Relevance judgments for retrieval-quality scoring.

With a synthetic corpus the notion of relevance is exact: two images are
relevant to each other iff they were drawn from the same class generator.
:class:`RelevanceJudgments` captures that as query-id -> relevant-id-set
and is consumed by :mod:`repro.eval.metrics`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import ReproError

__all__ = ["RelevanceJudgments"]


class RelevanceJudgments:
    """Ground-truth relevance sets per query.

    Build with :meth:`from_labels` for the standard same-label notion, or
    construct directly from an explicit mapping for custom ground truth.
    """

    def __init__(self, relevant: Mapping[int, frozenset[int]]) -> None:
        self._relevant = {int(q): frozenset(r) for q, r in relevant.items()}

    @classmethod
    def from_labels(
        cls, ids: Sequence[int], labels: Sequence[str]
    ) -> "RelevanceJudgments":
        """Same-label relevance: each item's relevant set is its classmates.

        The item itself is excluded from its own relevant set (retrieving
        the query is not an achievement).
        """
        if len(ids) != len(labels):
            raise ReproError(f"{len(ids)} ids but {len(labels)} labels")
        if len(set(ids)) != len(ids):
            raise ReproError("ids must be unique")
        by_label: dict[str, set[int]] = {}
        for item_id, label in zip(ids, labels):
            by_label.setdefault(label, set()).add(int(item_id))
        relevant = {
            int(item_id): frozenset(by_label[label] - {int(item_id)})
            for item_id, label in zip(ids, labels)
        }
        return cls(relevant)

    def relevant(self, query_id: int) -> frozenset[int]:
        """The relevant set of a query id."""
        try:
            return self._relevant[int(query_id)]
        except KeyError:
            raise ReproError(f"no judgments for query id {query_id}") from None

    def n_relevant(self, query_id: int) -> int:
        """Size of the relevant set."""
        return len(self.relevant(query_id))

    def query_ids(self) -> list[int]:
        """All query ids with judgments."""
        return list(self._relevant)

    def __len__(self) -> int:
        return len(self._relevant)

    def __contains__(self, query_id: int) -> bool:
        return int(query_id) in self._relevant

    def filter_queries(self, keep: Iterable[int]) -> "RelevanceJudgments":
        """Judgments restricted to a subset of query ids."""
        keep_set = {int(q) for q in keep}
        return RelevanceJudgments(
            {q: r for q, r in self._relevant.items() if q in keep_set}
        )
