"""Synthetic corpora with known class structure.

Eight image classes, chosen so that different feature families are needed
to separate different class pairs (this is what makes experiment T3
informative rather than trivially saturated):

==================  ==========================================================
Class               Separable mainly by
==================  ==========================================================
red_scenes          color (red-dominant shape scenes)
green_scenes        color (same layout statistics as red_scenes)
blue_gradients      color + smoothness (no edges)
checkerboards       texture (high-frequency regular, achromatic)
stripes_horizontal  texture orientation (edge-orientation features)
stripes_diagonal    texture orientation (vs. horizontal: same colors/energy)
noise_fine          texture statistics (white noise, no structure)
smooth_blobs        texture statistics (low-frequency value noise)
==================  ==========================================================

Every generator takes an explicit ``numpy.random.Generator``; corpora are
fully determined by (per_class, size, seed).

For the pure index experiments, vector datasets with controllable
dimensionality are provided: ``uniform_vectors`` (the hard,
high-intrinsic-dimension case) and ``gaussian_clusters`` (the clustered
case real image features resemble).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.image import synth
from repro.image.core import Image

__all__ = [
    "CORPUS_CLASS_NAMES",
    "make_class_image",
    "make_corpus",
    "make_corpus_images",
    "uniform_vectors",
    "gaussian_clusters",
]


def _red_scene(rng: np.random.Generator, size: int) -> Image:
    palette = [(0.85, 0.10, 0.10), (0.95, 0.30, 0.15), (0.75, 0.05, 0.20)]
    background = synth.solid(size, size, (0.55, 0.45, 0.40))
    return synth.compose_scene(
        size, size, rng, background=background, n_shapes=int(rng.integers(2, 5)),
        palette=palette,
    )


def _green_scene(rng: np.random.Generator, size: int) -> Image:
    palette = [(0.10, 0.75, 0.15), (0.20, 0.90, 0.30), (0.05, 0.60, 0.25)]
    background = synth.solid(size, size, (0.40, 0.50, 0.45))
    return synth.compose_scene(
        size, size, rng, background=background, n_shapes=int(rng.integers(2, 5)),
        palette=palette,
    )


def _blue_gradient(rng: np.random.Generator, size: int) -> Image:
    start = (0.05, 0.10, float(rng.uniform(0.45, 0.75)))
    end = (float(rng.uniform(0.25, 0.45)), float(rng.uniform(0.45, 0.65)), 0.95)
    if rng.random() < 0.5:
        return synth.linear_gradient(
            size, size, start, end, angle=float(rng.uniform(0.0, np.pi))
        )
    return synth.radial_gradient(size, size, end, start)


def _checkerboard(rng: np.random.Generator, size: int) -> Image:
    cell = int(rng.integers(max(2, size // 16), max(3, size // 6)))
    dark = float(rng.uniform(0.0, 0.15))
    light = float(rng.uniform(0.85, 1.0))
    return synth.checkerboard(size, size, cell, (dark,) * 3, (light,) * 3)


def _stripes_horizontal(rng: np.random.Generator, size: int) -> Image:
    # Horizontal bands: intensity varies with y, so the stripe normal
    # points along y (angle pi/2), jittered a few degrees.
    angle = np.pi / 2.0 + float(rng.uniform(-0.06, 0.06))
    period = float(rng.uniform(size / 12.0, size / 5.0))
    dark = float(rng.uniform(0.05, 0.25))
    light = float(rng.uniform(0.75, 0.95))
    return synth.stripes(
        size, size, period, angle=angle, color_a=(dark,) * 3, color_b=(light,) * 3
    )


def _stripes_diagonal(rng: np.random.Generator, size: int) -> Image:
    angle = np.pi / 4.0 + float(rng.uniform(-0.06, 0.06))
    period = float(rng.uniform(size / 12.0, size / 5.0))
    dark = float(rng.uniform(0.05, 0.25))
    light = float(rng.uniform(0.75, 0.95))
    return synth.stripes(
        size, size, period, angle=angle, color_a=(dark,) * 3, color_b=(light,) * 3
    )


def _noise_fine(rng: np.random.Generator, size: int) -> Image:
    return synth.gaussian_noise_image(
        size, size, rng, mean=float(rng.uniform(0.4, 0.6)), std=0.2, channels=3
    )


def _smooth_blobs(rng: np.random.Generator, size: int) -> Image:
    return synth.value_noise(size, size, rng, scale=max(4, size // 4), channels=3)


_CLASS_GENERATORS = {
    "red_scenes": _red_scene,
    "green_scenes": _green_scene,
    "blue_gradients": _blue_gradient,
    "checkerboards": _checkerboard,
    "stripes_horizontal": _stripes_horizontal,
    "stripes_diagonal": _stripes_diagonal,
    "noise_fine": _noise_fine,
    "smooth_blobs": _smooth_blobs,
}

#: The class labels, in canonical order.
CORPUS_CLASS_NAMES: tuple[str, ...] = tuple(_CLASS_GENERATORS)


def make_class_image(label: str, rng: np.random.Generator, *, size: int = 64) -> Image:
    """One random image of the named class."""
    try:
        generator = _CLASS_GENERATORS[label]
    except KeyError:
        raise ReproError(
            f"unknown corpus class {label!r}; available: {CORPUS_CLASS_NAMES}"
        ) from None
    return generator(rng, size)


def make_corpus(
    per_class: int,
    *,
    size: int = 64,
    seed: int = 0,
    classes: tuple[str, ...] | None = None,
) -> list[tuple[Image, str]]:
    """A labelled corpus: ``per_class`` images of each class.

    Returns ``(image, label)`` pairs in interleaved class order, fully
    determined by the arguments.
    """
    if per_class < 1:
        raise ReproError(f"per_class must be >= 1; got {per_class}")
    classes = classes if classes is not None else CORPUS_CLASS_NAMES
    rng = np.random.default_rng(seed)
    corpus: list[tuple[Image, str]] = []
    for _ in range(per_class):
        for label in classes:
            corpus.append((make_class_image(label, rng, size=size), label))
    return corpus


def make_corpus_images(
    per_class: int, *, size: int = 64, seed: int = 0
) -> tuple[list[Image], list[str]]:
    """Like :func:`make_corpus` but as parallel lists."""
    pairs = make_corpus(per_class, size=size, seed=seed)
    return [image for image, _ in pairs], [label for _, label in pairs]


def uniform_vectors(n: int, dim: int, *, seed: int = 0) -> np.ndarray:
    """``n`` points uniform in the unit cube — the index's worst case.

    Uniform data has maximal intrinsic dimensionality for its embedding
    dimension, which is what drives the curse-of-dimensionality curve in
    experiment F2.
    """
    if n < 1 or dim < 1:
        raise ReproError(f"need n >= 1 and dim >= 1; got n={n}, dim={dim}")
    return np.random.default_rng(seed).random((n, dim))


def gaussian_clusters(
    n: int,
    dim: int,
    *,
    n_clusters: int = 8,
    cluster_std: float = 0.05,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Clustered vectors: ``n_clusters`` Gaussian blobs in the unit cube.

    Returns ``(vectors, labels)``.  Clustered data keeps a low intrinsic
    dimensionality regardless of the embedding dimension — the structure
    real image signatures have and the reason metric trees stay useful on
    them (experiment F2's second series).
    """
    if n < 1 or dim < 1 or n_clusters < 1:
        raise ReproError(
            f"need positive sizes; got n={n}, dim={dim}, n_clusters={n_clusters}"
        )
    if cluster_std < 0.0:
        raise ReproError(f"cluster_std must be non-negative; got {cluster_std}")
    rng = np.random.default_rng(seed)
    centers = rng.random((n_clusters, dim))
    labels = rng.integers(n_clusters, size=n)
    vectors = centers[labels] + rng.normal(0.0, cluster_std, (n, dim))
    return vectors, labels
