"""Evaluation substrate: corpora, ground truth, quality metrics, harness.

The 1994 evaluation ran on proprietary photo collections; this package
replaces them (per the reproduction's substitution rule) with seeded
synthetic corpora whose *class structure is known*, so retrieval quality
can be scored exactly:

:mod:`~repro.eval.datasets`
    Labelled image corpora (8 visually distinct classes with intra-class
    variation) and synthetic vector datasets (uniform / clustered) for
    the pure index experiments.
:mod:`~repro.eval.groundtruth`
    Relevance judgments derived from class labels.
:mod:`~repro.eval.metrics`
    precision@k, recall@k, average precision, MAP, PR curves.
:mod:`~repro.eval.stats`
    Distance-distribution statistics, intrinsic dimensionality, and
    radius-for-selectivity estimation.
:mod:`~repro.eval.harness`
    Workload runners and table formatting shared by the benchmarks.
"""

from repro.eval.datasets import (
    CORPUS_CLASS_NAMES,
    gaussian_clusters,
    make_corpus,
    make_corpus_images,
    uniform_vectors,
)
from repro.eval.groundtruth import RelevanceJudgments
from repro.eval.metrics import (
    average_precision,
    f1_score,
    mean_average_precision,
    precision_at_k,
    precision_recall_curve,
    recall_at_k,
)
from repro.eval.stats import (
    distance_sample,
    estimate_radius_for_selectivity,
    intrinsic_dimensionality,
)
from repro.eval.harness import (
    QueryWorkloadResult,
    ascii_table,
    run_knn_workload,
    run_range_workload,
)

__all__ = [
    "CORPUS_CLASS_NAMES",
    "make_corpus",
    "make_corpus_images",
    "uniform_vectors",
    "gaussian_clusters",
    "RelevanceJudgments",
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "mean_average_precision",
    "precision_recall_curve",
    "f1_score",
    "distance_sample",
    "intrinsic_dimensionality",
    "estimate_radius_for_selectivity",
    "QueryWorkloadResult",
    "run_knn_workload",
    "run_range_workload",
    "ascii_table",
]
