"""Filesystem primitives behind injectable crash boundaries.

Durability code is only as trustworthy as its behaviour *between* the
syscalls — a crash can land after any write, before any fsync, between
a rename and its directory flush.  Every durability-relevant syscall in
the journal, snapshot, and atomic-save paths therefore goes through a
:class:`FileSystem` object instead of calling ``os`` directly.  The
default :data:`REAL_FS` is a thin passthrough; the fault-injection
harness (``tests/faults.py``) substitutes a shim that counts these
boundaries and kills the process (or raises) at a chosen one, which is
how the crash-recovery suite proves "an acknowledged write survives a
kill -9 at *any* boundary" instead of asserting it.

The boundary vocabulary is deliberately small:

``write``
    Buffered bytes handed to the OS (may still be lost on crash).
``fsync``
    The durability point for file contents.
``replace``
    Atomic rename onto the destination (the commit point of every
    atomic write — readers see the old bytes or the new, never a mix).
``fsync_dir``
    Durability point for the rename itself (directory entry).

:func:`atomic_write_bytes` composes them into the canonical
write-temp → fsync → rename → fsync-dir sequence used for catalogs,
configs, manifests, and journal resets.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import BinaryIO

__all__ = [
    "FileSystem",
    "REAL_FS",
    "atomic_write_bytes",
    "fsync_file",
]


class FileSystem:
    """Real filesystem operations, one method per crash boundary."""

    def write(self, file: BinaryIO, data: bytes) -> None:
        """Write bytes to an open file (buffered; not yet durable)."""
        file.write(data)

    def fsync(self, file: BinaryIO) -> None:
        """Flush and fsync an open file — its contents' durability point."""
        file.flush()
        os.fsync(file.fileno())

    def replace(self, src: str | Path, dst: str | Path) -> None:
        """Atomically rename ``src`` onto ``dst`` (POSIX rename)."""
        os.replace(src, dst)

    def fsync_dir(self, path: str | Path) -> None:
        """Fsync a directory so renames/creates inside it are durable."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


#: The production filesystem: every call goes straight to the OS.
REAL_FS = FileSystem()


def atomic_write_bytes(
    path: str | Path, data: bytes, *, fs: FileSystem = REAL_FS
) -> None:
    """Atomically replace ``path`` with ``data``.

    Writes to ``path + '.tmp'``, fsyncs it, renames it onto ``path``,
    then fsyncs the parent directory.  A crash anywhere leaves either
    the old file or the new one — never a truncated or interleaved mix.
    (A stale ``.tmp`` from an earlier crash is simply overwritten.)
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as file:
        fs.write(file, data)
        fs.fsync(file)
    fs.replace(tmp, path)
    fs.fsync_dir(path.parent)


def fsync_file(path: str | Path, *, fs: FileSystem = REAL_FS) -> None:
    """Fsync an already-written file by path (snapshot feature stores)."""
    with open(path, "rb") as file:
        fs.fsync(file)
