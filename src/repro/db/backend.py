"""Pluggable row-storage backends for index core arrays.

The 1994 paper prices every query in disk-page touches, yet until this
module the core ``(n, d)`` arrays behind every index lived entirely in
RAM — a database larger than memory could not serve at all.  A
:class:`VectorBackend` owns the row storage behind the operations the
engine actually needs:

``view()``
    The live rows as a read-only ``(n, d)`` array.  Zero-copy for the
    memory backend, an OS-paged ``np.memmap`` for the mmap backend —
    either way safe to hand to query code, and a view taken before an
    ``append`` remains valid (appends never change the bytes of live
    rows).  Callers must refresh any held view after ``take``.
``rows(indices)``
    A copied ``(len(indices), d)`` gather.  On a bounded backend this
    routes through the LRU :class:`~repro.db.bufferpool.BufferPool`, so
    random refinement reads are counted and capped.
``iter_blocks()``
    The live rows in contiguous ``(start, block)`` chunks.  Bounded
    backends yield one buffer-pool page at a time, which is how a
    linear scan over a larger-than-RAM core keeps resident memory at
    ``cache_pages`` pages; the memory backend yields the whole view.
``append(rows)`` / ``take(keep)``
    The two mutations :class:`~repro.index.base.MetricIndex` performs.
    Both return the fresh live view.
``flush()`` / ``close()``
    Durability point and resource release.  Backend files are derived
    state (the journal + snapshots of ``docs/durability.md`` are the
    durability source), so ``close`` may delete them.

Backends register under a spec name with :func:`register_backend`; a
third backend needs exactly one decorated factory class to join the
registry *and* the conformance suite (``tests/test_backend_conformance
.py`` parametrizes over :data:`BACKENDS`).  Spec strings are
``"memory"``, ``"mmap"`` (scratch root under ``$TMPDIR``) or
``"mmap:ROOT"``; :func:`resolve_backend_factory` parses them and honours
the ``REPRO_BACKEND`` / ``REPRO_CACHE_PAGES`` environment defaults.

The contract every backend must keep (``docs/storage.md``): results are
**bit-exact** across backends.  The metric kernels are BLAS-free and
row-independent, so computing distances block-by-block through pool
pages yields the same bits as one whole-matrix call — which is what the
conformance and serving-parity suites pin down.
"""

from __future__ import annotations

import os
import struct
import tempfile
import threading
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.db.fsutil import REAL_FS, FileSystem
from repro.db.store import FeatureStore
from repro.errors import IndexingError, StoreError

__all__ = [
    "VectorBackend",
    "MemoryBackend",
    "MmapBackend",
    "BackendFactory",
    "MemoryBackendFactory",
    "MmapBackendFactory",
    "BACKENDS",
    "register_backend",
    "resolve_backend_factory",
]

#: Smallest capacity :class:`MemoryBackend` ever allocates (keeps tiny
#: indexes from reallocating on every one of their first few appends).
_MIN_CAPACITY = 8

_HEADER_BYTES = struct.calcsize("<8sqqq")  # FeatureStore header size


class VectorBackend:
    """The storage protocol behind every index's core ``(n, d)`` rows."""

    __slots__ = ()

    #: Registry spec name of the backend family.
    name: str = "abstract"
    #: True when reads route through a fixed-size buffer pool, i.e. the
    #: engine must touch rows via :meth:`rows`/:meth:`iter_blocks` to
    #: keep resident memory bounded instead of assuming a cheap
    #: whole-matrix :meth:`view`.
    bounded: bool = False

    @property
    def n_rows(self) -> int:
        """Live rows (the length of :meth:`view`)."""
        raise NotImplementedError

    @property
    def dim(self) -> int:
        """Row dimensionality."""
        raise NotImplementedError

    def __len__(self) -> int:
        return self.n_rows

    def view(self) -> np.ndarray:
        """The live ``(n, d)`` rows as a read-only array."""
        raise NotImplementedError

    def rows(self, indices: Iterable[int]) -> np.ndarray:
        """A copied ``(len(indices), d)`` gather of the given rows."""
        raise NotImplementedError

    def iter_blocks(self) -> Iterator[tuple[int, np.ndarray]]:
        """The live rows in contiguous ``(start_row, block)`` chunks."""
        raise NotImplementedError

    def append(self, rows: np.ndarray) -> np.ndarray:
        """Append validated rows; returns the fresh live view."""
        raise NotImplementedError

    def take(self, keep: np.ndarray) -> np.ndarray:
        """Keep only the rows indexed by ascending ``keep`` positions;
        returns the fresh live view (held views must be refreshed)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make the current contents durable (no-op in memory)."""

    def close(self) -> None:
        """Release resources; backend files are scratch and may be
        deleted.  Idempotent."""

    def pool_stats(self) -> dict:
        """Buffer-pool counters: hits/misses/evictions/resident/capacity
        (all zero for unbounded backends)."""
        return {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "resident": 0,
            "capacity": 0,
        }


class MemoryBackend(VectorBackend):
    """A ``(n, d)`` float64 row store with amortized-O(1) appends.

    The classic capacity-doubling vector: rows live at the front of a
    larger backing allocation, appends write into the spare tail, and
    the backing array is only reallocated (and copied once) when the
    spare runs out — so a stream of ``m`` single-row appends costs
    O(n + m) row copies total instead of the O(m·n) that re-stacking
    the whole matrix per append costs.  Removals compact the kept rows
    to the front in one pass and shrink the allocation when occupancy
    falls below a quarter, so capacity stays O(live rows).

    :meth:`view` returns the live rows as a **read-only view** of the
    backing array — zero-copy, safe to hand to query code.  Appends
    only ever write *past* the live region and removals are the only
    writes inside it, so a view taken before an append remains valid;
    callers that compact (``take``) must refresh any view they hold,
    which :class:`~repro.index.base.MetricIndex` does by reassigning
    ``_vectors`` on every mutation.

    Also importable as ``repro.index.base.GrowableRows``, its name
    before the backend protocol existed.
    """

    __slots__ = ("_rows", "_n")

    name = "memory"
    bounded = False

    def __init__(self, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise IndexingError(
                f"{type(self).__name__} needs an (n, d) array; "
                f"got shape {rows.shape}"
            )
        self._n = int(rows.shape[0])
        capacity = max(self._n, _MIN_CAPACITY)
        self._rows = np.empty((capacity, rows.shape[1]), dtype=np.float64)
        self._rows[: self._n] = rows

    @property
    def n_rows(self) -> int:
        return self._n

    @property
    def dim(self) -> int:
        return int(self._rows.shape[1])

    @property
    def capacity(self) -> int:
        """Rows the backing allocation can hold before the next realloc."""
        return int(self._rows.shape[0])

    @property
    def base(self) -> np.ndarray:
        """The backing array (identity only changes on realloc) — lets
        tests assert appends are not recopying storage."""
        return self._rows

    def view(self) -> np.ndarray:
        view = self._rows[: self._n]
        view.setflags(write=False)
        return view

    def rows(self, indices: Iterable[int]) -> np.ndarray:
        index = np.asarray(list(indices), dtype=np.intp)
        return self._rows[: self._n][index]  # fancy indexing copies

    def iter_blocks(self) -> Iterator[tuple[int, np.ndarray]]:
        if self._n:
            yield 0, self.view()

    def append(self, rows: np.ndarray) -> np.ndarray:
        """Append validated rows; returns the fresh live view.

        Doubles the backing allocation when the spare tail is too
        small — the single copy that makes every other append free.
        """
        m = int(rows.shape[0])
        needed = self._n + m
        if needed > self._rows.shape[0]:
            capacity = max(needed, 2 * int(self._rows.shape[0]), _MIN_CAPACITY)
            grown = np.empty((capacity, self._rows.shape[1]), dtype=np.float64)
            grown[: self._n] = self._rows[: self._n]
            self._rows = grown
        self._rows[self._n : needed] = rows
        self._n = needed
        return self.view()

    def take(self, keep: np.ndarray) -> np.ndarray:
        """Keep only the rows indexed by ``keep``; returns the live view.

        ``keep`` must be ascending positions into the current live
        region.  The kept rows are compacted to the front (one fancy-
        index copy of the survivors, never of the whole history), and
        the allocation shrinks once live occupancy drops below 1/4 so
        a delete-heavy stream cannot strand an arbitrarily large
        backing array.
        """
        kept = self._rows[keep]  # fancy indexing copies the survivors
        k = int(kept.shape[0])
        if self._rows.shape[0] > max(_MIN_CAPACITY, 4 * k):
            self._rows = np.empty(
                (max(2 * k, _MIN_CAPACITY), self._rows.shape[1]), dtype=np.float64
            )
        self._rows[:k] = kept
        self._n = k
        return self.view()


class MmapBackend(VectorBackend):
    """Core rows in a paged :class:`~repro.db.store.FeatureStore` file,
    served with bounded resident memory.

    :meth:`view` is a read-only ``np.memmap`` over the record region —
    the OS pages rows in on demand and evicts them under pressure, so a
    core larger than RAM is queryable.  :meth:`rows` and
    :meth:`iter_blocks` go through the store's LRU
    :class:`~repro.db.bufferpool.BufferPool` instead, whose
    hit/miss/eviction counters make the resident bound *observable*:
    the pool never holds more than ``cache_pages`` pages by
    construction, which ``bench_f18`` asserts from the counters.

    Mutations keep the view contract of :class:`MemoryBackend`:
    ``append`` rewrites the tail page with byte-identical data for live
    rows and new bytes only past them, so held views stay valid;
    ``take`` rewrites the survivors into a fresh file and atomically
    replaces the old one (held memmaps keep the old inode — stale but
    consistent — until the caller refreshes, which every consumer does
    by reassigning its view on mutation).

    The file is derived state, not a durability source — the journal
    and snapshots own durability — so :meth:`close` deletes it.  All
    writes route through the injectable
    :class:`~repro.db.fsutil.FileSystem`, putting the page-write,
    header-rewrite, and fsync boundaries under the crash sweep of
    ``tests/test_crash_faults.py``.
    """

    __slots__ = ("_store", "_path", "_fs", "_cache_pages", "_page_records",
                 "_mm", "_mm_rows", "_retired", "_on_close", "_closed")

    name = "mmap"
    bounded = True

    def __init__(
        self,
        rows: np.ndarray,
        *,
        path: str | Path,
        cache_pages: int = 8,
        page_records: int = 64,
        fs: FileSystem = REAL_FS,
        on_close: Callable[["MmapBackend"], None] | None = None,
    ) -> None:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise IndexingError(
                f"{type(self).__name__} needs an (n, d) array; "
                f"got shape {rows.shape}"
            )
        self._path = Path(path)
        self._fs = fs
        self._cache_pages = int(cache_pages)
        self._page_records = int(page_records)
        self._mm: np.ndarray | None = None
        self._mm_rows = -1
        self._retired = {"hits": 0, "misses": 0, "evictions": 0}
        self._on_close = on_close
        self._closed = False
        self._store = FeatureStore.create(
            self._path,
            dim=int(rows.shape[1]),
            page_records=self._page_records,
            buffer_pages=self._cache_pages,
            overwrite=True,
            fs=fs,
        )
        self._write_rows(rows)

    def _write_rows(self, rows: np.ndarray) -> None:
        for row in rows:
            self._store.append(row)
        self._store.flush()
        self._mm = None

    @property
    def n_rows(self) -> int:
        return len(self._store)

    @property
    def dim(self) -> int:
        return self._store.dim

    @property
    def cache_pages(self) -> int:
        """Buffer-pool capacity in pages (the resident bound)."""
        return self._cache_pages

    @property
    def path(self) -> Path:
        """Location of the backing store file."""
        return self._path

    def view(self) -> np.ndarray:
        n = len(self._store)
        if self._mm is None or self._mm_rows != n:
            if n == 0:
                empty = np.empty((0, self._store.dim))
                empty.setflags(write=False)
                self._mm = empty
            else:
                self._mm = np.memmap(
                    self._path,
                    dtype="<f8",
                    mode="r",
                    offset=_HEADER_BYTES,
                    shape=(n, self._store.dim),
                )
            self._mm_rows = n
        return self._mm

    def rows(self, indices: Iterable[int]) -> np.ndarray:
        return self._store.get_many([int(i) for i in indices])

    def iter_blocks(self) -> Iterator[tuple[int, np.ndarray]]:
        n = len(self._store)
        per_page = self._store.page_records
        for page_index in range((n + per_page - 1) // per_page):
            start = page_index * per_page
            block = self._store.pool.get(page_index)[: min(per_page, n - start)]
            block.setflags(write=False)
            yield start, block

    def append(self, rows: np.ndarray) -> np.ndarray:
        for row in np.asarray(rows, dtype=np.float64):
            self._store.append(row)
        self._store.flush()
        self._mm = None
        return self.view()

    def take(self, keep: np.ndarray) -> np.ndarray:
        kept = np.asarray(self.view()[np.asarray(keep, dtype=np.intp)])
        pool = self._store.pool
        for key in ("hits", "misses", "evictions"):
            self._retired[key] += getattr(pool, key)
        self._store.close()
        staging = self._path.with_name(self._path.name + ".compact")
        store = FeatureStore.create(
            staging,
            dim=int(kept.shape[1]),
            page_records=self._page_records,
            buffer_pages=self._cache_pages,
            overwrite=True,
            fs=self._fs,
        )
        for row in kept:
            store.append(row)
        store.flush()
        store.close()
        self._fs.replace(staging, self._path)
        self._fs.fsync_dir(self._path.parent)
        self._store = FeatureStore.open(
            self._path, buffer_pages=self._cache_pages, fs=self._fs
        )
        self._mm = None
        return self.view()

    def flush(self) -> None:
        self._store.flush()

    def pool_stats(self) -> dict:
        pool = self._store.pool
        return {
            "hits": self._retired["hits"] + pool.hits,
            "misses": self._retired["misses"] + pool.misses,
            "evictions": self._retired["evictions"] + pool.evictions,
            "resident": 0 if self._closed else pool.resident,
            "capacity": 0 if self._closed else self._cache_pages,
        }

    def close(self) -> None:
        if self._closed:
            return
        pool = self._store.pool
        for key in ("hits", "misses", "evictions"):
            self._retired[key] += getattr(pool, key)
        self._store.close()
        self._closed = True
        self._mm = None
        for leftover in (self._path, self._path.with_name(self._path.name + ".compact")):
            try:
                os.unlink(leftover)
            except FileNotFoundError:
                pass
        if self._on_close is not None:
            self._on_close(self)


# ---------------------------------------------------------------------------
# Factories and the registry
# ---------------------------------------------------------------------------
class BackendFactory:
    """Creates backends for a database's indexes and aggregates their
    pool counters for ``/stats`` and ``/metrics``.

    One factory instance is shared by a database and all its shard
    views, so ``describe()`` reports service-wide figures.  The
    constructor signature is uniform across backend families —
    ``Factory(root, *, cache_pages, page_records, fs)`` — which is what
    lets the conformance suite (and :func:`resolve_backend_factory`)
    instantiate any registered backend the same way; families that need
    no root or cache simply ignore those arguments.
    """

    name: str = "abstract"
    bounded: bool = False

    def __call__(self, rows: np.ndarray) -> VectorBackend:
        raise NotImplementedError

    def pool_stats(self) -> dict:
        return {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "resident": 0,
            "capacity": 0,
        }

    def describe(self) -> dict:
        """Snapshot for ``/stats``, ``/healthz``, and the CLI banner."""
        return {
            "name": self.name,
            "bounded": self.bounded,
            "pool": self.pool_stats(),
        }


#: Registry of backend families by spec name.  A new backend joins the
#: engine *and* the conformance suite with one decorated factory class.
BACKENDS: dict[str, type[BackendFactory]] = {}


def register_backend(name: str):
    """Class decorator: register a :class:`BackendFactory` under ``name``."""

    def decorate(cls: type[BackendFactory]) -> type[BackendFactory]:
        cls.name = name
        BACKENDS[name] = cls
        return cls

    return decorate


@register_backend("memory")
class MemoryBackendFactory(BackendFactory):
    """Factory for the default in-RAM backend (stateless)."""

    bounded = False

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        cache_pages: int = 0,
        page_records: int = 64,
        fs: FileSystem = REAL_FS,
    ) -> None:
        pass  # nothing to configure; arguments kept for signature parity

    def __call__(self, rows: np.ndarray) -> MemoryBackend:
        return MemoryBackend(rows)


@register_backend("mmap")
class MmapBackendFactory(BackendFactory):
    """Factory for on-disk cores under one root directory.

    Allocates a unique file per backend (indexes rebuild, shards each
    hold their own core), keeps cumulative pool counters across closed
    backends, and reports the live resident total — the figures behind
    the ``repro_backend_pool`` metric family.
    """

    bounded = True

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        cache_pages: int = 8,
        page_records: int = 64,
        fs: FileSystem = REAL_FS,
    ) -> None:
        if cache_pages < 1:
            raise StoreError(f"cache_pages must be >= 1; got {cache_pages}")
        if root is None:
            root = tempfile.mkdtemp(prefix="repro-mmap-")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache_pages = int(cache_pages)
        self.page_records = int(page_records)
        self._fs = fs
        self._lock = threading.Lock()
        self._seq = 0
        self._open: list[MmapBackend] = []
        self._retired = {"hits": 0, "misses": 0, "evictions": 0}

    def __call__(self, rows: np.ndarray) -> MmapBackend:
        with self._lock:
            path = self.root / f"core-{self._seq:06d}.feat"
            self._seq += 1
        backend = MmapBackend(
            rows,
            path=path,
            cache_pages=self.cache_pages,
            page_records=self.page_records,
            fs=self._fs,
            on_close=self._retire,
        )
        with self._lock:
            self._open.append(backend)
        return backend

    def _retire(self, backend: MmapBackend) -> None:
        with self._lock:
            if backend in self._open:
                self._open.remove(backend)
                final = backend.pool_stats()
                for key in ("hits", "misses", "evictions"):
                    self._retired[key] += final[key]

    def pool_stats(self) -> dict:
        with self._lock:
            live = [backend.pool_stats() for backend in self._open]
            stats = dict(self._retired)
            for key in ("hits", "misses", "evictions"):
                stats[key] += sum(entry[key] for entry in live)
            stats["resident"] = sum(entry["resident"] for entry in live)
            stats["capacity"] = sum(entry["capacity"] for entry in live)
            return stats

    def describe(self) -> dict:
        info = super().describe()
        info["root"] = str(self.root)
        info["cache_pages"] = self.cache_pages
        info["page_records"] = self.page_records
        return info


def resolve_backend_factory(
    backend: "str | BackendFactory | None",
    *,
    cache_pages: int | None = None,
    fs: FileSystem = REAL_FS,
) -> BackendFactory:
    """Turn a backend spec into a factory object.

    ``backend`` may be an existing factory (shared across shard views —
    returned as-is), a spec string (``"memory"``, ``"mmap"``,
    ``"mmap:ROOT"``), or ``None`` for the environment default:
    ``$REPRO_BACKEND`` (or ``"memory"``).  ``cache_pages`` defaults to
    ``$REPRO_CACHE_PAGES`` (or 8) for backends that page.
    """
    if backend is not None and not isinstance(backend, str):
        return backend
    spec = backend if backend is not None else os.environ.get("REPRO_BACKEND")
    spec = spec or "memory"
    name, _, root = spec.partition(":")
    if name not in BACKENDS:
        raise StoreError(
            f"unknown backend {name!r}; registered: {sorted(BACKENDS)}"
        )
    if cache_pages is None:
        cache_pages = int(os.environ.get("REPRO_CACHE_PAGES", "8"))
    return BACKENDS[name](root or None, cache_pages=cache_pages, fs=fs)
