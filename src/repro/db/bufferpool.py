"""LRU buffer pool with exact hit/miss accounting.

The 1994 cost model prices a query by how many feature-vector *pages* it
touches; the buffer pool decides how many of those touches reach the disk.
This implementation is deliberately classical: fixed capacity in pages,
least-recently-used eviction, write-back of dirty pages through a caller
supplied callback, and counters (:attr:`hits`, :attr:`misses`,
:attr:`evictions`) that experiment F6 sweeps against capacity.

The pool is generic: pages are opaque objects fetched by a callback, so
the same class backs the feature store and any future page consumer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.errors import StoreError

__all__ = ["BufferPool"]

FetchFn = Callable[[int], Any]
WriteBackFn = Callable[[int, Any], None]


class BufferPool:
    """Fixed-capacity LRU cache of pages.

    Parameters
    ----------
    capacity:
        Maximum number of resident pages (>= 1).
    fetch:
        Callback loading a page by id on a miss.
    write_back:
        Optional callback invoked with (page_id, page) when a *dirty* page
        is evicted or flushed.  Required if :meth:`mark_dirty` is used.
    """

    def __init__(
        self,
        capacity: int,
        fetch: FetchFn,
        *,
        write_back: WriteBackFn | None = None,
    ) -> None:
        if capacity < 1:
            raise StoreError(f"buffer pool capacity must be >= 1; got {capacity}")
        self._capacity = capacity
        self._fetch = fetch
        self._write_back = write_back
        self._pages: "OrderedDict[int, Any]" = OrderedDict()
        self._dirty: set[int] = set()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum resident pages."""
        return self._capacity

    @property
    def hits(self) -> int:
        """Accesses served from the pool."""
        return self._hits

    @property
    def misses(self) -> int:
        """Accesses that invoked the fetch callback."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Pages pushed out by capacity pressure."""
        return self._evictions

    @property
    def resident(self) -> int:
        """Pages currently cached."""
        return len(self._pages)

    def hit_ratio(self) -> float:
        """hits / (hits + misses); 0.0 before any access."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (contents are kept)."""
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def get(self, page_id: int) -> Any:
        """Return the page, fetching on a miss and evicting LRU if full."""
        if page_id in self._pages:
            self._hits += 1
            self._pages.move_to_end(page_id)
            return self._pages[page_id]

        self._misses += 1
        page = self._fetch(page_id)
        self._insert(page_id, page)
        return page

    def put(self, page_id: int, page: Any, *, dirty: bool = False) -> None:
        """Install (or replace) a page directly, optionally marking it dirty."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self._pages[page_id] = page
        else:
            self._insert(page_id, page)
        if dirty:
            self.mark_dirty(page_id)

    def mark_dirty(self, page_id: int) -> None:
        """Flag a resident page as modified (it will be written back)."""
        if page_id not in self._pages:
            raise StoreError(f"cannot mark non-resident page {page_id} dirty")
        if self._write_back is None:
            raise StoreError("buffer pool has no write_back callback")
        self._dirty.add(page_id)

    def contains(self, page_id: int) -> bool:
        """True if the page is resident (does not touch LRU order)."""
        return page_id in self._pages

    def invalidate(self, page_id: int) -> None:
        """Drop a page without writing it back (caller handles durability)."""
        self._pages.pop(page_id, None)
        self._dirty.discard(page_id)

    def flush(self) -> None:
        """Write back every dirty page; contents stay resident."""
        for page_id in sorted(self._dirty):
            assert self._write_back is not None  # guarded by mark_dirty
            self._write_back(page_id, self._pages[page_id])
        self._dirty.clear()

    def clear(self) -> None:
        """Flush, then drop all resident pages."""
        self.flush()
        self._pages.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert(self, page_id: int, page: Any) -> None:
        while len(self._pages) >= self._capacity:
            victim_id, victim = self._pages.popitem(last=False)
            self._evictions += 1
            if victim_id in self._dirty:
                self._dirty.discard(victim_id)
                assert self._write_back is not None
                self._write_back(victim_id, victim)
        self._pages[page_id] = page

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self._capacity}, resident={self.resident}, "
            f"hits={self._hits}, misses={self._misses})"
        )
