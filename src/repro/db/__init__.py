"""Database layer: catalog, paged feature store, buffer pool, query engine.

This subpackage turns the algorithmic pieces (features, metrics, indexes)
into an image *database*:

:class:`~repro.db.catalog.Catalog`
    Metadata records (name, size, label, user fields) keyed by image id.
:class:`~repro.db.store.FeatureStore`
    Fixed-record binary file holding one feature vector per slot, read
    through an LRU :class:`~repro.db.bufferpool.BufferPool` with exact
    hit/miss accounting (experiment F6 sweeps its capacity).
:class:`~repro.db.database.ImageDatabase`
    The facade: insert images (features are extracted according to a
    :class:`~repro.features.FeatureSchema`), build per-feature indexes
    that then absorb further ``add_image`` / ``add_vectors`` /
    ``remove`` mutations incrementally (with monotonic per-feature
    ``generation`` stamps — see ``docs/mutability.md``), run
    query-by-example / range / weighted multi-feature queries, and
    persist everything to a directory.
:mod:`~repro.db.query`
    Weighted multi-feature distance combination and rank fusion.
:mod:`~repro.db.feedback`
    Relevance feedback: Rocchio query-point movement and the
    interactive :class:`~repro.db.feedback.FeedbackSession` loop.
:mod:`~repro.db.journal` / :mod:`~repro.db.recovery`
    Crash-safe durability: a checksummed write-ahead journal
    (:class:`~repro.db.journal.Journal` / :class:`JournalSet`) replayed
    onto atomic snapshots at startup
    (:func:`~repro.db.recovery.recover` /
    :func:`~repro.db.recovery.open_serving_root`), with online
    compaction (:func:`~repro.db.recovery.compact`) — see
    ``docs/durability.md``.
"""

from repro.db.bufferpool import BufferPool
from repro.db.catalog import Catalog, ImageRecord
from repro.db.fsutil import REAL_FS, FileSystem, atomic_write_bytes
from repro.db.journal import Journal, JournalRecord, JournalSet, fingerprint_of
from repro.db.store import FeatureStore
from repro.db.backend import (
    BACKENDS,
    MemoryBackend,
    MmapBackend,
    VectorBackend,
    register_backend,
    resolve_backend_factory,
)
from repro.db.database import ImageDatabase
from repro.db.feedback import FeedbackSession, Rocchio
from repro.db.query import RetrievalResult, borda_fuse, reciprocal_rank_fuse
from repro.db.recovery import (
    RecoveryReport,
    compact,
    open_serving_root,
    recover,
)

__all__ = [
    "BACKENDS",
    "MemoryBackend",
    "MmapBackend",
    "VectorBackend",
    "register_backend",
    "resolve_backend_factory",
    "BufferPool",
    "Catalog",
    "ImageRecord",
    "FeatureStore",
    "ImageDatabase",
    "FeedbackSession",
    "Rocchio",
    "RetrievalResult",
    "borda_fuse",
    "reciprocal_rank_fuse",
    "FileSystem",
    "REAL_FS",
    "atomic_write_bytes",
    "Journal",
    "JournalRecord",
    "JournalSet",
    "fingerprint_of",
    "RecoveryReport",
    "recover",
    "compact",
    "open_serving_root",
]
