"""Relevance feedback: Rocchio query refinement over feature vectors.

A single query-by-example round rarely expresses what the user meant —
"more like these two, less like that one" does.  Relevance feedback
closes that loop: the user marks results as relevant / non-relevant and
the query *vector* is moved toward the relevant centroid and away from
the non-relevant one (Rocchio's rule, imported into image retrieval by
the MARS system as "query-point movement"):

    ``q' = alpha * q + beta * mean(relevant) - gamma * mean(non-relevant)``

The moved query lives in the same feature space, so the existing indexes
answer the refined query at full speed — feedback costs one extra k-NN
per round, nothing else.  Experiment F9 measures precision@k per round
under a simulated user who judges by class label.

Two pieces:

:class:`Rocchio`
    The pure vector update rule (stateless, testable in isolation).
:class:`FeedbackSession`
    Drives rounds against an :class:`~repro.db.database.ImageDatabase`:
    holds the evolving query vector, collects judgments, re-queries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.db.database import ImageDatabase
from repro.db.query import RetrievalResult
from repro.errors import QueryError
from repro.image.core import Image

__all__ = ["Rocchio", "FeedbackSession"]


class Rocchio:
    """The Rocchio query-movement rule.

    Parameters
    ----------
    alpha:
        Weight of the original query (anchor; default 1.0).
    beta:
        Pull toward the mean of relevant examples (default 0.75).
    gamma:
        Push away from the mean of non-relevant examples (default 0.25).
        Kept smaller than ``beta`` by convention: negative evidence is
        noisier than positive evidence.

    Histogram-type signatures are non-negative by construction, and the
    subtraction step can take components below zero; ``clip_negative``
    (default True) clamps the refined vector at zero so it stays a valid
    point of the feature space.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        beta: float = 0.75,
        gamma: float = 0.25,
        *,
        clip_negative: bool = True,
    ) -> None:
        if alpha < 0.0 or beta < 0.0 or gamma < 0.0:
            raise QueryError(
                f"alpha, beta, gamma must be non-negative; got "
                f"({alpha}, {beta}, {gamma})"
            )
        if alpha == 0.0 and beta == 0.0:
            raise QueryError("alpha and beta cannot both be zero")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.clip_negative = clip_negative

    def refine(
        self,
        query: np.ndarray,
        relevant: Sequence[np.ndarray] = (),
        non_relevant: Sequence[np.ndarray] = (),
    ) -> np.ndarray:
        """One movement step; with no judgments the query is unchanged."""
        query = np.asarray(query, dtype=np.float64).ravel()
        refined = self.alpha * query
        if len(relevant) > 0:
            refined = refined + self.beta * np.mean(
                np.asarray(relevant, dtype=np.float64), axis=0
            )
        if len(non_relevant) > 0:
            refined = refined - self.gamma * np.mean(
                np.asarray(non_relevant, dtype=np.float64), axis=0
            )
        # Keep the query on the original scale so distances stay
        # comparable across rounds.
        weight = self.alpha + (self.beta if len(relevant) else 0.0)
        if weight > 0.0:
            refined = refined / weight
        if self.clip_negative:
            refined = np.clip(refined, 0.0, None)
        return refined

    def __repr__(self) -> str:
        return (
            f"Rocchio(alpha={self.alpha}, beta={self.beta}, gamma={self.gamma})"
        )


class FeedbackSession:
    """An interactive retrieval session with query-point movement.

    Parameters
    ----------
    db:
        The database to search.
    query:
        The starting example — an :class:`~repro.image.Image` or a
        precomputed vector of the right dimensionality.
    feature:
        Which feature space the session runs in (default: the schema's
        first feature).
    rule:
        The movement rule (default :class:`Rocchio` with standard
        weights).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.image import synth
    >>> rng = np.random.default_rng(0)
    >>> db = ImageDatabase()
    >>> ids = [db.add_image(synth.compose_scene(64, 64, rng)) for _ in range(12)]
    >>> session = FeedbackSession(db, synth.compose_scene(64, 64, rng))
    >>> first = session.search(k=5)
    >>> session.mark_relevant([first[0].image_id])
    >>> second = session.search(k=5)  # query has moved
    >>> session.rounds
    1
    """

    def __init__(
        self,
        db: ImageDatabase,
        query: Image | np.ndarray,
        *,
        feature: str | None = None,
        rule: Rocchio | None = None,
    ) -> None:
        if len(db) == 0:
            raise QueryError("cannot start a feedback session on an empty database")
        self._db = db
        self._feature = feature or db.default_feature
        if self._feature not in db.schema:
            raise QueryError(
                f"unknown feature {self._feature!r}; schema has {list(db.schema.names)}"
            )
        extractor = db.schema.get(self._feature)
        if isinstance(query, Image):
            self._query = extractor.extract(query)
        else:
            self._query = np.asarray(query, dtype=np.float64).ravel()
            if self._query.shape != (extractor.dim,):
                raise QueryError(
                    f"query vector has dim {self._query.size}, feature "
                    f"{self._feature!r} expects {extractor.dim}"
                )
        self._initial_query = self._query.copy()
        self._rule = rule or Rocchio()
        self._relevant: set[int] = set()
        self._non_relevant: set[int] = set()
        self._rounds = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def feature(self) -> str:
        """The feature space the session searches."""
        return self._feature

    @property
    def query_vector(self) -> np.ndarray:
        """The current (possibly moved) query vector."""
        return self._query.copy()

    @property
    def rounds(self) -> int:
        """Completed feedback rounds (judgment + movement)."""
        return self._rounds

    @property
    def judged(self) -> tuple[frozenset[int], frozenset[int]]:
        """All judgments so far: ``(relevant ids, non-relevant ids)``."""
        return frozenset(self._relevant), frozenset(self._non_relevant)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def search(self, k: int = 10) -> list[RetrievalResult]:
        """Current-query k-NN (judgments applied lazily beforehand)."""
        self._apply_pending()
        return self._db.query(self._query, k, feature=self._feature)

    def mark_relevant(self, image_ids: Iterable[int]) -> None:
        """Record positive judgments (effective at the next search)."""
        ids = self._validated(image_ids)
        self._non_relevant -= ids
        self._relevant |= ids
        self._pending = True

    def mark_non_relevant(self, image_ids: Iterable[int]) -> None:
        """Record negative judgments (effective at the next search)."""
        ids = self._validated(image_ids)
        self._relevant -= ids
        self._non_relevant |= ids
        self._pending = True

    def reset(self) -> None:
        """Forget all judgments and return to the original query."""
        self._query = self._initial_query.copy()
        self._relevant.clear()
        self._non_relevant.clear()
        self._rounds = 0
        self._pending = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    _pending = False

    def _validated(self, image_ids: Iterable[int]) -> set[int]:
        ids = {int(image_id) for image_id in image_ids}
        for image_id in ids:
            self._db.catalog.get(image_id)  # raises on unknown id
        return ids

    def _apply_pending(self) -> None:
        if not self._pending:
            return
        relevant = [
            self._db.vector_of(self._feature, image_id)
            for image_id in sorted(self._relevant)
        ]
        non_relevant = [
            self._db.vector_of(self._feature, image_id)
            for image_id in sorted(self._non_relevant)
        ]
        self._query = self._rule.refine(self._initial_query, relevant, non_relevant)
        self._rounds += 1
        self._pending = False

    def __repr__(self) -> str:
        return (
            f"FeedbackSession(feature={self._feature!r}, rounds={self._rounds}, "
            f"relevant={len(self._relevant)}, non_relevant={len(self._non_relevant)})"
        )
