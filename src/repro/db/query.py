"""Query results, weighted multi-feature combination, and rank fusion.

A single feature rarely captures similarity alone; production CBIR
queries combine evidence.  Two families are implemented:

* **score combination** — per-feature distances are rescaled to
  comparable units (robust median scaling over the candidate pool) and
  averaged under user weights (:func:`combine_feature_distances`);
* **rank fusion** — per-feature rankings are merged positionally, via
  Borda counts (:func:`borda_fuse`) or reciprocal-rank fusion
  (:func:`reciprocal_rank_fuse`), which ignores the distances' scales
  entirely.

Experiment T5 compares both against single features.

:func:`to_retrieval_results` is the shared last hop of every query path
— scalar, batched, single- or multi-feature: index ``Neighbor`` lists
become catalog-enriched :class:`RetrievalResult` lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import QueryError
from repro.db.catalog import ImageRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.db.catalog import Catalog
    from repro.index.base import Neighbor

__all__ = [
    "RetrievalResult",
    "to_retrieval_results",
    "combine_feature_distances",
    "borda_fuse",
    "reciprocal_rank_fuse",
]


@dataclass(frozen=True)
class RetrievalResult:
    """One ranked answer to a query.

    ``distance`` is in the units of the feature's metric for single-feature
    queries and a unitless combined score for multi-feature queries;
    ``per_feature`` holds the raw per-feature distances when available.
    """

    image_id: int
    distance: float
    record: ImageRecord | None = None
    per_feature: dict[str, float] | None = None

    def __lt__(self, other: "RetrievalResult") -> bool:
        return (self.distance, self.image_id) < (other.distance, other.image_id)


def to_retrieval_results(
    neighbors: Sequence["Neighbor"], catalog: "Catalog"
) -> list[RetrievalResult]:
    """Attach catalog records to raw index results, preserving order."""
    return [
        RetrievalResult(
            image_id=nb.id, distance=nb.distance, record=catalog.get(nb.id)
        )
        for nb in neighbors
    ]


def _median_scale(values: np.ndarray) -> float:
    """Robust positive scale of a distance sample (fallbacks for degenerate)."""
    positive = values[values > 0.0]
    if positive.size == 0:
        return 1.0
    return float(np.median(positive))


def combine_feature_distances(
    per_feature: Mapping[str, Mapping[int, float]],
    weights: Mapping[str, float],
) -> dict[int, tuple[float, dict[str, float]]]:
    """Weighted combination of per-feature candidate distances.

    Parameters
    ----------
    per_feature:
        ``feature -> {candidate_id -> distance}``.  Candidates need not
        appear under every feature; missing entries are treated as the
        feature's worst observed distance (absence is weak evidence of
        dissimilarity, not ignorance).
    weights:
        ``feature -> weight`` — non-negative, at least one positive;
        normalized to sum 1 internally.

    Returns
    -------
    dict
        ``candidate_id -> (combined_score, {feature: scaled_distance})``.
        Scores are comparable across candidates of this query only.
    """
    if not per_feature:
        raise QueryError("no per-feature distances supplied")
    unknown = set(weights) - set(per_feature)
    if unknown:
        raise QueryError(f"weights refer to unknown features: {sorted(unknown)}")
    total_weight = float(sum(weights.values()))
    if total_weight <= 0.0 or any(w < 0.0 for w in weights.values()):
        raise QueryError("weights must be non-negative with a positive sum")

    candidates: set[int] = set()
    for distances in per_feature.values():
        candidates.update(distances)
    if not candidates:
        return {}

    scaled: dict[str, dict[int, float]] = {}
    worst: dict[str, float] = {}
    for feature, distances in per_feature.items():
        values = np.array(list(distances.values()), dtype=np.float64)
        scale = _median_scale(values) if values.size else 1.0
        scaled[feature] = {cid: d / scale for cid, d in distances.items()}
        worst[feature] = max(scaled[feature].values(), default=1.0)

    combined: dict[int, tuple[float, dict[str, float]]] = {}
    for candidate in candidates:
        score = 0.0
        detail: dict[str, float] = {}
        for feature, weight in weights.items():
            if weight == 0.0:
                continue
            value = scaled[feature].get(candidate, worst[feature])
            detail[feature] = value
            score += (weight / total_weight) * value
        combined[candidate] = (score, detail)
    return combined


def borda_fuse(rankings: Sequence[Sequence[int]], k: int) -> list[int]:
    """Borda-count fusion of id rankings.

    Each ranking awards ``len(ranking) - position`` points to its members;
    ids missing from a ranking get 0 from it.  Returns the top ``k`` ids by
    total points (ties broken by id for determinism).
    """
    if k < 1:
        raise QueryError(f"k must be >= 1; got {k}")
    if not rankings:
        raise QueryError("at least one ranking is required")
    points: dict[int, float] = {}
    for ranking in rankings:
        length = len(ranking)
        for position, item_id in enumerate(ranking):
            points[item_id] = points.get(item_id, 0.0) + (length - position)
    ordered = sorted(points.items(), key=lambda kv: (-kv[1], kv[0]))
    return [item_id for item_id, _ in ordered[:k]]


def reciprocal_rank_fuse(
    rankings: Sequence[Sequence[int]], k: int, *, smoothing: float = 60.0
) -> list[int]:
    """Reciprocal-rank fusion: score ``sum 1 / (smoothing + rank)``.

    The classic RRF rule; ``smoothing`` dampens the dominance of rank-1
    hits.  Returns the top ``k`` ids.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1; got {k}")
    if smoothing <= 0.0:
        raise QueryError(f"smoothing must be positive; got {smoothing}")
    if not rankings:
        raise QueryError("at least one ranking is required")
    scores: dict[int, float] = {}
    for ranking in rankings:
        for position, item_id in enumerate(ranking):
            scores[item_id] = scores.get(item_id, 0.0) + 1.0 / (smoothing + position + 1)
    ordered = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [item_id for item_id, _ in ordered[:k]]
