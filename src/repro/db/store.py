"""Paged on-disk feature store.

One file per feature: a fixed header followed by fixed-size pages, each
holding ``page_records`` float64 vectors of the declared dimensionality.
Slots are dense integers in append order, so ``slot -> (page, offset)`` is
pure arithmetic and a record read costs exactly one page read — which the
LRU :class:`~repro.db.bufferpool.BufferPool` then absorbs or not,
depending on locality.  That read path is the subject of experiment F6.

File layout (little-endian)::

    offset 0   magic     8 bytes  b"RFSTORE1"
    offset 8   dim       int64
    offset 16  count     int64    number of appended records
    offset 24  page_recs int64    records per page
    offset 32  pages...           count/page_recs pages, zero-padded tail

The header's ``count`` is rewritten on :meth:`flush`/:meth:`close`; a
crash between appends loses at most the unflushed tail (append-only, no
torn records within the acknowledged count).  :meth:`flush` orders its
syncs — tail page fsync'd *before* the header that names it — so the
count never points past durable data, and every write/fsync routes
through an injectable :class:`~repro.db.fsutil.FileSystem` so the
crash sweep (``tests/test_crash_faults.py``) can cut power at each
boundary.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path

import numpy as np

from repro.errors import StoreError
from repro.db.bufferpool import BufferPool
from repro.db.fsutil import REAL_FS, FileSystem

__all__ = ["FeatureStore"]

_MAGIC = b"RFSTORE1"
_HEADER = struct.Struct("<8sqqq")
_FLOAT_SIZE = 8


class FeatureStore:
    """Append-only store of fixed-dimension float64 vectors.

    Use :meth:`create` for a new file and :meth:`open` for an existing
    one; both return a ready store.  The store is a context manager and
    must be closed (or flushed) for the header count to be durable.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "color.feat")
    >>> with FeatureStore.create(path, dim=4) as store:
    ...     slot = store.append([0.1, 0.2, 0.3, 0.4])
    >>> with FeatureStore.open(path) as store:
    ...     store.get(slot).tolist()
    [0.1, 0.2, 0.3, 0.4]
    """

    def __init__(
        self,
        path: str | Path,
        file: io.BufferedRandom,
        dim: int,
        count: int,
        page_records: int,
        buffer_pages: int,
        fs: FileSystem = REAL_FS,
    ) -> None:
        self._path = Path(path)
        self._file = file
        self._fs = fs
        self._dim = dim
        self._count = count
        self._page_records = page_records
        self._page_bytes = page_records * dim * _FLOAT_SIZE
        self._closed = False
        self._pool = BufferPool(buffer_pages, self._read_page)
        # Tail page under construction, kept out of the pool until full.
        self._tail: list[np.ndarray] = []
        self._tail_base = count - (count % page_records) if page_records else 0
        if count % page_records:
            # Re-open mid-page: load the partial tail into memory.
            partial = self._read_page(count // page_records)
            self._tail = [partial[i].copy() for i in range(count % page_records)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        dim: int,
        *,
        page_records: int = 64,
        buffer_pages: int = 8,
        overwrite: bool = False,
        fs: FileSystem = REAL_FS,
    ) -> "FeatureStore":
        """Create a new store file.

        Raises
        ------
        StoreError
            If the file exists (unless ``overwrite``) or parameters are bad.
        """
        if dim < 1:
            raise StoreError(f"dim must be >= 1; got {dim}")
        if page_records < 1:
            raise StoreError(f"page_records must be >= 1; got {page_records}")
        path = Path(path)
        if path.exists() and not overwrite:
            raise StoreError(f"store file already exists: {path}")
        file = open(path, "w+b")
        fs.write(file, _HEADER.pack(_MAGIC, dim, 0, page_records))
        file.flush()
        return cls(path, file, dim, 0, page_records, buffer_pages, fs=fs)

    @classmethod
    def open(
        cls, path: str | Path, *, buffer_pages: int = 8, fs: FileSystem = REAL_FS
    ) -> "FeatureStore":
        """Open an existing store file for reading and appending."""
        path = Path(path)
        if not path.exists():
            raise StoreError(f"store file does not exist: {path}")
        file = open(path, "r+b")
        header = file.read(_HEADER.size)
        if len(header) < _HEADER.size:
            file.close()
            raise StoreError(f"store file too short for header: {path}")
        magic, dim, count, page_records = _HEADER.unpack(header)
        if magic != _MAGIC:
            file.close()
            raise StoreError(f"bad store magic in {path}: {magic!r}")
        if dim < 1 or count < 0 or page_records < 1:
            file.close()
            raise StoreError(
                f"corrupt store header in {path}: dim={dim}, count={count}, "
                f"page_records={page_records}"
            )
        return cls(path, file, dim, count, page_records, buffer_pages, fs=fs)

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "FeatureStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """Location of the backing file."""
        return self._path

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def page_records(self) -> int:
        """Records per page."""
        return self._page_records

    @property
    def pool(self) -> BufferPool:
        """The read cache (its counters drive experiment F6)."""
        return self._pool

    @property
    def page_reads(self) -> int:
        """Physical page reads performed so far (pool misses)."""
        return self._pool.misses

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Record I/O
    # ------------------------------------------------------------------
    def append(self, vector: np.ndarray) -> int:
        """Append a vector; returns its slot number."""
        self._check_open()
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape != (self._dim,):
            raise StoreError(
                f"vector has dim {vector.size}, store expects {self._dim}"
            )
        if not np.all(np.isfinite(vector)):
            raise StoreError("cannot store non-finite vector")
        slot = self._count
        self._tail.append(vector.copy())
        self._count += 1
        if len(self._tail) == self._page_records:
            self._write_tail_page()
        return slot

    def get(self, slot: int) -> np.ndarray:
        """Read the vector at ``slot`` (through the buffer pool)."""
        self._check_open()
        if not 0 <= slot < self._count:
            raise StoreError(f"slot {slot} out of range [0, {self._count})")
        page_index, offset = divmod(slot, self._page_records)
        if slot >= self._tail_base and self._tail:
            return self._tail[slot - self._tail_base].copy()
        page = self._pool.get(page_index)
        return page[offset].copy()

    def get_many(self, slots: list[int]) -> np.ndarray:
        """Read several slots; shape ``(len(slots), dim)``.

        Reads are issued in slot order to maximize page locality.
        """
        result = np.empty((len(slots), self._dim))
        for position in np.argsort(slots, kind="stable"):
            result[position] = self.get(int(slots[position]))
        return result

    def read_all(self) -> np.ndarray:
        """Materialize the whole store as an ``(n, dim)`` array.

        Bypasses the pool (bulk sequential read), used for index builds.
        """
        self._check_open()
        self.flush()
        if self._count == 0:
            return np.empty((0, self._dim))
        self._file.seek(_HEADER.size)
        n_full_bytes = self._count * self._dim * _FLOAT_SIZE
        raw = self._file.read(n_full_bytes)
        if len(raw) < n_full_bytes:
            raise StoreError(
                f"store truncated: expected {n_full_bytes} bytes, got {len(raw)}"
            )
        return np.frombuffer(raw, dtype="<f8").reshape(self._count, self._dim).copy()

    def flush(self) -> None:
        """Write the tail page (padded) and a current header to disk.

        Two-phase, in the atomic-save discipline of ``docs/durability
        .md``: the data pages are fsync'd **before** the header that
        names them is written and fsync'd in turn.  With a single sync
        after both writes (the old behaviour) the OS was free to
        persist the header first, and a crash in between left a
        ``count`` pointing past durable data — a stale count the
        reopen path would happily serve as garbage rows.
        """
        self._check_open()
        if self._tail:
            self._write_tail_page(partial=True)
        self._fs.fsync(self._file)
        self._file.seek(0)
        self._fs.write(
            self._file,
            _HEADER.pack(_MAGIC, self._dim, self._count, self._page_records),
        )
        self._fs.fsync(self._file)

    # ------------------------------------------------------------------
    # Page I/O
    # ------------------------------------------------------------------
    def _page_offset(self, page_index: int) -> int:
        return _HEADER.size + page_index * self._page_bytes

    def _read_page(self, page_index: int) -> np.ndarray:
        self._file.seek(self._page_offset(page_index))
        raw = self._file.read(self._page_bytes)
        if len(raw) < self._page_bytes:
            raw = raw + b"\x00" * (self._page_bytes - len(raw))
        return (
            np.frombuffer(raw, dtype="<f8")
            .reshape(self._page_records, self._dim)
            .copy()
        )

    def _write_tail_page(self, *, partial: bool = False) -> None:
        page_index = self._tail_base // self._page_records
        page = np.zeros((self._page_records, self._dim))
        page[: len(self._tail)] = self._tail
        self._file.seek(self._page_offset(page_index))
        self._fs.write(self._file, page.astype("<f8").tobytes())
        # Whether full or partial, what is on disk supersedes any cached copy.
        self._pool.invalidate(page_index)
        if not partial:
            self._tail = []
            self._tail_base += self._page_records

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"store is closed: {self._path}")

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"count={self._count}"
        return f"FeatureStore(path={str(self._path)!r}, dim={self._dim}, {state})"
