"""Image catalog: metadata records keyed by image id.

The catalog is the database's system table: every stored image has one
:class:`ImageRecord` carrying identity, dimensions, an optional class
label (used by the evaluation as relevance ground truth), and free-form
user metadata.  It allocates ids, enforces their uniqueness, supports
label lookups, and round-trips to JSON for persistence alongside the
feature stores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.db.fsutil import REAL_FS, FileSystem, atomic_write_bytes
from repro.errors import CatalogError

__all__ = ["ImageRecord", "Catalog"]


@dataclass(frozen=True)
class ImageRecord:
    """Metadata for one stored image.

    Attributes
    ----------
    image_id:
        Unique integer id, allocated by the catalog.
    name:
        Human-readable name (defaults to ``image_<id>``).
    width, height:
        Pixel dimensions at insertion time.
    mode:
        ``'gray'`` or ``'rgb'``.
    label:
        Optional class label; the evaluation treats same-label images as
        relevant to each other.
    extra:
        Free-form JSON-serializable metadata.
    """

    image_id: int
    name: str
    width: int
    height: int
    mode: str
    label: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the JSON round trip."""
        return {
            "image_id": self.image_id,
            "name": self.name,
            "width": self.width,
            "height": self.height,
            "mode": self.mode,
            "label": self.label,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ImageRecord":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                image_id=int(data["image_id"]),
                name=str(data["name"]),
                width=int(data["width"]),
                height=int(data["height"]),
                mode=str(data["mode"]),
                label=data.get("label"),
                extra=dict(data.get("extra", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CatalogError(f"malformed catalog record: {data!r}") from exc


class Catalog:
    """In-memory table of :class:`ImageRecord` with id allocation."""

    def __init__(self) -> None:
        self._records: dict[int, ImageRecord] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, image_id: int) -> bool:
        return image_id in self._records

    def __iter__(self) -> Iterator[ImageRecord]:
        return iter(self._records.values())

    @property
    def ids(self) -> list[int]:
        """All image ids in insertion order."""
        return list(self._records)

    @property
    def next_id(self) -> int:
        """The id :meth:`allocate_id` would hand out next (no allocation).

        Lets an external allocator — the sharded serving layer assigns
        globally sequential ids before routing rows to per-shard
        catalogs — start exactly where this catalog would have.
        """
        return self._next_id

    def allocate_id(self) -> int:
        """Reserve and return the next unused id."""
        image_id = self._next_id
        self._next_id += 1
        return image_id

    def insert(self, record: ImageRecord) -> None:
        """Add a record; its id must be unused."""
        if record.image_id in self._records:
            raise CatalogError(f"duplicate image id {record.image_id}")
        self._records[record.image_id] = record
        self._next_id = max(self._next_id, record.image_id + 1)

    def get(self, image_id: int) -> ImageRecord:
        """Look up a record by id."""
        try:
            return self._records[image_id]
        except KeyError:
            raise CatalogError(f"unknown image id {image_id}") from None

    def delete(self, image_id: int) -> ImageRecord:
        """Remove and return a record."""
        try:
            return self._records.pop(image_id)
        except KeyError:
            raise CatalogError(f"unknown image id {image_id}") from None

    def by_label(self, label: str | None) -> list[ImageRecord]:
        """All records with the given label, in insertion order."""
        return [record for record in self._records.values() if record.label == label]

    def labels(self) -> dict[str | None, int]:
        """Label -> record count."""
        counts: dict[str | None, int] = {}
        for record in self._records.values():
            counts[record.label] = counts.get(record.label, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path, *, fs: FileSystem = REAL_FS) -> None:
        """Write the catalog as a JSON file, atomically.

        Written to ``path + '.tmp'``, fsync'd, then renamed over — a
        crash mid-save leaves the previous catalog intact instead of a
        half-written JSON document.
        """
        payload = {
            "next_id": self._next_id,
            "records": [record.to_dict() for record in self._records.values()],
        }
        atomic_write_bytes(
            path,
            json.dumps(payload, indent=2, sort_keys=True).encode("utf-8"),
            fs=fs,
        )

    @classmethod
    def load(cls, path: str | Path) -> "Catalog":
        """Read a catalog written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise CatalogError(f"catalog file does not exist: {path}")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CatalogError(f"catalog file is not valid JSON: {path}") from exc
        catalog = cls()
        for raw in payload.get("records", []):
            catalog.insert(ImageRecord.from_dict(raw))
        catalog._next_id = max(int(payload.get("next_id", 0)), catalog._next_id)
        return catalog
