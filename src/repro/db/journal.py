"""Append-only write-ahead journal for database mutations.

The serving layer acknowledges ``add``/``remove`` requests; this module
is what makes those acknowledgements mean something across a crash.
Every mutation is encoded as one self-describing record and appended to
a journal file *before* its future resolves; recovery
(``repro.db.recovery``) replays the journal onto the last snapshot at
startup.  The contract, end to end:

    acknowledged future  ⟹  fsync'd journal record (or compacted
    snapshot)  ⟹  the mutation survives kill -9.

File layout (little-endian)::

    offset 0   magic    8 bytes   b"RWALV001"
    offset 8   records, each:
        u32  payload length
        u32  CRC32 of the payload
        payload:
            u32  header length
            header   UTF-8 JSON (op, seq, ids, labels, names, feature
                     shapes)
            data     raw float64 matrix bytes, one block per feature,
                     in header order (add records only)

The first record is always a ``fingerprint`` record carrying the format
version and the feature configuration (names, dims, metric names); a
replay against a snapshot or schema with a different fingerprint is
refused (:class:`~repro.errors.RecoveryError`) instead of silently
producing garbage.

**Torn tails are normal.**  A crash mid-append leaves a record whose
length prefix, payload, or CRC is incomplete.  :meth:`Journal.scan`
stops at the first record that fails its checksum and reports the valid
prefix; everything after it is truncated on reopen, never replayed.
Because appends are strictly sequential and fsync happens before any
acknowledgement, a torn record is by construction *unacknowledged* —
truncating it loses nothing the client was promised.

**Group commit.**  :meth:`Journal.append` only buffers; :meth:`sync` is
the durability point.  The scheduler appends every mutation in a formed
batch and pays one fsync for the group before resolving any of their
futures — batching the dominant cost of journaling without weakening
the per-acknowledgement guarantee.

:class:`JournalSet` manages one journal file per shard under a serving
root, assigning a single monotonically increasing sequence number per
mutation (shared by all of a mutation's per-shard records, which is how
recovery reassembles a scattered add in original row order).
"""

from __future__ import annotations

import json
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Callable, Iterator, Mapping

import numpy as np

from repro.db.fsutil import REAL_FS, FileSystem, atomic_write_bytes
from repro.errors import JournalError

__all__ = [
    "FORMAT_VERSION",
    "JournalRecord",
    "Journal",
    "JournalSet",
    "fingerprint_of",
]

_MAGIC = b"RWALV001"
_PREFIX = struct.Struct("<II")  # payload length, CRC32(payload)
_HEADER_LEN = struct.Struct("<I")

#: Journal/snapshot format version, part of the fingerprint.
FORMAT_VERSION = 1

#: Largest accepted record payload (a defensive bound against reading a
#: garbage length prefix as a multi-GiB allocation).
_MAX_PAYLOAD = 1 << 30


def fingerprint_of(
    features: Mapping[str, int] | list[tuple[str, int]],
    metrics: Mapping[str, str],
) -> dict:
    """The compatibility fingerprint of a database configuration.

    Journals and snapshot manifests both carry it; recovery demands
    equality before replaying.  Covers exactly what replay depends on:
    the format version, the feature names and dimensionalities (record
    decoding), and the metric names (index semantics).
    """
    items = features.items() if isinstance(features, Mapping) else features
    return {
        "version": FORMAT_VERSION,
        "features": [
            {"name": str(name), "dim": int(dim)} for name, dim in items
        ],
        "metrics": {str(name): str(metric) for name, metric in metrics.items()},
    }


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record.

    ``op`` is ``'add'``, ``'remove'``, ``'abort'``, or ``'fingerprint'``.
    Add records carry parallel ``ids``/``labels``/``names`` lists and a
    ``{feature: (n, d) float64 matrix}`` mapping; remove records carry
    ``ids``; abort records mark a sequence number whose mutation failed
    after journaling and must be skipped at replay; the fingerprint
    record (always first in a file) carries the config fingerprint.

    ``total`` is the id count of the *whole* mutation, across every
    shard it was routed to.  A multi-shard mutation writes one record
    per home shard (same ``seq``), and the per-file fsyncs are not
    atomic as a group — a crash between them durably strands a strict
    subset of the parts.  Replay sums the surviving parts' ids against
    ``total`` and skips an incomplete sequence outright: such a
    mutation cannot have been acknowledged (acknowledgement follows the
    *last* fsync), and applying half of it would surface a state no
    client ever observed.
    """

    op: str
    seq: int = 0
    ids: tuple[int, ...] = ()
    labels: tuple[str | None, ...] | None = None
    names: tuple[str, ...] | None = None
    matrices: Mapping[str, np.ndarray] = field(default_factory=dict)
    fingerprint: dict | None = None
    total: int | None = None

    @classmethod
    def add(
        cls,
        seq: int,
        ids: list[int],
        matrices: Mapping[str, np.ndarray],
        labels: list[str | None] | None,
        names: list[str] | None,
        *,
        total: int | None = None,
    ) -> "JournalRecord":
        return cls(
            op="add",
            seq=seq,
            ids=tuple(int(i) for i in ids),
            labels=tuple(labels) if labels is not None else None,
            names=tuple(names) if names is not None else None,
            matrices={
                name: np.ascontiguousarray(matrix, dtype=np.float64)
                for name, matrix in matrices.items()
            },
            total=int(total) if total is not None else len(ids),
        )

    @classmethod
    def remove(
        cls, seq: int, ids: list[int], *, total: int | None = None
    ) -> "JournalRecord":
        return cls(
            op="remove",
            seq=seq,
            ids=tuple(int(i) for i in ids),
            total=int(total) if total is not None else len(ids),
        )

    @classmethod
    def abort(cls, seq: int) -> "JournalRecord":
        return cls(op="abort", seq=seq)


def encode_record(record: JournalRecord) -> bytes:
    """Serialize a record to its on-disk bytes (prefix + CRC + payload)."""
    header: dict = {"op": record.op, "seq": record.seq}
    blocks: list[bytes] = []
    if record.op == "fingerprint":
        header["fingerprint"] = record.fingerprint
    elif record.op == "add":
        header["ids"] = list(record.ids)
        header["total"] = record.total
        header["labels"] = list(record.labels) if record.labels is not None else None
        header["names"] = list(record.names) if record.names is not None else None
        header["features"] = []
        for name, matrix in record.matrices.items():
            rows, dim = matrix.shape
            header["features"].append({"name": name, "rows": rows, "dim": dim})
            blocks.append(np.ascontiguousarray(matrix, dtype="<f8").tobytes())
    elif record.op == "remove":
        header["ids"] = list(record.ids)
        header["total"] = record.total
    elif record.op != "abort":
        raise JournalError(f"unknown journal op {record.op!r}")
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    payload = _HEADER_LEN.pack(len(header_bytes)) + header_bytes + b"".join(blocks)
    return _PREFIX.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> JournalRecord:
    """Inverse of :func:`encode_record` for one CRC-verified payload."""
    if len(payload) < _HEADER_LEN.size:
        raise JournalError("record payload shorter than its header length")
    (header_len,) = _HEADER_LEN.unpack_from(payload)
    header_end = _HEADER_LEN.size + header_len
    if header_end > len(payload):
        raise JournalError("record header extends past the payload")
    try:
        header = json.loads(payload[_HEADER_LEN.size : header_end])
    except json.JSONDecodeError as exc:
        raise JournalError("record header is not valid JSON") from exc
    op = header.get("op")
    seq = int(header.get("seq", 0))
    if op == "fingerprint":
        return JournalRecord(op="fingerprint", fingerprint=header.get("fingerprint"))
    total = header.get("total")
    total = int(total) if total is not None else None
    if op == "remove":
        return JournalRecord.remove(
            seq, [int(i) for i in header.get("ids", [])], total=total
        )
    if op == "abort":
        return JournalRecord.abort(seq)
    if op != "add":
        raise JournalError(f"unknown journal op {op!r}")
    matrices: dict[str, np.ndarray] = {}
    offset = header_end
    for entry in header.get("features", []):
        rows, dim = int(entry["rows"]), int(entry["dim"])
        n_bytes = rows * dim * 8
        block = payload[offset : offset + n_bytes]
        if len(block) != n_bytes:
            raise JournalError(
                f"feature block {entry['name']!r} truncated inside a "
                f"checksummed record"
            )
        matrices[entry["name"]] = (
            np.frombuffer(block, dtype="<f8").reshape(rows, dim).copy()
        )
        offset += n_bytes
    labels = header.get("labels")
    names = header.get("names")
    return JournalRecord.add(
        seq,
        [int(i) for i in header.get("ids", [])],
        matrices,
        list(labels) if labels is not None else None,
        list(names) if names is not None else None,
        total=total,
    )


@dataclass(frozen=True)
class ScanResult:
    """What :meth:`Journal.scan` found in one journal file."""

    fingerprint: dict
    records: list[JournalRecord]
    valid_bytes: int  #: offset of the last intact record's end
    torn_bytes: int  #: trailing bytes that failed framing or checksum


class Journal:
    """One append-only journal file with checksummed records.

    Use :meth:`create` for a fresh file (atomic: the magic and
    fingerprint record land via write-temp → fsync → rename, so a crash
    during creation leaves either no journal or a complete empty one)
    and :meth:`open` to continue an existing file (the torn tail, if
    any, is truncated first).
    """

    def __init__(
        self,
        path: Path,
        file: BinaryIO,
        fingerprint: dict,
        *,
        fs: FileSystem,
        size_bytes: int,
        n_records: int,
    ) -> None:
        self._path = path
        self._file = file
        self._fingerprint = fingerprint
        self._fs = fs
        self._size = size_bytes
        self._n_records = n_records
        self._dirty = False
        self._closed = False
        self._n_syncs = 0
        self._fsync_seconds = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, path: str | Path, fingerprint: dict, *, fs: FileSystem = REAL_FS
    ) -> "Journal":
        """Atomically create a fresh journal holding only the fingerprint."""
        path = Path(path)
        seed = _MAGIC + encode_record(
            JournalRecord(op="fingerprint", fingerprint=fingerprint)
        )
        atomic_write_bytes(path, seed, fs=fs)
        file = open(path, "r+b")
        file.seek(0, 2)
        return cls(
            path,
            file,
            fingerprint,
            fs=fs,
            size_bytes=len(seed),
            n_records=0,
        )

    @classmethod
    def open(cls, path: str | Path, *, fs: FileSystem = REAL_FS) -> "Journal":
        """Open an existing journal for appending, truncating a torn tail."""
        path = Path(path)
        scan = cls.scan(path)
        file = open(path, "r+b")
        if scan.torn_bytes:
            file.truncate(scan.valid_bytes)
        file.seek(scan.valid_bytes)
        return cls(
            path,
            file,
            scan.fingerprint,
            fs=fs,
            size_bytes=scan.valid_bytes,
            n_records=len(scan.records),
        )

    @staticmethod
    def scan(path: str | Path) -> ScanResult:
        """Read a journal file, stopping at the first damaged record.

        Returns the fingerprint, every intact mutation record in file
        order, the byte offset up to which the file is valid, and how
        many trailing bytes are torn.  A missing/short magic or an
        unreadable *fingerprint* record is a :class:`JournalError` —
        creation is atomic, so that is corruption, not a crash residue.
        """
        path = Path(path)
        raw = path.read_bytes()
        if len(raw) < len(_MAGIC) or raw[: len(_MAGIC)] != _MAGIC:
            raise JournalError(f"bad journal magic in {path}")
        records: list[JournalRecord] = []
        offset = len(_MAGIC)
        valid = offset
        fingerprint: dict | None = None
        while offset < len(raw):
            if offset + _PREFIX.size > len(raw):
                break  # torn length prefix
            length, crc = _PREFIX.unpack_from(raw, offset)
            if length > _MAX_PAYLOAD:
                break  # garbage prefix — treat as torn
            payload = raw[offset + _PREFIX.size : offset + _PREFIX.size + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                break  # torn or bit-flipped record
            try:
                record = decode_payload(payload)
            except JournalError:
                if fingerprint is None:
                    raise  # corrupt fingerprint record: unusable file
                break  # checksummed-but-undecodable: stop, don't guess
            offset += _PREFIX.size + length
            valid = offset
            if record.op == "fingerprint":
                if fingerprint is None:
                    fingerprint = record.fingerprint or {}
                continue
            if fingerprint is None:
                raise JournalError(
                    f"journal {path} has records before its fingerprint"
                )
            records.append(record)
        if fingerprint is None:
            raise JournalError(f"journal {path} is missing its fingerprint record")
        return ScanResult(
            fingerprint=fingerprint,
            records=records,
            valid_bytes=valid,
            torn_bytes=len(raw) - valid,
        )

    def close(self) -> None:
        """Sync pending appends and close the file (idempotent)."""
        if self._closed:
            return
        if self._dirty:
            self.sync()
        self._file.close()
        self._closed = True

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def fingerprint(self) -> dict:
        return self._fingerprint

    @property
    def size_bytes(self) -> int:
        """Bytes appended so far (magic + fingerprint included)."""
        return self._size

    @property
    def n_records(self) -> int:
        """Mutation records appended or recovered-into this handle."""
        return self._n_records

    @property
    def n_syncs(self) -> int:
        """Completed :meth:`sync` calls."""
        return self._n_syncs

    @property
    def fsync_seconds(self) -> float:
        """Cumulative wall time spent inside fsync."""
        return self._fsync_seconds

    @property
    def dirty(self) -> bool:
        """True when appends are buffered but not yet fsync'd."""
        return self._dirty

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: JournalRecord, *, sync: bool = False) -> int:
        """Append one record; returns its encoded size in bytes.

        The record is *not* durable until :meth:`sync` — callers must
        not acknowledge the mutation before then (the scheduler syncs
        once per formed batch).
        """
        if self._closed:
            raise JournalError(f"journal is closed: {self._path}")
        encoded = encode_record(record)
        self._fs.write(self._file, encoded)
        self._size += len(encoded)
        self._n_records += 1
        self._dirty = True
        if sync:
            self.sync()
        return len(encoded)

    def sync(self) -> float:
        """Fsync buffered appends; returns the fsync wall time in seconds."""
        if self._closed:
            raise JournalError(f"journal is closed: {self._path}")
        started = time.perf_counter()
        self._fs.fsync(self._file)
        elapsed = time.perf_counter() - started
        self._dirty = False
        self._n_syncs += 1
        self._fsync_seconds += elapsed
        return elapsed

    def reset(self, fingerprint: dict) -> None:
        """Atomically replace the file with a fresh, empty journal.

        Used after compaction: the records are in the snapshot now.  A
        plain truncate is not crash-atomic (a crash mid-truncate could
        leave a half-record at the new tail that still checksums), so
        the fresh journal is built as a temp file and renamed over —
        the same commit point every other atomic write uses.
        """
        if self._closed:
            raise JournalError(f"journal is closed: {self._path}")
        self._file.close()
        seed = _MAGIC + encode_record(
            JournalRecord(op="fingerprint", fingerprint=fingerprint)
        )
        atomic_write_bytes(self._path, seed, fs=self._fs)
        self._file = open(self._path, "r+b")
        self._file.seek(0, 2)
        self._fingerprint = fingerprint
        self._size = len(seed)
        self._n_records = 0
        self._dirty = False

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"records={self._n_records}"
        return f"Journal(path={str(self._path)!r}, {state})"


class JournalSet:
    """The per-shard journal files of one serving root.

    One file per shard (``wal-000.log`` …), a single global sequence
    counter, and group-commit bookkeeping: ``append_*`` methods buffer,
    :meth:`sync` fsyncs every dirty file (the scheduler's once-per-batch
    durability point), and ``on_fsync`` (when set) observes each fsync's
    wall time — the scheduler wires it to the
    ``repro_journal_fsync_seconds`` histogram.
    """

    def __init__(
        self,
        root: str | Path,
        fingerprint: dict,
        n_shards: int = 1,
        *,
        fs: FileSystem = REAL_FS,
    ) -> None:
        if n_shards < 1:
            raise JournalError(f"n_shards must be >= 1; got {n_shards}")
        self._root = Path(root)
        self._fingerprint = fingerprint
        self._n = int(n_shards)
        self._fs = fs
        self._journals: list[Journal] = []
        self._seq = 0
        self._last_touched: list[int] = []
        self.on_fsync: Callable[[float], None] | None = None
        self.replayed_records = 0

    @staticmethod
    def shard_path(root: str | Path, shard: int) -> Path:
        return Path(root) / f"wal-{shard:03d}.log"

    @staticmethod
    def existing_paths(root: str | Path) -> list[Path]:
        """The journal files currently present under ``root``, in order."""
        return sorted(Path(root).glob("wal-[0-9][0-9][0-9].log"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """(Re)create every shard journal fresh, removing stale extras.

        Called at startup after compaction and by online compaction: the
        live records just became part of the snapshot, so each file is
        atomically replaced with an empty one.  Leftover higher-numbered
        files from a previous run with more shards are deleted — their
        records are in the snapshot too, and replaying them against a
        smaller shard count would be refused anyway.
        """
        self._root.mkdir(parents=True, exist_ok=True)
        if self._journals:
            for journal in self._journals:
                journal.reset(self._fingerprint)
        else:
            self._journals = [
                Journal.create(
                    self.shard_path(self._root, shard),
                    self._fingerprint,
                    fs=self._fs,
                )
                for shard in range(self._n)
            ]
        for stale in self.existing_paths(self._root)[self._n :]:
            stale.unlink(missing_ok=True)
        self._last_touched = []

    def close(self) -> None:
        """Sync and close every journal (idempotent)."""
        for journal in self._journals:
            journal.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root

    @property
    def fs(self) -> FileSystem:
        """The (injectable) filesystem this set writes through."""
        return self._fs

    @property
    def n_shards(self) -> int:
        return self._n

    @property
    def fingerprint(self) -> dict:
        return self._fingerprint

    @property
    def journals(self) -> tuple[Journal, ...]:
        return tuple(self._journals)

    @property
    def n_records(self) -> int:
        """Mutation records across all shard files since the last reset."""
        return sum(journal.n_records for journal in self._journals)

    @property
    def size_bytes(self) -> int:
        return sum(journal.size_bytes for journal in self._journals)

    @property
    def n_syncs(self) -> int:
        return sum(journal.n_syncs for journal in self._journals)

    @property
    def fsync_seconds(self) -> float:
        return sum(journal.fsync_seconds for journal in self._journals)

    # ------------------------------------------------------------------
    # Appending (scheduler worker thread only)
    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        """Allocate the next mutation sequence number."""
        self._seq += 1
        return self._seq

    def append_records(
        self, records_by_shard: Mapping[int, JournalRecord], *, sync: bool = False
    ) -> None:
        """Append one mutation's records to their home shard journals.

        All records of one mutation share a sequence number; recovery
        merges them back by it.  Buffered unless ``sync`` — the
        scheduler defers to one group :meth:`sync` per formed batch.
        """
        if not self._journals:
            raise JournalError("journal set has no files; call reset() first")
        touched = []
        for shard, record in records_by_shard.items():
            if not 0 <= shard < self._n:
                raise JournalError(
                    f"record routed to shard {shard} of {self._n}"
                )
            self._journals[shard].append(record)
            touched.append(shard)
        self._last_touched = touched
        if sync:
            self.sync()

    def append_abort(self, seq: int) -> None:
        """Mark ``seq`` aborted on every journal its records touched.

        Defensive: written when a mutation fails *after* journaling
        (apply raised).  Replay collects abort marks first and skips the
        matching records, so the failed mutation never resurfaces.
        """
        for shard in self._last_touched or range(len(self._journals)):
            self._journals[shard].append(JournalRecord.abort(seq))

    def sync(self) -> float:
        """Fsync every dirty journal; returns total fsync seconds.

        This is the group-commit durability point: after it returns,
        every record appended since the previous sync may be
        acknowledged.
        """
        total = 0.0
        for journal in self._journals:
            if journal.dirty:
                total += journal.sync()
        if self.on_fsync is not None and total > 0.0:
            self.on_fsync(total)
        return total

    # ------------------------------------------------------------------
    # Reading (recovery)
    # ------------------------------------------------------------------
    @classmethod
    def scan_root(
        cls, root: str | Path
    ) -> Iterator[tuple[Path, ScanResult]]:
        """Scan every journal file under ``root`` (shard order)."""
        for path in cls.existing_paths(root):
            yield path, Journal.scan(path)

    def __repr__(self) -> str:
        return (
            f"JournalSet(root={str(self._root)!r}, shards={self._n}, "
            f"records={self.n_records if self._journals else 0})"
        )
