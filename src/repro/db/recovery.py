"""Startup recovery and snapshot compaction for a journaled serving root.

A serving root directory is the unit of durability::

    root/
      MANIFEST.json        -> {"snapshot": "snap-000007", "fingerprint": ...}
      snap-000007/         the last compacted snapshot (ImageDatabase.save)
      wal-000.log ...      per-shard write-ahead journals since that snapshot

The manifest is the single commit point: it is only ever replaced
atomically (temp + fsync + rename), and it names the one snapshot
directory that is current.  Compaction writes a *fresh* ``snap-NNNNNN``
directory, fsyncs it, flips the manifest, and only then resets the
journals — a crash at any point leaves either the old
(manifest, snapshot, journal) triple or the new one, never a mix that
replays into a different state.

**Recovery algorithm** (:func:`recover`):

1. Read the manifest; load the snapshot it names.  A root with journal
   records but no manifest (or a manifest naming a missing snapshot) is
   a hard :class:`~repro.errors.RecoveryError` — replaying onto the
   wrong base would corrupt silently.
2. Scan every journal file.  Torn tail records (failed CRC) are counted
   and truncated, never applied; they are by construction
   unacknowledged (the scheduler fsyncs before resolving futures).
3. Demand fingerprint equality (format version + feature config)
   between the manifest, every journal, and the serving schema.
4. Merge records across shard files by sequence number, collect abort
   marks, and replay in sequence order.  Replay is idempotent: an add
   whose ids already exist is skipped whole, a remove is filtered to
   ids actually present — so a crash *between* the manifest flip and
   the journal reset (records already baked into the snapshot) replays
   to the same state, and replaying a journal twice equals once.

**Why sorting merged add-rows by id is correct:** a sharded mutation's
records share one ``seq`` and split the original row list by home
shard; ids were allocated sequentially over the original rows, so
ascending id order *is* the original row order.

:func:`open_serving_root` is the serve-boot flow: recover if the root
has history, otherwise seed from the ``--db`` database; then compact
immediately so serving always starts from a fresh snapshot and empty
journals.
"""

from __future__ import annotations

import json
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.db.database import ImageDatabase
from repro.db.fsutil import REAL_FS, FileSystem, atomic_write_bytes
from repro.db.journal import (
    FORMAT_VERSION,
    JournalRecord,
    JournalSet,
    fingerprint_of,
)
from repro.errors import JournalError, RecoveryError
from repro.features.pipeline import FeatureSchema
from repro.metrics.base import Metric

__all__ = [
    "MANIFEST_FILE",
    "RecoveryReport",
    "database_fingerprint",
    "read_manifest",
    "write_manifest",
    "recover",
    "compact",
    "open_serving_root",
]

MANIFEST_FILE = "MANIFEST.json"
_SNAP_PREFIX = "snap-"


def database_fingerprint(db: ImageDatabase) -> dict:
    """The compatibility fingerprint of a live database's configuration."""
    return fingerprint_of(
        [(name, db.schema.get(name).dim) for name in db.schema.names],
        {name: metric.name for name, metric in db.metrics.items()},
    )


def read_manifest(root: str | Path) -> dict | None:
    """The parsed manifest, or ``None`` when the root has none yet."""
    path = Path(root) / MANIFEST_FILE
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"unreadable manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict) or "snapshot" not in manifest:
        raise RecoveryError(f"malformed manifest {path}: {manifest!r}")
    return manifest


def write_manifest(
    root: str | Path, manifest: dict, *, fs: FileSystem = REAL_FS
) -> None:
    """Atomically replace the root's manifest — the commit point."""
    atomic_write_bytes(
        Path(root) / MANIFEST_FILE,
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        fs=fs,
    )


@dataclass(frozen=True)
class RecoveryReport:
    """What one :func:`recover` call found and did."""

    snapshot: str | None  #: snapshot directory name replay started from
    journal_files: int
    records_scanned: int  #: intact mutation records across all journals
    adds_applied: int
    removes_applied: int
    records_skipped: int  #: already-in-snapshot or empty-after-filter
    records_aborted: int  #: skipped via abort marks
    torn_bytes_truncated: int
    replay_s: float
    items: int  #: live items after replay
    generations: dict = field(default_factory=dict)

    @property
    def records_applied(self) -> int:
        return self.adds_applied + self.removes_applied

    def summary(self) -> str:
        """One human-readable line (the CLI prints this)."""
        return (
            f"recovered {self.items} items from "
            f"{self.snapshot or 'empty root'} + {self.journal_files} "
            f"journal(s): {self.adds_applied} adds, "
            f"{self.removes_applied} removes replayed "
            f"({self.records_skipped} skipped, {self.records_aborted} "
            f"aborted, {self.torn_bytes_truncated} torn bytes truncated) "
            f"in {self.replay_s * 1e3:.1f} ms"
        )


def _check_fingerprint(expected: dict, found: dict, source: str) -> None:
    if found != expected:
        raise RecoveryError(
            f"fingerprint mismatch in {source}: journal/snapshot were "
            f"written under {found!r} but the serving configuration is "
            f"{expected!r}; refusing to replay (rebuild the root or fix "
            f"the schema)"
        )


def recover(
    root: str | Path,
    schema: FeatureSchema,
    *,
    metrics: Mapping[str, Metric] | None = None,
    index_factory: Callable | None = None,
    backend=None,
    fs: FileSystem = REAL_FS,
    repair: bool = True,
) -> tuple[ImageDatabase, RecoveryReport]:
    """Rebuild the database state a crashed (or cleanly stopped) serving
    root represents: last snapshot + intact journal records.

    ``schema``/``metrics``/``index_factory``/``backend`` configure the
    rebuilt database exactly as :meth:`ImageDatabase.load` would; the
    stored fingerprint must match that configuration.  (The backend is
    not part of the fingerprint — it changes where index cores live,
    never what any query returns.)  With ``repair`` (the default) torn
    journal tails are truncated on disk; pass ``False`` for a
    read-only inspection replay.

    Raises
    ------
    RecoveryError
        Manifest/snapshot/journal inconsistency or fingerprint mismatch.
    """
    root = Path(root)
    started = time.perf_counter()
    probe = ImageDatabase(
        schema, metrics=metrics, index_factory=index_factory, backend=backend
    )
    expected = database_fingerprint(probe)

    scans = []
    try:
        for path, scan in JournalSet.scan_root(root):
            scans.append((path, scan))
    except JournalError as exc:
        raise RecoveryError(f"unreadable journal under {root}: {exc}") from exc
    for path, scan in scans:
        _check_fingerprint(expected, scan.fingerprint, str(path))

    manifest = read_manifest(root)
    if manifest is None:
        if any(scan.records for _path, scan in scans):
            raise RecoveryError(
                f"{root} has journal records but no manifest; the snapshot "
                f"they apply to is unknown — refusing to replay"
            )
        db = probe
        snapshot_name = None
    else:
        _check_fingerprint(
            expected, manifest.get("fingerprint", {}), str(root / MANIFEST_FILE)
        )
        snapshot_name = str(manifest["snapshot"])
        snapshot_dir = root / snapshot_name
        if not snapshot_dir.is_dir():
            raise RecoveryError(
                f"manifest names snapshot {snapshot_name!r} but "
                f"{snapshot_dir} does not exist"
            )
        db = ImageDatabase.load(
            snapshot_dir,
            schema,
            metrics=metrics,
            index_factory=index_factory,
            backend=backend,
        )

    if repair:
        for path, scan in scans:
            if scan.torn_bytes:
                with open(path, "r+b") as file:
                    file.truncate(scan.valid_bytes)

    # Merge records across shard files by sequence number; abort marks
    # (written when apply failed after journaling) veto their sequence.
    by_seq: dict[int, list[JournalRecord]] = {}
    aborted: set[int] = set()
    for _path, scan in scans:
        for record in scan.records:
            if record.op == "abort":
                aborted.add(record.seq)
            else:
                by_seq.setdefault(record.seq, []).append(record)

    adds = removes = skipped = n_aborted = 0
    for seq in sorted(by_seq):
        if seq in aborted:
            n_aborted += len(by_seq[seq])
            continue
        parts = by_seq[seq]
        op = parts[0].op
        if op == "add":
            applied = _replay_add(db, parts)
        else:
            applied = _replay_remove(db, parts)
        if applied:
            adds += applied if op == "add" else 0
            removes += applied if op == "remove" else 0
        else:
            skipped += len(parts)

    report = RecoveryReport(
        snapshot=snapshot_name,
        journal_files=len(scans),
        records_scanned=sum(len(scan.records) for _path, scan in scans),
        adds_applied=adds,
        removes_applied=removes,
        records_skipped=skipped,
        records_aborted=n_aborted,
        torn_bytes_truncated=sum(scan.torn_bytes for _path, scan in scans),
        replay_s=time.perf_counter() - started,
        items=len(db),
        generations=db.generations(),
    )
    return db, report


def _replay_add(db: ImageDatabase, parts: list[JournalRecord]) -> int:
    """Apply one (possibly sharded) add; returns records applied (0 = skip).

    Idempotence rule: if *any* of the mutation's ids is already present,
    the whole mutation is in the snapshot (mutations apply atomically)
    and the record is skipped.  Ascending id order across the merged
    parts reconstructs the original row order (ids were allocated
    sequentially over rows).

    Completeness rule: a sharded mutation writes one record per home
    shard, and per-file fsyncs are not atomic as a group — a crash
    between them strands a strict subset on disk.  Each part carries
    the whole mutation's row count (``total``); when the surviving
    parts do not add up, the mutation was never acknowledged (the ack
    follows the *last* fsync) and must be skipped, not half-applied.
    """
    rows: list[tuple[int, JournalRecord, int]] = []
    for part in parts:
        for row, image_id in enumerate(part.ids):
            rows.append((image_id, part, row))
    if not rows:
        return 0
    expected = parts[0].total
    if expected is not None and len(rows) != expected:
        return 0
    if any(image_id in db.catalog for image_id, _part, _row in rows):
        return 0
    rows.sort(key=lambda item: item[0])
    ids = [image_id for image_id, _part, _row in rows]
    matrices = {
        feature: np.stack(
            [part.matrices[feature][row] for _id, part, row in rows]
        )
        for feature in parts[0].matrices
    }
    labels = (
        [part.labels[row] for _id, part, row in rows]
        if parts[0].labels is not None
        else None
    )
    names = (
        [part.names[row] for _id, part, row in rows]
        if parts[0].names is not None
        else None
    )
    db.add_vectors(matrices, labels=labels, names=names, ids=ids)
    return len(parts)


def _replay_remove(db: ImageDatabase, parts: list[JournalRecord]) -> int:
    """Apply one (possibly sharded) remove, filtered to present ids.

    The same completeness rule as :func:`_replay_add` applies: when the
    surviving parts cover fewer ids than the mutation's ``total``, the
    crash landed between per-shard fsyncs and the mutation was never
    acknowledged — skip it whole rather than remove a subset.
    """
    expected = parts[0].total
    if expected is not None and sum(len(part.ids) for part in parts) != expected:
        return 0
    present = [
        image_id
        for part in parts
        for image_id in part.ids
        if image_id in db.catalog
    ]
    if not present:
        return 0
    db.remove(present)
    return len(parts)


def _next_snapshot_name(root: Path) -> str:
    highest = -1
    for entry in root.glob(f"{_SNAP_PREFIX}*"):
        try:
            highest = max(highest, int(entry.name[len(_SNAP_PREFIX) :]))
        except ValueError:
            continue
    return f"{_SNAP_PREFIX}{highest + 1:06d}"


def compact(
    journal_set: JournalSet,
    db: ImageDatabase,
    *,
    keep_snapshots: int = 1,
) -> str:
    """Fold the journaled history into a fresh snapshot; reset journals.

    The crash-safe sequence, in order:

    1. save ``db`` into a new ``snap-NNNNNN`` directory (every file
       fsync'd — the directory is unreferenced until step 2, so partial
       writes there are garbage, not corruption);
    2. atomically flip ``MANIFEST.json`` to name it — **the commit
       point**;
    3. atomically reset every journal file (their records are now part
       of the snapshot; replay's already-present rule makes a crash
       between 2 and 3 harmless);
    4. best-effort delete superseded snapshot directories beyond
       ``keep_snapshots``.

    Returns the new snapshot's directory name.
    """
    fs = journal_set.fs
    root = journal_set.root
    root.mkdir(parents=True, exist_ok=True)
    name = _next_snapshot_name(root)
    snapshot_dir = root / name
    db.save(snapshot_dir, fs=fs)
    fs.fsync_dir(snapshot_dir)
    fs.fsync_dir(root)
    write_manifest(
        root,
        {
            "snapshot": name,
            "fingerprint": journal_set.fingerprint,
            "items": len(db),
        },
        fs=fs,
    )
    journal_set.reset()
    survivors = sorted(
        (entry for entry in root.glob(f"{_SNAP_PREFIX}*") if entry.is_dir()),
        key=lambda entry: entry.name,
    )
    for stale in survivors[: max(0, len(survivors) - max(1, keep_snapshots))]:
        shutil.rmtree(stale, ignore_errors=True)
    return name


def open_serving_root(
    root: str | Path,
    seed_db: ImageDatabase,
    *,
    n_shards: int = 1,
    fs: FileSystem = REAL_FS,
) -> tuple[ImageDatabase, JournalSet, RecoveryReport | None]:
    """Open (or initialize) a journaled serving root — the serve-boot flow.

    A root with history (a manifest or journal files) is recovered:
    the snapshot is loaded and journals replayed — ``seed_db`` then only
    supplies the configuration (schema/metrics/index factory), its
    items are ignored in favour of the recovered state.  A fresh root is
    seeded from ``seed_db``'s items.  Either way the state is compacted
    immediately, so the returned :class:`JournalSet` starts empty over a
    current snapshot, and the returned database is the one to serve.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    has_history = (
        (root / MANIFEST_FILE).exists() or bool(JournalSet.existing_paths(root))
    )
    report: RecoveryReport | None = None
    if has_history:
        db, report = recover(
            root,
            seed_db.schema,
            metrics=seed_db.metrics,
            index_factory=seed_db.index_factory,
            backend=seed_db.backend_factory,
            fs=fs,
        )
    else:
        db = seed_db
    journal_set = JournalSet(
        root, database_fingerprint(db), n_shards, fs=fs
    )
    compact(journal_set, db)
    if report is not None:
        journal_set.replayed_records = report.records_applied
    return db, journal_set, report
