"""The :class:`ImageDatabase` facade.

Ties every subsystem together into the system the paper describes:

* **insert** — an image comes in, the configured
  :class:`~repro.features.FeatureSchema` extracts all its signatures,
  the catalog records its metadata.  The image itself plays no further
  part; only signatures are kept.
* **index** — per feature, a metric index (VP-tree by default) is built
  lazily over the signatures.  Once built, indexes stay live across
  mutations: inserts ride :meth:`~repro.index.base.MetricIndex.insert_batch`
  and :meth:`remove` rides ``MetricIndex.delete`` (dynamic structures
  grow/shrink in place, static trees overlay a pending buffer and
  tombstones — see ``docs/mutability.md``), so ingest never pays a
  from-scratch rebuild per mutation.
* **generations** — every mutation bumps a monotonic per-feature
  :meth:`generation` counter.  The serving layer stamps cached results
  with the generation they were computed under and lazily invalidates
  on mismatch, which is what lets a *mutating* database serve without
  global cache flushes.
* **query** — query-by-example: extract the query image's signature and
  run a k-NN or range search; multi-feature queries combine evidence
  across features by weighted scores or rank fusion.  Batches of
  queries go through ``query_batch`` / ``range_query_batch``, which
  ride the index's vectorized batch path (identical results, one
  engine pass instead of per-query calls).
* **persist** — catalog to JSON, one paged
  :class:`~repro.db.store.FeatureStore` per feature.

All query entry points accept either an :class:`~repro.image.Image`
(signatures are extracted on the fly) or a precomputed feature vector;
callers that validated their vectors up front (the
:mod:`repro.serve` scheduler) pass ``precomputed=True`` to skip the
extraction/stacking pass.  :meth:`ImageDatabase.add_vectors` is the
matching ingest path for signature matrices without images.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.db.backend import BackendFactory, resolve_backend_factory
from repro.db.catalog import Catalog, ImageRecord
from repro.db.fsutil import REAL_FS, FileSystem, atomic_write_bytes, fsync_file
from repro.db.query import (
    RetrievalResult,
    borda_fuse,
    combine_feature_distances,
    reciprocal_rank_fuse,
    to_retrieval_results,
)
from repro.db.store import FeatureStore
from repro.errors import CatalogError, QueryError
from repro.features.base import FeatureExtractor
from repro.features.pipeline import FeatureSchema, default_schema
from repro.image.core import Image
from repro.index.base import MetricIndex, Neighbor
from repro.index.vptree import VPTree
from repro.metrics.base import Metric
from repro.metrics.minkowski import EuclideanDistance

__all__ = ["ImageDatabase"]

IndexFactory = Callable[[Metric], MetricIndex]

_CONFIG_FILE = "config.json"
_CATALOG_FILE = "catalog.json"
_FEATURE_DIR = "features"


class ImageDatabase:
    """A content-based image database.

    Parameters
    ----------
    schema:
        The features extracted for every image (default:
        :func:`repro.features.pipeline.default_schema`).
    metrics:
        Per-feature metric overrides, ``feature name -> Metric``
        (default: Euclidean everywhere).
    index_factory:
        Builds an index from a metric (default: ``VPTree(metric)``).
        One index per feature is maintained.
    backend:
        Storage for index core rows (``docs/storage.md``): a spec
        string (``"memory"``, ``"mmap"``, ``"mmap:ROOT"``), an existing
        :class:`~repro.db.backend.BackendFactory` (shared across shard
        views), or ``None`` for the ``$REPRO_BACKEND`` environment
        default (memory).

    Examples
    --------
    >>> from repro.image import synth
    >>> import numpy as np
    >>> db = ImageDatabase()
    >>> rng = np.random.default_rng(7)
    >>> for i in range(4):
    ...     _ = db.add_image(synth.compose_scene(64, 64, rng), label="scenes")
    >>> results = db.query(synth.compose_scene(64, 64, rng), k=2)
    >>> len(results)
    2
    """

    def __init__(
        self,
        schema: FeatureSchema | None = None,
        *,
        metrics: Mapping[str, Metric] | None = None,
        index_factory: IndexFactory | None = None,
        backend: "str | BackendFactory | None" = None,
    ) -> None:
        self._schema = schema if schema is not None else default_schema()
        if len(self._schema) == 0:
            raise QueryError("schema must contain at least one feature")
        metrics = dict(metrics or {})
        unknown = set(metrics) - set(self._schema.names)
        if unknown:
            raise QueryError(f"metrics refer to unknown features: {sorted(unknown)}")
        self._metrics: dict[str, Metric] = {
            name: metrics.get(name, EuclideanDistance()) for name in self._schema.names
        }
        self._index_factory: IndexFactory = index_factory or (
            lambda metric: VPTree(metric)
        )
        self._backend_factory: BackendFactory = resolve_backend_factory(backend)
        self._catalog = Catalog()
        self._vectors: dict[str, dict[int, np.ndarray]] = {
            name: {} for name in self._schema.names
        }
        self._indexes: dict[str, MetricIndex] = {}
        self._stale: set[str] = set()
        self._generations: dict[str, int] = {
            name: 0 for name in self._schema.names
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self) -> FeatureSchema:
        """The feature schema images are extracted with."""
        return self._schema

    @property
    def catalog(self) -> Catalog:
        """Image metadata records."""
        return self._catalog

    @property
    def metrics(self) -> dict[str, Metric]:
        """Per-feature metric configuration (a fresh dict).

        Recovery builds a replayed database with the same configuration
        as the serving one; passing this (with :attr:`index_factory`)
        reproduces the constructor arguments.
        """
        return dict(self._metrics)

    @property
    def index_factory(self) -> IndexFactory:
        """The metric → index constructor this database builds with."""
        return self._index_factory

    @property
    def backend_factory(self) -> BackendFactory:
        """The storage factory behind every index core (shared with
        shard views, so its counters are service-wide)."""
        return self._backend_factory

    def backend_info(self) -> dict:
        """Backend name and aggregated buffer-pool counters — the
        figures ``/stats`` and ``/metrics`` expose."""
        return self._backend_factory.describe()

    def __len__(self) -> int:
        return len(self._catalog)

    @property
    def default_feature(self) -> str:
        """The feature used when a query does not name one (schema's first)."""
        return self._schema.names[0]

    def metric_for(self, feature: str) -> Metric:
        """The metric configured for ``feature``."""
        self._check_feature(feature)
        return self._metrics[feature]

    def generation(self, feature: str | None = None) -> int:
        """The monotonic data-version stamp of one feature.

        Every mutation (:meth:`add_image`, :meth:`add_vectors`,
        :meth:`remove`, :meth:`delete_image`) increments each touched
        feature's generation by one.  Two calls returning the same
        number therefore saw the identical item set for that feature —
        the invariant the serving layer's result cache keys its lazy
        invalidation on (see ``repro.serve.cache``).
        """
        feature = feature or self.default_feature
        self._check_feature(feature)
        return self._generations[feature]

    def generations(self) -> dict[str, int]:
        """All per-feature generation stamps, as a fresh dict."""
        return dict(self._generations)

    def index_for(self, feature: str) -> MetricIndex:
        """The (built) index for ``feature``, building it if needed."""
        self._check_feature(feature)
        self._ensure_index(feature)
        return self._indexes[feature]

    def feature_matrix(self, feature: str) -> tuple[list[int], np.ndarray]:
        """All stored vectors of one feature: ``(ids, (n, d) array)``."""
        self._check_feature(feature)
        table = self._vectors[feature]
        ids = list(table)
        if not ids:
            extractor = self._schema.get(feature)
            return [], np.empty((0, extractor.dim))
        return ids, np.stack([table[i] for i in ids])

    def vector_of(self, feature: str, image_id: int) -> np.ndarray:
        """The stored signature of one image for one feature (a copy)."""
        self._check_feature(feature)
        try:
            return self._vectors[feature][image_id].copy()
        except KeyError:
            raise QueryError(f"no image with id {image_id}") from None

    def extract_query_vector(
        self, query: Image | np.ndarray, feature: str | None = None
    ) -> np.ndarray:
        """The validated query signature the query entry points would use.

        Callers that submit the same query several times — the serving
        layer's admission path, which also digests the vector for its
        result cache — extract once up front and then pass
        ``precomputed=True`` to the query methods.
        """
        feature = feature or self.default_feature
        self._check_feature(feature)
        return self._query_vector(query, feature)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_image(
        self,
        image: Image,
        *,
        label: str | None = None,
        name: str | None = None,
        **extra: object,
    ) -> int:
        """Insert an image: extract all features, record metadata.

        On a database whose indexes are already built, the new
        signatures are inserted *incrementally* (each index's
        ``insert_batch`` path) instead of invalidating the indexes —
        the next query pays at most a bounded overlay scan, never a
        from-scratch rebuild.  Bumps every feature's :meth:`generation`.

        Returns the allocated image id.
        """
        image_id = self._catalog.allocate_id()
        record = ImageRecord(
            image_id=image_id,
            name=name or f"image_{image_id}",
            width=image.width,
            height=image.height,
            mode=image.mode,
            label=label,
            extra=dict(extra),
        )
        signatures = self._schema.extract_all(image)
        self._catalog.insert(record)
        for feature, vector in signatures.items():
            self._vectors[feature][image_id] = vector
        self._register_insert(
            [image_id],
            {feature: vector[None, :] for feature, vector in signatures.items()},
        )
        return image_id

    def add_images(
        self, images: Sequence[tuple[Image, str | None]]
    ) -> list[int]:
        """Bulk insert of ``(image, label)`` pairs; returns the new ids."""
        return [self.add_image(image, label=label) for image, label in images]

    def add_vectors(
        self,
        signatures: Mapping[str, np.ndarray] | np.ndarray,
        *,
        labels: Sequence[str | None] | None = None,
        names: Sequence[str] | None = None,
        ids: Sequence[int] | None = None,
    ) -> list[int]:
        """Bulk insert of precomputed signatures — no images, no extraction.

        The ingest-side twin of the query methods' ``precomputed`` path:
        serving benchmarks and load tests build databases directly from
        vector matrices (typically under a
        :class:`~repro.features.base.PresetSignature` schema).

        Parameters
        ----------
        signatures:
            ``{feature name -> (n, d_feature) matrix}`` covering every
            schema feature, or a single ``(n, d)`` matrix when the schema
            has exactly one feature.
        labels, names:
            Optional per-row metadata, each of length ``n``.
        ids:
            Explicit image ids, one per row, each currently unused.  By
            default ids are allocated sequentially; the sharded serving
            layer allocates globally and passes the assignment down so a
            row keeps the same id it would have had unsharded.

        Returns
        -------
        list[int]
            The image ids, in row order.
        """
        matrices, n_rows = self.validate_signatures(
            signatures, labels=labels, names=names
        )
        if ids is not None:
            ids = [int(image_id) for image_id in ids]
            if len(ids) != n_rows:
                raise QueryError(f"{len(ids)} ids for {n_rows} vectors")
            if len(set(ids)) != len(ids):
                raise QueryError(f"duplicate ids in add input: {ids}")
            taken = [image_id for image_id in ids if image_id in self._catalog]
            if taken:
                raise QueryError(f"image id {taken[0]} is already in use")

        out_ids: list[int] = []
        for row in range(n_rows):
            image_id = ids[row] if ids is not None else self._catalog.allocate_id()
            record = ImageRecord(
                image_id=image_id,
                name=names[row] if names is not None else f"vector_{image_id}",
                width=0,
                height=0,
                mode="vector",
                label=labels[row] if labels is not None else None,
            )
            self._catalog.insert(record)
            for feature, matrix in matrices.items():
                self._vectors[feature][image_id] = matrix[row].copy()
            out_ids.append(image_id)
        self._register_insert(out_ids, matrices)
        return out_ids

    def validate_signatures(
        self,
        signatures: Mapping[str, np.ndarray] | np.ndarray,
        *,
        labels: Sequence[str | None] | None = None,
        names: Sequence[str] | None = None,
    ) -> tuple[dict[str, np.ndarray], int]:
        """Validate an :meth:`add_vectors` payload without inserting it.

        Returns the normalized ``{feature: (n, d) float64 matrix}``
        mapping and the row count.  The sharded serving layer calls this
        before splitting rows across shard views, so a malformed payload
        fails atomically instead of partially mutating some shards.
        """
        if not isinstance(signatures, Mapping):
            if len(self._schema) != 1:
                raise QueryError(
                    "a bare matrix needs a single-feature schema; this schema "
                    f"has {list(self._schema.names)} — pass a mapping instead"
                )
            signatures = {self.default_feature: signatures}
        unknown = set(signatures) - set(self._schema.names)
        if unknown:
            raise QueryError(
                f"signatures refer to unknown features: {sorted(unknown)}"
            )
        missing = set(self._schema.names) - set(signatures)
        if missing:
            raise QueryError(f"signatures missing features: {sorted(missing)}")

        matrices: dict[str, np.ndarray] = {}
        n_rows: int | None = None
        for feature in self._schema.names:
            matrix = np.asarray(signatures[feature], dtype=np.float64)
            dim = self._schema.get(feature).dim
            if matrix.ndim != 2 or matrix.shape[1] != dim:
                raise QueryError(
                    f"feature {feature!r}: expected an (n, {dim}) matrix; "
                    f"got shape {matrix.shape}"
                )
            if not np.all(np.isfinite(matrix)):
                raise QueryError(f"feature {feature!r}: non-finite values")
            if n_rows is None:
                n_rows = matrix.shape[0]
            elif matrix.shape[0] != n_rows:
                raise QueryError(
                    f"feature {feature!r} has {matrix.shape[0]} rows, "
                    f"expected {n_rows}"
                )
            matrices[feature] = matrix
        assert n_rows is not None
        for field_name, values in (("labels", labels), ("names", names)):
            if values is not None and len(values) != n_rows:
                raise QueryError(
                    f"{field_name} has {len(values)} entries for {n_rows} vectors"
                )
        return matrices, n_rows

    def remove(self, image_ids: Sequence[int]) -> list[ImageRecord]:
        """Remove images by id; returns their records, in call order.

        Validates every id before touching anything (an unknown id
        raises and the database is unchanged).  Built indexes shed the
        items incrementally through ``MetricIndex.delete`` — dynamic
        structures drop the rows, static trees tombstone until their
        threshold rebuild — and every feature's :meth:`generation` is
        bumped.

        Raises
        ------
        CatalogError
            If an id is unknown.
        QueryError
            If an id is repeated in ``image_ids``.
        """
        image_ids = [int(image_id) for image_id in image_ids]
        if not image_ids:
            return []
        for image_id in image_ids:
            self._catalog.get(image_id)  # raises CatalogError when unknown
        if len(set(image_ids)) != len(image_ids):
            raise QueryError(f"duplicate ids in remove input: {image_ids}")
        records = [self._catalog.delete(image_id) for image_id in image_ids]
        for table in self._vectors.values():
            for image_id in image_ids:
                table.pop(image_id, None)
        for feature in self._schema.names:
            self._generations[feature] += 1
            index = self._live_index(feature)
            if index is not None:
                index.delete(image_ids)
            else:
                self._stale.add(feature)
        return records

    def delete_image(self, image_id: int) -> ImageRecord:
        """Remove one image and its signatures (see :meth:`remove`)."""
        return self.remove([image_id])[0]

    def build_indexes(self, features: Sequence[str] | None = None) -> None:
        """(Re)build indexes now instead of lazily at first query."""
        for feature in features if features is not None else self._schema.names:
            self._check_feature(feature)
            self._stale.add(feature)
            self._ensure_index(feature)

    def next_image_id(self) -> int:
        """The id the next insert would allocate (no allocation happens).

        The sharded serving layer seeds its global id allocator from
        this, so ids assigned through shards match the sequence an
        unsharded database would have produced.
        """
        return self._catalog.next_id

    def shard_view(self, image_ids: Sequence[int]) -> "ImageDatabase":
        """A new database over a subset of this one's items, ids preserved.

        The view shares this database's schema, metrics, and index
        factory (all stateless configuration) but owns its own catalog,
        vector tables, indexes, and generation stamps — it is a fully
        independent database whose item set happens to be a subset of
        this one's.  Records are reused as-is (they are frozen), vector
        rows are referenced, not copied (both sides treat stored vectors
        as immutable).  Indexes build lazily at the view's first query.

        This is the constructor behind sharded scatter-gather serving
        (``repro.serve.shard``): the item set is partitioned by id hash
        into N views, each serving its slice with its own index set.

        Raises
        ------
        CatalogError
            If an id is unknown.
        QueryError
            If an id is repeated in ``image_ids``.
        """
        image_ids = [int(image_id) for image_id in image_ids]
        if len(set(image_ids)) != len(image_ids):
            raise QueryError(f"duplicate ids in shard_view input: {image_ids}")
        view = ImageDatabase(
            self._schema,
            metrics=self._metrics,
            index_factory=self._index_factory,
            backend=self._backend_factory,
        )
        for image_id in image_ids:
            record = self._catalog.get(image_id)  # raises when unknown
            view._catalog.insert(record)
            for feature in self._schema.names:
                view._vectors[feature][image_id] = self._vectors[feature][image_id]
        if image_ids:
            view._stale.update(self._schema.names)
        return view

    @classmethod
    def from_views(cls, views: Sequence["ImageDatabase"]) -> "ImageDatabase":
        """Reassemble one database from disjoint shard views.

        The inverse of carving a database into :meth:`shard_view`
        slices: records and vector rows are taken as-is (both sides
        treat them as immutable) and inserted in ascending id order, so
        the merged catalog's iteration order — and therefore the row
        order of a subsequent :meth:`save` — is deterministic regardless
        of how mutations interleaved across shards.  Configuration
        (schema, metrics, index factory) comes from the first view;
        indexes build lazily.  Compaction under the sharded serving
        layer merges the live shard views through this before writing a
        snapshot.

        Raises
        ------
        CatalogError
            If two views share an image id.
        QueryError
            If ``views`` is empty.
        """
        if not views:
            raise QueryError("from_views needs at least one view")
        template = views[0]
        merged = cls(
            template._schema,
            metrics=template._metrics,
            index_factory=template._index_factory,
            backend=template._backend_factory,
        )
        by_id: dict[int, "ImageDatabase"] = {}
        for view in views:
            for image_id in view.catalog.ids:
                if image_id in by_id:
                    raise CatalogError(
                        f"image id {image_id} appears in two views"
                    )
                by_id[image_id] = view
        for image_id in sorted(by_id):
            view = by_id[image_id]
            merged._catalog.insert(view._catalog.get(image_id))
            for feature in merged._schema.names:
                merged._vectors[feature][image_id] = view._vectors[feature][image_id]
        merged._catalog._next_id = max(
            [merged._catalog.next_id] + [view.catalog.next_id for view in views]
        )
        if by_id:
            merged._stale.update(merged._schema.names)
        return merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        query: Image | np.ndarray,
        k: int = 10,
        *,
        feature: str | None = None,
        precomputed: bool = False,
    ) -> list[RetrievalResult]:
        """k-NN query-by-example on one feature.

        With ``precomputed=True`` the query must already be the validated
        signature vector (see :meth:`extract_query_vector`); extraction
        and revalidation are skipped.  The serving layer uses this path:
        it extracts once at admission, digests the vector for its cache,
        and hands the same floats to the engine.
        """
        feature = feature or self.default_feature
        self._check_feature(feature)
        if len(self._catalog) == 0:
            raise QueryError("database is empty")
        vector = (
            self._precomputed_vector(query, feature)
            if precomputed
            else self._query_vector(query, feature)
        )
        index = self.index_for(feature)
        neighbors = index.knn_search(vector, k)
        return self._to_results(neighbors)

    def range_query(
        self,
        query: Image | np.ndarray,
        radius: float,
        *,
        feature: str | None = None,
        precomputed: bool = False,
    ) -> list[RetrievalResult]:
        """Range query-by-example on one feature."""
        feature = feature or self.default_feature
        self._check_feature(feature)
        if len(self._catalog) == 0:
            raise QueryError("database is empty")
        vector = (
            self._precomputed_vector(query, feature)
            if precomputed
            else self._query_vector(query, feature)
        )
        index = self.index_for(feature)
        neighbors = index.range_search(vector, radius)
        return self._to_results(neighbors)

    def query_batch(
        self,
        queries: Sequence[Image | np.ndarray] | np.ndarray,
        k: int = 10,
        *,
        feature: str | None = None,
        precomputed: bool = False,
    ) -> list[list[RetrievalResult]]:
        """k-NN query-by-example for a batch of queries on one feature.

        Equivalent to ``[self.query(q, k, feature=feature) for q in
        queries]`` but answered through the index's batched engine:
        signatures are stacked into one ``(m, d)`` matrix and the
        vectorized metric kernel evaluates each query against the whole
        table in a single pass.  Results (ids, distances, per-query cost
        counters) are identical to the scalar path.

        With ``precomputed=True``, ``queries`` must already be an
        ``(m, d)`` signature matrix; the per-row extraction/stacking pass
        is skipped (the micro-batching scheduler stacks vectors it
        validated at admission).
        """
        feature = feature or self.default_feature
        self._check_feature(feature)
        if len(self._catalog) == 0:
            raise QueryError("database is empty")
        matrix = self._query_matrix(queries, feature, precomputed=precomputed)
        index = self.index_for(feature)
        return [
            to_retrieval_results(neighbors, self._catalog)
            for neighbors in index.knn_search_batch(matrix, k)
        ]

    def range_query_batch(
        self,
        queries: Sequence[Image | np.ndarray] | np.ndarray,
        radius: float,
        *,
        feature: str | None = None,
        precomputed: bool = False,
    ) -> list[list[RetrievalResult]]:
        """Range query-by-example for a batch of queries on one feature."""
        feature = feature or self.default_feature
        self._check_feature(feature)
        if len(self._catalog) == 0:
            raise QueryError("database is empty")
        matrix = self._query_matrix(queries, feature, precomputed=precomputed)
        index = self.index_for(feature)
        return [
            to_retrieval_results(neighbors, self._catalog)
            for neighbors in index.range_search_batch(matrix, radius)
        ]

    def query_multi(
        self,
        query: Image,
        k: int = 10,
        *,
        weights: Mapping[str, float] | None = None,
        pool_factor: int = 5,
    ) -> list[RetrievalResult]:
        """Weighted multi-feature query.

        Each weighted feature contributes a candidate pool of
        ``k * pool_factor`` nearest items from its index; candidates are
        then rescored with a median-scaled weighted combination of their
        exact per-feature distances.  Larger ``pool_factor`` approaches an
        exact multi-feature scan at higher cost.
        """
        if not isinstance(query, Image):
            raise QueryError("query_multi requires an Image (it uses several features)")
        if len(self._catalog) == 0:
            raise QueryError("database is empty")
        if k < 1:
            raise QueryError(f"k must be >= 1; got {k}")
        if pool_factor < 1:
            raise QueryError(f"pool_factor must be >= 1; got {pool_factor}")
        weights = dict(
            weights
            if weights is not None
            else {name: 1.0 for name in self._schema.names}
        )
        active = [name for name, weight in weights.items() if weight > 0.0]
        if not active:
            raise QueryError("at least one weight must be positive")

        pool_size = min(k * pool_factor, len(self._catalog))
        per_feature: dict[str, dict[int, float]] = {}
        candidate_ids: set[int] = set()
        query_vectors: dict[str, np.ndarray] = {}
        for feature in active:
            self._check_feature(feature)
            vector = self._query_vector(query, feature)
            query_vectors[feature] = vector
            neighbors = self.index_for(feature).knn_search(vector, pool_size)
            per_feature[feature] = {nb.id: nb.distance for nb in neighbors}
            candidate_ids.update(per_feature[feature])

        # Fill in exact distances for candidates another feature surfaced.
        for feature in active:
            metric = self._metrics[feature]
            table = self._vectors[feature]
            distances = per_feature[feature]
            for candidate in candidate_ids:
                if candidate not in distances:
                    distances[candidate] = metric.distance(
                        query_vectors[feature], table[candidate]
                    )

        combined = combine_feature_distances(
            per_feature, {name: weights[name] for name in active}
        )
        ranked = sorted(
            combined.items(), key=lambda kv: (kv[1][0], kv[0])
        )[:k]
        return [
            RetrievalResult(
                image_id=image_id,
                distance=score,
                record=self._catalog.get(image_id),
                per_feature=detail,
            )
            for image_id, (score, detail) in ranked
        ]

    def query_fused(
        self,
        query: Image,
        k: int = 10,
        *,
        features: Sequence[str] | None = None,
        method: str = "borda",
        pool_factor: int = 5,
    ) -> list[RetrievalResult]:
        """Rank-fusion multi-feature query (Borda or reciprocal-rank)."""
        if not isinstance(query, Image):
            raise QueryError("query_fused requires an Image")
        if method not in ("borda", "rrf"):
            raise QueryError(f"method must be 'borda' or 'rrf'; got {method!r}")
        if len(self._catalog) == 0:
            raise QueryError("database is empty")
        features = list(features) if features is not None else list(self._schema.names)
        pool_size = min(max(k * pool_factor, k), len(self._catalog))
        rankings = []
        for feature in features:
            self._check_feature(feature)
            vector = self._query_vector(query, feature)
            neighbors = self.index_for(feature).knn_search(vector, pool_size)
            rankings.append([nb.id for nb in neighbors])
        fuse = borda_fuse if method == "borda" else reciprocal_rank_fuse
        fused_ids = fuse(rankings, k)
        return [
            RetrievalResult(
                image_id=image_id,
                distance=float(position),
                record=self._catalog.get(image_id),
            )
            for position, image_id in enumerate(fused_ids)
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path, *, fs: FileSystem = REAL_FS) -> None:
        """Persist catalog + per-feature stores under ``directory``.

        Every file is written atomically (temp + fsync + rename): the
        catalog and config replace their predecessors in one rename
        each, and each feature store is built as ``*.feat.new`` and
        renamed over only once its bytes are fsync'd.  A crash mid-save
        therefore never leaves a *half-written* file — at worst a mix of
        old and new files, which :meth:`load` detects through its
        store-count-vs-catalog consistency check.  (The journaled
        serving path avoids even that window by saving into a fresh
        snapshot directory and flipping a manifest pointer — see
        ``repro.db.recovery``.)
        """
        directory = Path(directory)
        (directory / _FEATURE_DIR).mkdir(parents=True, exist_ok=True)
        ordered_ids = self._catalog.ids
        for feature in self._schema.names:
            path = directory / _FEATURE_DIR / f"{feature}.feat"
            staging = path.with_name(path.name + ".new")
            extractor = self._schema.get(feature)
            with FeatureStore.create(
                staging, extractor.dim, overwrite=True, fs=fs
            ) as store:
                for image_id in ordered_ids:
                    store.append(self._vectors[feature][image_id])
            fsync_file(staging, fs=fs)
            fs.replace(staging, path)
        fs.fsync_dir(directory / _FEATURE_DIR)

        config = {
            "features": [
                {"name": name, "dim": self._schema.get(name).dim}
                for name in self._schema.names
            ],
            "metrics": {name: metric.name for name, metric in self._metrics.items()},
        }
        atomic_write_bytes(
            directory / _CONFIG_FILE,
            json.dumps(config, indent=2).encode("utf-8"),
            fs=fs,
        )
        self._catalog.save(directory / _CATALOG_FILE, fs=fs)

    @classmethod
    def load(
        cls,
        directory: str | Path,
        schema: FeatureSchema,
        *,
        metrics: Mapping[str, Metric] | None = None,
        index_factory: IndexFactory | None = None,
        backend: "str | BackendFactory | None" = None,
    ) -> "ImageDatabase":
        """Load a database saved by :meth:`save`.

        The caller supplies the same ``schema`` (extractors are code, not
        data); stored dimensionalities are validated against it.
        """
        directory = Path(directory)
        config = json.loads((directory / _CONFIG_FILE).read_text())
        stored = {entry["name"]: entry["dim"] for entry in config["features"]}
        if set(stored) != set(schema.names):
            raise QueryError(
                f"schema features {sorted(schema.names)} do not match stored "
                f"features {sorted(stored)}"
            )
        for name in schema.names:
            if schema.get(name).dim != stored[name]:
                raise QueryError(
                    f"feature {name!r}: schema dim {schema.get(name).dim} != "
                    f"stored dim {stored[name]}"
                )

        db = cls(
            schema, metrics=metrics, index_factory=index_factory, backend=backend
        )
        db._catalog = Catalog.load(directory / _CATALOG_FILE)
        ordered_ids = db._catalog.ids
        for feature in schema.names:
            path = directory / _FEATURE_DIR / f"{feature}.feat"
            with FeatureStore.open(path) as store:
                matrix = store.read_all()
            if matrix.shape[0] != len(ordered_ids):
                raise QueryError(
                    f"feature store {feature!r} holds {matrix.shape[0]} records "
                    f"but catalog has {len(ordered_ids)}"
                )
            db._vectors[feature] = {
                image_id: matrix[row] for row, image_id in enumerate(ordered_ids)
            }
        db._stale.update(schema.names)
        return db

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_feature(self, feature: str) -> None:
        if feature not in self._schema:
            raise QueryError(
                f"unknown feature {feature!r}; schema has {list(self._schema.names)}"
            )

    def _ensure_index(self, feature: str) -> None:
        if feature in self._stale or feature not in self._indexes:
            ids, matrix = self.feature_matrix(feature)
            if not ids:
                raise QueryError("cannot build an index over an empty database")
            previous = self._indexes.get(feature)
            index = self._index_factory(self._metrics[feature])
            index.backend_factory = self._backend_factory
            index.build(ids, matrix)
            self._indexes[feature] = index
            if previous is not None:
                previous.close()  # release the superseded core's storage
            self._stale.discard(feature)

    def _live_index(self, feature: str) -> MetricIndex | None:
        """The feature's index when it can absorb mutations in place."""
        index = self._indexes.get(feature)
        if index is not None and feature not in self._stale and index.is_built:
            return index
        return None

    def _register_insert(
        self, ids: list[int], matrices: Mapping[str, np.ndarray]
    ) -> None:
        """Route freshly stored signatures into the live indexes.

        Features whose index is built take the incremental
        ``insert_batch`` path; the rest just go stale (the lazy build at
        the next query covers them).  Either way the feature's
        generation advances.
        """
        for feature in self._schema.names:
            self._generations[feature] += 1
            index = self._live_index(feature)
            if index is not None:
                index.insert_batch(ids, matrices[feature])
            else:
                self._stale.add(feature)

    def _query_vector(self, query: Image | np.ndarray, feature: str) -> np.ndarray:
        extractor: FeatureExtractor = self._schema.get(feature)
        if isinstance(query, Image):
            return extractor.extract(query)
        vector = np.asarray(query, dtype=np.float64).ravel()
        if vector.shape != (extractor.dim,):
            raise QueryError(
                f"query vector has dim {vector.size}, feature {feature!r} "
                f"expects {extractor.dim}"
            )
        return vector

    def _precomputed_vector(
        self, query: Image | np.ndarray, feature: str
    ) -> np.ndarray:
        if isinstance(query, Image):
            raise QueryError(
                "precomputed=True takes a signature vector, not an Image; "
                "extract it first with extract_query_vector"
            )
        vector = np.asarray(query, dtype=np.float64)
        dim = self._schema.get(feature).dim
        if vector.shape != (dim,):
            raise QueryError(
                f"precomputed query has shape {vector.shape}, feature "
                f"{feature!r} expects ({dim},)"
            )
        return vector

    def _query_matrix(
        self,
        queries: Sequence[Image | np.ndarray] | np.ndarray,
        feature: str,
        *,
        precomputed: bool = False,
    ) -> np.ndarray:
        extractor: FeatureExtractor = self._schema.get(feature)
        if precomputed:
            matrix = np.asarray(queries, dtype=np.float64)
            if matrix.ndim != 2 or matrix.shape[1] != extractor.dim:
                raise QueryError(
                    f"precomputed queries must be an (m, {extractor.dim}) "
                    f"matrix; got shape {matrix.shape}"
                )
            return matrix
        if len(queries) == 0:
            return np.empty((0, extractor.dim))
        return np.stack(
            [self._query_vector(query, feature) for query in queries]
        )

    def _to_results(self, neighbors: list[Neighbor]) -> list[RetrievalResult]:
        return to_retrieval_results(neighbors, self._catalog)

    def __repr__(self) -> str:
        return (
            f"ImageDatabase(images={len(self)}, features={list(self._schema.names)})"
        )
