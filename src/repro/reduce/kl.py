"""The Karhunen-Loève transform (data-dependent PCA).

The KL transform rotates the feature space onto the eigenvectors of the
data covariance and keeps the leading ``out_dim`` axes — the optimal
linear projection in the mean-squared-error sense.  Because the kept
axes are orthonormal, dropping the remaining ones can only *shorten*
Euclidean distances:

    ``||P(x) - P(y)||  <=  ||x - y||``

which is exactly the contractive lower-bound property GEMINI
filter-and-refine search needs for exactness (no false dismissals).

The retained variance (:attr:`KLTransform.explained_variance_ratio`)
measures how tight the bound is in practice: image signatures are highly
correlated, so a handful of axes typically keeps >90% of the variance
and the filter admits few false alarms — this is experiment F8.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.reduce.base import Reducer

__all__ = ["KLTransform"]


class KLTransform(Reducer):
    """Project onto the leading eigenvectors of the sample covariance.

    Parameters
    ----------
    out_dim:
        Number of leading principal axes to keep.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(200, 2)) @ np.array([[3.0, 0.0], [0.0, 0.1]])
    >>> kl = KLTransform(1).fit(data)
    >>> kl.explained_variance_ratio > 0.99
    True
    """

    contractive = True

    def __init__(self, out_dim: int) -> None:
        super().__init__(out_dim)
        self._mean: np.ndarray | None = None
        self._components: np.ndarray | None = None
        self._eigenvalues: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _fit(self, vectors: np.ndarray) -> None:
        self._mean = vectors.mean(axis=0)
        centered = vectors - self._mean
        # rowvar=False: columns are variables.  eigh because the
        # covariance is symmetric — deterministic, real spectrum.
        covariance = np.cov(centered, rowvar=False, bias=True)
        covariance = np.atleast_2d(covariance)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        self._eigenvalues = np.clip(eigenvalues[order], 0.0, None)
        self._components = eigenvectors[:, order[: self._out_dim]].T

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def components(self) -> np.ndarray:
        """The ``(out_dim, in_dim)`` orthonormal projection matrix."""
        if self._components is None:
            raise ReproError("reducer has not been fitted yet")
        return self._components

    @property
    def eigenvalues(self) -> np.ndarray:
        """All covariance eigenvalues, descending."""
        if self._eigenvalues is None:
            raise ReproError("reducer has not been fitted yet")
        return self._eigenvalues

    @property
    def explained_variance_ratio(self) -> float:
        """Fraction of total variance retained by the kept axes."""
        eigenvalues = self.eigenvalues
        total = float(eigenvalues.sum())
        if total == 0.0:
            return 1.0  # constant data: nothing to lose
        return float(eigenvalues[: self._out_dim].sum()) / total

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def _transform(self, vectors: np.ndarray) -> np.ndarray:
        assert self._mean is not None and self._components is not None
        return (vectors - self._mean) @ self._components.T

    def inverse_transform(self, reduced: np.ndarray) -> np.ndarray:
        """Map reduced vectors back to the original space (lossy).

        The reconstruction lies in the affine subspace spanned by the kept
        axes; its residual is the information the projection discarded.
        """
        if self._components is None or self._mean is None:
            raise ReproError("reducer has not been fitted yet")
        array = np.asarray(reduced, dtype=np.float64)
        single = array.ndim == 1
        if single:
            array = array[None, :]
        if array.shape[1] != self._out_dim:
            raise ReproError(
                f"inverse_transform expects dim {self._out_dim}; got {array.shape[1]}"
            )
        result = array @ self._components + self._mean
        return result[0] if single else result

    def reconstruction_error(self, vectors: np.ndarray) -> float:
        """Root-mean-square residual of project-then-reconstruct."""
        vectors = np.asarray(vectors, dtype=np.float64)
        restored = self.inverse_transform(self.transform(vectors))
        return float(np.sqrt(np.mean((vectors - restored) ** 2)))
