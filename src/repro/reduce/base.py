"""The reducer contract and the contractiveness check.

A :class:`Reducer` maps original feature vectors into a low-dimensional
Euclidean space.  The one property the filter-and-refine machinery cares
about is **contractiveness**:

    ``euclidean(reduce(x), reduce(y)) <= metric(x, y)``  for all x, y.

A contractive projection makes the reduced-space search a true *lower
bound* filter: anything it rejects is provably outside the query ball,
so filter-and-refine search stays exact.  Reducers declare whether they
guarantee this (``contractive``), and
:func:`contractiveness_violations` measures it empirically for the ones
that do not.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ReproError
from repro.metrics.base import Metric

__all__ = ["Reducer", "contractiveness_violations"]


class Reducer(ABC):
    """Fit-then-transform projection into a low-dimensional space.

    Subclasses implement ``_fit`` and ``_transform``; this base class
    owns validation and the fitted-state lifecycle.

    Attributes
    ----------
    contractive:
        True when the projection provably never lengthens distances
        (with respect to the metric it was fitted for).  The
        filter-and-refine index uses this to decide whether its results
        are exact or need the "approximate" label.
    """

    contractive: bool = False

    def __init__(self, out_dim: int) -> None:
        if out_dim < 1:
            raise ReproError(f"out_dim must be >= 1; got {out_dim}")
        self._out_dim = int(out_dim)
        self._in_dim: int | None = None

    @property
    def out_dim(self) -> int:
        """Dimensionality of the reduced space."""
        return self._out_dim

    @property
    def in_dim(self) -> int:
        """Dimensionality of the original space (known after :meth:`fit`)."""
        if self._in_dim is None:
            raise ReproError("reducer has not been fitted yet")
        return self._in_dim

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has succeeded."""
        return self._in_dim is not None

    def fit(self, vectors: np.ndarray) -> "Reducer":
        """Learn the projection from a sample of original vectors.

        Returns ``self`` for chaining.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ReproError(
                f"fit needs a non-empty (n, d) array; got shape {vectors.shape}"
            )
        if not np.all(np.isfinite(vectors)):
            raise ReproError("fit input contains non-finite values")
        if self._out_dim > vectors.shape[1]:
            raise ReproError(
                f"out_dim {self._out_dim} exceeds input dim {vectors.shape[1]}"
            )
        self._in_dim = vectors.shape[1]
        self._fit(vectors)
        return self

    def transform(self, vectors: np.ndarray) -> np.ndarray:
        """Project vectors; accepts one ``(d,)`` vector or an ``(n, d)`` batch."""
        if self._in_dim is None:
            raise ReproError("reducer has not been fitted yet")
        array = np.asarray(vectors, dtype=np.float64)
        single = array.ndim == 1
        if single:
            array = array[None, :]
        if array.ndim != 2 or array.shape[1] != self._in_dim:
            raise ReproError(
                f"transform expects dim {self._in_dim}; got shape {array.shape}"
            )
        result = self._transform(array)
        return result[0] if single else result

    @abstractmethod
    def _fit(self, vectors: np.ndarray) -> None:
        """Learn projection parameters (input already validated)."""

    @abstractmethod
    def _transform(self, vectors: np.ndarray) -> np.ndarray:
        """Project a validated ``(n, in_dim)`` batch to ``(n, out_dim)``."""

    def __repr__(self) -> str:
        fitted = f"in_dim={self._in_dim}" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(out_dim={self._out_dim}, {fitted})"


def contractiveness_violations(
    reducer: Reducer,
    vectors: np.ndarray,
    metric: Metric,
    *,
    n_pairs: int = 500,
    seed: int = 0,
    tol: float = 1e-9,
) -> tuple[float, float]:
    """Empirically measure how contractive a fitted reducer is.

    Samples ``n_pairs`` random pairs and compares the reduced Euclidean
    distance against the original metric distance.

    Returns
    -------
    (violation_rate, worst_ratio):
        ``violation_rate`` is the fraction of sampled pairs where the
        reduced distance exceeds the original one by more than ``tol``;
        ``worst_ratio`` is the largest ``reduced / original`` observed
        (1.0 or less means perfectly contractive on the sample).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.shape[0] < 2:
        raise ReproError("need at least two vectors to sample pairs")
    rng = np.random.default_rng(seed)
    reduced = reducer.transform(vectors)
    violations = 0
    worst = 0.0
    for _ in range(n_pairs):
        i, j = rng.choice(vectors.shape[0], size=2, replace=False)
        original = metric.distance(vectors[i], vectors[j])
        projected = float(np.linalg.norm(reduced[i] - reduced[j]))
        if projected > original + tol:
            violations += 1
        if original > 0:
            worst = max(worst, projected / original)
    return violations / n_pairs, worst
