"""FastMap — pivot-pair embedding of a metric space into k axes.

The KL transform needs coordinates; FastMap (Faloutsos & Lin) needs only
distances, so it can embed objects compared with *any* metric into a
Euclidean space an ordinary spatial index can search.

One axis at a time:

1. pick two distant *pivot objects* ``a, b`` (a few alternating
   farthest-point passes — the paper's ``choose-distant-objects``);
2. project every object onto the line through them with the cosine law:

   ``x_i = (d(a,i)^2 + d(a,b)^2 - d(b,i)^2) / (2 d(a,b))``

3. recurse on the *residual* distance
   ``d'(i,j)^2 = d(i,j)^2 - (x_i - x_j)^2`` for the next axis.

For genuinely Euclidean data the residual is again Euclidean and the
embedding is contractive; for general metrics the squared residual can
go negative (clamped to zero here, as in the original), which is what
makes FastMap's lower-bound property *heuristic* — declared
``contractive = False`` and measured, not assumed, by experiment F8.

Transforming an unseen query costs ``2 * out_dim`` metric evaluations
(one per pivot per axis), so queries remain cheap even when the metric
is expensive.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.metrics.base import Metric
from repro.metrics.minkowski import EuclideanDistance
from repro.reduce.base import Reducer

__all__ = ["FastMap"]

#: Alternating farthest-point passes when choosing a pivot pair.
_PIVOT_PASSES = 5


class FastMap(Reducer):
    """Metric-only embedding into ``out_dim`` Euclidean coordinates.

    Parameters
    ----------
    out_dim:
        Number of axes to produce.
    metric:
        The distance the embedding should approximate (default
        Euclidean).  Only ``metric.distance`` is ever called — no
        coordinate structure is assumed.
    seed:
        Seed for the random start of each pivot-pair search.
    """

    contractive = False

    def __init__(
        self, out_dim: int, metric: Metric | None = None, *, seed: int = 0
    ) -> None:
        super().__init__(out_dim)
        metric = metric if metric is not None else EuclideanDistance()
        if not isinstance(metric, Metric):
            raise ReproError(f"FastMap needs a Metric; got {type(metric).__name__}")
        self._metric = metric
        self._seed = seed
        #: Per axis: (pivot_a vector, pivot_b vector, d(a, b)).
        self._pivots: list[tuple[np.ndarray, np.ndarray, float]] = []
        #: Per axis: the pivots' already-fitted coordinates on earlier axes,
        #: cached so query embedding needs no training-set lookups.
        self._pivot_coords: list[tuple[np.ndarray, np.ndarray]] = []

    @property
    def metric(self) -> Metric:
        """The metric the embedding was fitted against."""
        return self._metric

    @property
    def pivot_pairs(self) -> list[tuple[np.ndarray, np.ndarray, float]]:
        """The fitted ``(pivot_a, pivot_b, d_ab)`` triple per axis."""
        if not self._pivots:
            raise ReproError("reducer has not been fitted yet")
        return list(self._pivots)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _fit(self, vectors: np.ndarray) -> None:
        rng = np.random.default_rng(self._seed)
        n = vectors.shape[0]
        self._pivots = []
        self._pivot_coords = []
        # coords[i, axis] accumulates the training embedding; residual
        # distances are derived from the raw metric minus these.
        coords = np.zeros((n, self._out_dim))

        def residual_distance(i: int, j: int, axis: int) -> float:
            d = self._metric.distance(vectors[i], vectors[j])
            gap = d * d - float(np.sum((coords[i, :axis] - coords[j, :axis]) ** 2))
            return float(np.sqrt(max(gap, 0.0)))

        for axis in range(self._out_dim):
            a, b = self._choose_pivots(n, lambda i, j: residual_distance(i, j, axis), rng)
            d_ab = residual_distance(a, b, axis)
            self._pivot_coords.append(
                (coords[a, :axis].copy(), coords[b, :axis].copy())
            )
            if d_ab == 0.0:
                # All residual distances are zero: the data is fully
                # explained; remaining axes stay zero.
                self._pivots.append((vectors[a].copy(), vectors[b].copy(), 0.0))
                continue
            d_a = np.array([residual_distance(a, i, axis) for i in range(n)])
            d_b = np.array([residual_distance(b, i, axis) for i in range(n)])
            coords[:, axis] = (d_a**2 + d_ab**2 - d_b**2) / (2.0 * d_ab)
            self._pivots.append((vectors[a].copy(), vectors[b].copy(), d_ab))

    @staticmethod
    def _choose_pivots(n: int, dist, rng: np.random.Generator) -> tuple[int, int]:
        """Alternating farthest-point passes from a random start."""
        b = int(rng.integers(n))
        a = b
        for _ in range(_PIVOT_PASSES):
            distances = np.array([dist(a, i) for i in range(n)])
            candidate = int(np.argmax(distances))
            if candidate == b:
                break
            a, b = candidate, a
        return a, b

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def _transform(self, vectors: np.ndarray) -> np.ndarray:
        result = np.zeros((vectors.shape[0], self._out_dim))
        for row in range(vectors.shape[0]):
            result[row] = self._embed_one(vectors[row])
        return result

    def _embed_one(self, vector: np.ndarray) -> np.ndarray:
        coords = np.zeros(self._out_dim)
        for axis, (pivot_a, pivot_b, d_ab) in enumerate(self._pivots):
            if d_ab == 0.0:
                continue
            coords_a, coords_b = self._pivot_coords[axis]
            d_a = self._residual_to(vector, coords, pivot_a, coords_a, axis)
            d_b = self._residual_to(vector, coords, pivot_b, coords_b, axis)
            coords[axis] = (d_a**2 + d_ab**2 - d_b**2) / (2.0 * d_ab)
        return coords

    def _residual_to(
        self,
        vector: np.ndarray,
        coords: np.ndarray,
        pivot: np.ndarray,
        pivot_coords: np.ndarray,
        axis: int,
    ) -> float:
        """Residual distance from ``vector`` to a fitted pivot object."""
        d = self._metric.distance(vector, pivot)
        gap = d * d - float(np.sum((coords[:axis] - pivot_coords) ** 2))
        return float(np.sqrt(max(gap, 0.0)))

    def stress(self, vectors: np.ndarray, *, n_pairs: int = 200, seed: int = 0) -> float:
        """Normalized embedding stress on sampled pairs (0 = perfect).

        ``sqrt(sum (d_emb - d_orig)^2 / sum d_orig^2)`` — the standard
        goodness-of-embedding number from the FastMap paper.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.shape[0] < 2:
            raise ReproError("need at least two vectors to sample pairs")
        rng = np.random.default_rng(seed)
        embedded = self.transform(vectors)
        num = 0.0
        den = 0.0
        for _ in range(n_pairs):
            i, j = rng.choice(vectors.shape[0], size=2, replace=False)
            original = self._metric.distance(vectors[i], vectors[j])
            projected = float(np.linalg.norm(embedded[i] - embedded[j]))
            num += (projected - original) ** 2
            den += original**2
        return float(np.sqrt(num / den)) if den > 0 else 0.0
