"""Dimensionality reduction for feature signatures.

High-dimensional signatures (joint color histograms, correlograms) defeat
every index eventually — experiment F2's curse-of-dimensionality curve.
The era's answer (the GEMINI approach: *GEneric Multimedia INdexIng*) was
to search a **cheap low-dimensional projection** of the features and
re-check only the survivors with the full distance.  The projection must
be **contractive** — it may only *shrink* distances — because then the
filter can never lose a true answer (no false dismissals), only admit
false alarms that the refine step removes.

Two reducers are provided:

:class:`~repro.reduce.kl.KLTransform`
    The Karhunen-Loève transform (data-dependent PCA): project onto the
    leading eigenvectors of the signature covariance.  An orthonormal
    projection never lengthens a Euclidean distance, so contractiveness
    is a theorem, and the retained variance tells you how tight the
    lower bound is.
:class:`~repro.reduce.fastmap.FastMap`
    Faloutsos & Lin's pivot-pair embedding.  Unlike the KL transform it
    needs only the *metric*, not coordinates, so it can embed signatures
    compared with any distance (histogram intersection, match distance)
    into k Euclidean axes.  For non-Euclidean inputs contractiveness is
    heuristic, which is why it is a measured quantity in experiment F8
    rather than an assumption.

Both implement the tiny :class:`~repro.reduce.base.Reducer` contract that
:class:`~repro.index.filter_refine.FilterRefineIndex` builds on.
"""

from repro.reduce.base import Reducer, contractiveness_violations
from repro.reduce.kl import KLTransform
from repro.reduce.fastmap import FastMap

__all__ = [
    "Reducer",
    "contractiveness_violations",
    "KLTransform",
    "FastMap",
]
