"""Gabor filter bank texture features.

A Gabor filter is a sinusoid windowed by a Gaussian — a local frequency
probe tuned to one *scale* (wavelength) and one *orientation*.  A bank of
them at S scales x K orientations decomposes an image's texture into
energy per (frequency, direction) channel; the mean and standard
deviation of each channel's response magnitude form the classic
signature used by the medical-imaging retrieval work the survey text
cites (Glatard/Montagnat/Magnin) and by the MARS/Manjunath-Ma CBIR line.

The kernels are generated here from first principles (no OpenCV):

    ``g(x, y) = exp(-(x'^2 + gamma^2 y'^2) / (2 sigma^2))
                * cos(2 pi x' / lambda + psi)``

with ``(x', y')`` the coordinates rotated by the filter orientation.
Even (``psi = 0``) and odd (``psi = pi/2``) phases form a quadrature
pair; their root-sum-square is the phase-invariant response magnitude,
so signatures do not depend on where exactly a stripe falls.

Compared with GLCM statistics (orientation-pooled by default) the Gabor
signature keeps orientation channels separate, which is what lets it
split the horizontal-stripes class from the diagonal-stripes class in
experiment T10.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor
from repro.image.core import Image
from repro.image.filters import convolve2d

__all__ = ["gabor_kernel", "gabor_bank", "gabor_response_magnitude", "GaborFeatures"]


def gabor_kernel(
    wavelength: float,
    orientation: float,
    *,
    phase: float = 0.0,
    sigma_ratio: float = 0.56,
    gamma: float = 0.5,
    truncate: float = 3.0,
) -> np.ndarray:
    """One real Gabor kernel, zero-mean and L2-normalized.

    Parameters
    ----------
    wavelength:
        Sinusoid period in pixels (must exceed 1).
    orientation:
        Filter direction in radians; 0 responds to vertical structure
        (intensity varying along x).
    phase:
        ``0`` for the even (cosine) filter, ``pi/2`` for the odd one.
    sigma_ratio:
        Gaussian width as a fraction of the wavelength (0.56 matches the
        one-octave bandwidth convention).
    gamma:
        Spatial aspect ratio; < 1 elongates the filter along the stripe.
    truncate:
        Kernel radius in units of sigma.

    Returns
    -------
    numpy.ndarray
        Odd-sized square kernel.  The even kernel is mean-subtracted so a
        constant image yields zero response, then both are L2-normalized
        so responses are comparable across scales.
    """
    if wavelength <= 1.0:
        raise FeatureError(f"wavelength must exceed 1 pixel; got {wavelength}")
    if sigma_ratio <= 0.0 or gamma <= 0.0 or truncate <= 0.0:
        raise FeatureError("sigma_ratio, gamma and truncate must be positive")
    sigma = sigma_ratio * wavelength
    radius = max(1, int(np.ceil(truncate * sigma)))
    coords = np.arange(-radius, radius + 1, dtype=np.float64)
    x, y = np.meshgrid(coords, coords)
    x_rot = x * np.cos(orientation) + y * np.sin(orientation)
    y_rot = -x * np.sin(orientation) + y * np.cos(orientation)
    envelope = np.exp(-(x_rot**2 + (gamma * y_rot) ** 2) / (2.0 * sigma**2))
    carrier = np.cos(2.0 * np.pi * x_rot / wavelength + phase)
    kernel = envelope * carrier
    kernel -= kernel.mean()
    norm = float(np.linalg.norm(kernel))
    if norm > 0.0:
        kernel /= norm
    return kernel


def gabor_bank(
    scales: int, orientations: int, *, min_wavelength: float = 3.0
) -> list[tuple[float, float]]:
    """The ``(wavelength, orientation)`` grid of a standard bank.

    Wavelengths double per scale starting at ``min_wavelength``;
    orientations divide the half circle evenly (a filter and its
    180-degree rotation respond identically).
    """
    if scales < 1 or orientations < 1:
        raise FeatureError(
            f"need scales >= 1 and orientations >= 1; got {scales}, {orientations}"
        )
    return [
        (min_wavelength * (2.0**scale), np.pi * k / orientations)
        for scale in range(scales)
        for k in range(orientations)
    ]


def gabor_response_magnitude(
    gray: np.ndarray, wavelength: float, orientation: float, **kwargs
) -> np.ndarray:
    """Quadrature-pair response magnitude at one (scale, orientation).

    Convolves with the even and odd kernels and returns
    ``sqrt(even^2 + odd^2)`` per pixel — invariant to the phase of the
    underlying texture.
    """
    even = convolve2d(gray, gabor_kernel(wavelength, orientation, phase=0.0, **kwargs))
    odd = convolve2d(
        gray, gabor_kernel(wavelength, orientation, phase=np.pi / 2.0, **kwargs)
    )
    return np.sqrt(even**2 + odd**2)


class GaborFeatures(FeatureExtractor):
    """Mean + standard deviation of each Gabor channel's magnitude.

    Parameters
    ----------
    scales:
        Number of octave-spaced frequencies (default 3).
    orientations:
        Directions over the half circle (default 4: 0, 45, 90, 135 deg).
    min_wavelength:
        Finest sinusoid period in pixels (default 3).
    working_size:
        Square resampling size before filtering (default 64).

    The signature is ``2 * scales * orientations`` values ordered
    ``(scale major, orientation minor, mean before std)``.
    """

    def __init__(
        self,
        scales: int = 3,
        orientations: int = 4,
        *,
        min_wavelength: float = 3.0,
        working_size: int = 64,
    ) -> None:
        if working_size < 8:
            raise FeatureError(f"working_size too small: {working_size}")
        self._bank = gabor_bank(
            scales, orientations, min_wavelength=min_wavelength
        )
        max_wavelength = max(wavelength for wavelength, _ in self._bank)
        if max_wavelength > working_size / 2.0:
            raise FeatureError(
                f"coarsest wavelength {max_wavelength:.1f}px does not fit a "
                f"{working_size}px working image; reduce scales or enlarge it"
            )
        self._working_size = working_size
        self._kernels = [
            (
                gabor_kernel(wavelength, orientation, phase=0.0),
                gabor_kernel(wavelength, orientation, phase=np.pi / 2.0),
            )
            for wavelength, orientation in self._bank
        ]
        self._name = f"gabor_{scales}s_{orientations}o"
        self._dim = 2 * len(self._bank)

    @property
    def bank(self) -> list[tuple[float, float]]:
        """The ``(wavelength, orientation)`` pairs, signature order."""
        return list(self._bank)

    def _extract(self, image: Image) -> np.ndarray:
        gray = image.to_gray().resize(self._working_size, self._working_size)
        pixels = gray.pixels
        signature = np.empty(self._dim)
        for channel, (even, odd) in enumerate(self._kernels):
            response_even = convolve2d(pixels, even)
            response_odd = convolve2d(pixels, odd)
            magnitude = np.sqrt(response_even**2 + response_odd**2)
            signature[2 * channel] = magnitude.mean()
            signature[2 * channel + 1] = magnitude.std()
        return signature
