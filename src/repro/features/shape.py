"""Shape features without segmentation.

Semantically meaningful segmentation was (and is) unreliable, so the
reproduced system measures *indirect* shape properties built from robust
low-level operations:

* the **distance transform (DT)** — at every pixel, the chamfer distance
  to the nearest edge pixel, computed with the classic two-pass algorithm;
* the **salience distance transform (SDT)** of Rosin & West — edge pixels
  seed the propagation with a cost inversely related to their salience
  (gradient magnitude here), so spurious weak edges are soft-assigned
  rather than thresholded away;
* **distance histograms** over the (S)DT: cluttered scenes pile mass at
  small distances, sparse scenes at large ones, and the histogram profile
  separates shape classes in between;
* **region moments** — area, centroid and eccentricity of the Otsu
  foreground, the classical compact shape descriptors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor, l1_normalize
from repro.image.core import Image
from repro.image.filters import (
    edge_map,
    gaussian_blur,
    gradient_magnitude,
    otsu_threshold,
    sobel_gradients,
)

__all__ = [
    "chamfer_propagate",
    "distance_transform",
    "salience_distance_transform",
    "ShapeHistogram",
    "RegionMoments",
]

#: Chamfer weights: axial step, diagonal step (quasi-Euclidean).
_AXIAL = 1.0
_DIAGONAL = float(np.sqrt(2.0))

_BIG = np.inf


def _horizontal_sweep(row: np.ndarray, step: float) -> np.ndarray:
    """1-D distance propagation ``d[i] = min_j (d[j] + step * |i - j|)``.

    Uses the accumulate identity ``min_{j<=i}(d[j] + step*(i-j)) =
    step*i + cummin(d[j] - step*j)`` to stay vectorized, applied in both
    directions.
    """
    idx = np.arange(row.size, dtype=np.float64)
    forward = np.minimum.accumulate(row - step * idx) + step * idx
    backward = (np.minimum.accumulate((row - step * idx[::-1])[::-1])[::-1]) + step * idx[::-1]
    return np.minimum(forward, backward)


def chamfer_propagate(seeds: np.ndarray) -> np.ndarray:
    """Two-pass chamfer propagation of initial costs.

    ``seeds`` holds the starting cost at every pixel (``inf`` for
    non-sources).  The result at each pixel is the minimum over all pixels
    ``q`` of ``seeds[q] + chamfer_distance(p, q)`` with axial steps of 1
    and diagonal steps of sqrt(2) — the standard quasi-Euclidean chamfer
    metric, exact to within its known ~8% metrication error.

    Generalizing the classic binary DT to arbitrary seed costs is what
    lets the same routine compute both the DT (seeds 0) and the salience
    DT (seeds = inverse salience).
    """
    seeds = np.asarray(seeds, dtype=np.float64)
    if seeds.ndim != 2:
        raise FeatureError(f"seeds must be 2-D; got shape {seeds.shape}")
    dt = seeds.copy()
    height = dt.shape[0]

    # Forward raster pass: each row inherits from the row above, then
    # propagates horizontally.
    dt[0] = _hsweep_row(dt[0])
    for y in range(1, height):
        above = dt[y - 1]
        candidate = np.minimum(dt[y], above + _AXIAL)
        candidate[1:] = np.minimum(candidate[1:], above[:-1] + _DIAGONAL)
        candidate[:-1] = np.minimum(candidate[:-1], above[1:] + _DIAGONAL)
        dt[y] = _hsweep_row(candidate)

    # Backward pass.
    for y in range(height - 2, -1, -1):
        below = dt[y + 1]
        candidate = np.minimum(dt[y], below + _AXIAL)
        candidate[1:] = np.minimum(candidate[1:], below[:-1] + _DIAGONAL)
        candidate[:-1] = np.minimum(candidate[:-1], below[1:] + _DIAGONAL)
        dt[y] = _hsweep_row(candidate)
    return dt


def _hsweep_row(row: np.ndarray) -> np.ndarray:
    """Horizontal sweep guarding against all-inf rows (no sources yet)."""
    finite = np.isfinite(row)
    if not finite.any():
        return row
    if finite.all():
        return _horizontal_sweep(row, _AXIAL)
    # Replace inf with a large sentinel so arithmetic stays finite, then
    # restore inf where no source could have reached.
    sentinel = row[finite].max() + _AXIAL * row.size + 1.0
    patched = np.where(finite, row, sentinel)
    swept = _horizontal_sweep(patched, _AXIAL)
    return np.where(swept >= sentinel, _BIG, swept)


def distance_transform(feature_mask: np.ndarray) -> np.ndarray:
    """Chamfer distance to the nearest True pixel of ``feature_mask``.

    Pixels of the mask get 0.  If the mask is empty every pixel gets
    ``inf`` (callers decide how to interpret a featureless image).
    """
    mask = np.asarray(feature_mask, dtype=bool)
    if mask.ndim != 2:
        raise FeatureError(f"feature mask must be 2-D; got shape {mask.shape}")
    seeds = np.where(mask, 0.0, _BIG)
    return chamfer_propagate(seeds)


def salience_distance_transform(
    image: Image | np.ndarray,
    *,
    sigma: float = 1.0,
    salience_scale: float = 8.0,
) -> np.ndarray:
    """Rosin-West salience distance transform.

    Every pixel with non-zero gradient magnitude seeds the propagation
    with cost ``salience_scale * (1 - salience)`` where salience is the
    gradient magnitude normalized to [0, 1]: strong edges behave like
    true zero-distance features, weak edges act as if they were up to
    ``salience_scale`` pixels farther away.  No threshold is involved —
    that soft assignment is the method's point.
    """
    if salience_scale < 0.0:
        raise FeatureError(f"salience_scale must be non-negative; got {salience_scale}")
    if isinstance(image, Image):
        gray = image.to_gray().pixels
    else:
        gray = np.asarray(image, dtype=np.float64)
        if gray.ndim != 2:
            raise FeatureError(f"expected 2-D array; got shape {gray.shape}")
    if sigma > 0.0:
        gray = gaussian_blur(gray, sigma)
    gx, gy = sobel_gradients(gray)
    magnitude = gradient_magnitude(gx, gy)
    peak = float(magnitude.max())
    if peak <= 0.0:
        return np.full_like(magnitude, _BIG)
    salience = magnitude / peak
    seeds = np.where(magnitude > 0.0, salience_scale * (1.0 - salience), _BIG)
    return chamfer_propagate(seeds)


class ShapeHistogram(FeatureExtractor):
    """Histogram of (salience) distance-transform values.

    The distance values are normalized by the image diagonal and binned
    into ``bins`` cells over [0, ``max_fraction``]; the profile separates
    cluttered scenes (mass at small distances) from sparse ones and
    captures coarser shape distinctions in between.

    Parameters
    ----------
    bins:
        Number of histogram cells.
    salience:
        Use the salience DT (default True, the paper's preferred variant)
        or the plain binary-edge DT.
    max_fraction:
        Distances are clipped at this fraction of the image diagonal
        (default 0.25; beyond that the histogram is empty for any natural
        scene).
    """

    def __init__(
        self,
        bins: int = 16,
        *,
        salience: bool = True,
        sigma: float = 1.0,
        max_fraction: float = 0.25,
        working_size: int = 64,
    ) -> None:
        if bins < 2:
            raise FeatureError(f"bins must be >= 2; got {bins}")
        if not 0.0 < max_fraction <= 1.0:
            raise FeatureError(f"max_fraction must lie in (0, 1]; got {max_fraction}")
        self._bins = bins
        self._salience = salience
        self._sigma = sigma
        self._max_fraction = max_fraction
        self._working_size = working_size
        kind = "sdt" if salience else "dt"
        self._name = f"shape_hist_{kind}_{bins}"
        self._dim = bins

    def _extract(self, image: Image) -> np.ndarray:
        small = image.to_gray().resize(self._working_size, self._working_size)
        if self._salience:
            dt = salience_distance_transform(small, sigma=self._sigma)
        else:
            dt = distance_transform(edge_map(small, sigma=self._sigma))
        diagonal = float(np.hypot(small.width, small.height))
        finite = dt[np.isfinite(dt)]
        if finite.size == 0:
            # Featureless image: all mass in the farthest cell.
            histogram = np.zeros(self._bins)
            histogram[-1] = 1.0
            return histogram
        normalized = np.clip(finite / (diagonal * self._max_fraction), 0.0, 1.0)
        cells = np.minimum((normalized * self._bins).astype(np.int64), self._bins - 1)
        return l1_normalize(np.bincount(cells, minlength=self._bins).astype(np.float64))


class RegionMoments(FeatureExtractor):
    """Moment descriptors of the Otsu foreground region.

    Produces ``[area_fraction, centroid_x, centroid_y, eccentricity,
    orientation/pi]`` where coordinates are normalized to [0, 1] and
    eccentricity derives from the eigenvalues of the second central moment
    matrix (0 = circle, -> 1 = line).  An empty foreground yields zeros.
    """

    def __init__(self, *, working_size: int = 64) -> None:
        self._working_size = working_size
        self._name = "region_moments"
        self._dim = 5

    def _extract(self, image: Image) -> np.ndarray:
        gray = image.to_gray().resize(self._working_size, self._working_size).pixels
        threshold = otsu_threshold(gray)
        mask = gray > threshold
        # Foreground = the smaller side, so the descriptor tracks the
        # object rather than the background.
        if mask.mean() > 0.5:
            mask = ~mask
        ys, xs = np.nonzero(mask)
        if ys.size == 0:
            return np.zeros(self._dim)

        height, width = gray.shape
        area = ys.size / mask.size
        cx = float(xs.mean()) / (width - 1) if width > 1 else 0.0
        cy = float(ys.mean()) / (height - 1) if height > 1 else 0.0

        x_centered = xs - xs.mean()
        y_centered = ys - ys.mean()
        mxx = float(np.mean(x_centered**2))
        myy = float(np.mean(y_centered**2))
        mxy = float(np.mean(x_centered * y_centered))
        covariance = np.array([[mxx, mxy], [mxy, myy]])
        eigenvalues, _ = np.linalg.eigh(covariance)
        minor, major = float(eigenvalues[0]), float(eigenvalues[1])
        eccentricity = float(np.sqrt(1.0 - minor / major)) if major > 0.0 else 0.0
        orientation = 0.5 * np.arctan2(2.0 * mxy, mxx - myy) % np.pi
        return np.array([area, cx, cy, eccentricity, orientation / np.pi])
