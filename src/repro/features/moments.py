"""Color moments: the compact 9-dimensional color signature.

Stricker & Orengo's observation (era-contemporary with the reproduced
paper) is that the first three moments of each color channel — mean,
standard deviation, and skewness — summarize a color distribution almost
as well as a histogram at a tiny fraction of the storage.  They are the
low-dimensional feature used throughout the index-scaling experiments,
where dimensionality is the knob under study.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor
from repro.image.color import rgb_to_hsv_array
from repro.image.core import Image

__all__ = ["ColorMoments"]


def _channel_moments(channel: np.ndarray) -> tuple[float, float, float]:
    """(mean, std, cube-root skew) of one channel.

    The third moment is signed; its cube root keeps it on the same scale as
    the other two (the standard trick for comparable Euclidean weighting).
    """
    mean = float(channel.mean())
    centered = channel - mean
    std = float(np.sqrt(np.mean(centered**2)))
    third = float(np.mean(centered**3))
    skew = float(np.cbrt(third))
    return mean, std, skew


class ColorMoments(FeatureExtractor):
    """Mean, standard deviation and skewness per channel.

    Parameters
    ----------
    space:
        ``'rgb'`` (default) or ``'hsv'``.  HSV moments follow the original
        formulation of Stricker & Orengo.
    """

    def __init__(self, space: str = "rgb") -> None:
        if space not in ("rgb", "hsv"):
            raise FeatureError(f"space must be 'rgb' or 'hsv'; got {space!r}")
        self._space = space
        self._name = f"color_moments_{space}"
        self._dim = 9

    def _extract(self, image: Image) -> np.ndarray:
        pixels = image.to_rgb().pixels
        if self._space == "hsv":
            pixels = rgb_to_hsv_array(pixels)
        values = []
        for channel in range(3):
            values.extend(_channel_moments(pixels[:, :, channel]))
        return np.array(values, dtype=np.float64)
