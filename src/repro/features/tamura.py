"""Tamura texture features: coarseness, contrast, directionality.

Tamura, Mori and Yamawaki (1978) designed six texture measures to match
human perceptual judgments; the first three proved discriminative and
became a CBIR staple (they are the "Tamura feature" the survey text
lists among the statistical texture methods).  All three are computed
here from first principles on the grayscale image:

**Coarseness** — the dominant scale of texture elements.  For every
pixel, averages over windows of size ``2^k`` are compared between
opposite neighborhoods; the ``k`` with the strongest contrast wins, and
coarseness is the mean winning window size.  Fine noise scores near 1,
large blobs score near ``2^(levels-1)``.

**Contrast** — how stretched the intensity distribution is, corrected
for how peaked it is: ``sigma / kurtosis^(1/4)`` (Tamura's ``n = 1/4``).

**Directionality** — how concentrated edge orientations are: the
orientation histogram of strong-gradient pixels, scored by the second
moment of each histogram peak around its location.  Stripes score near
1; isotropic noise scores near 0.

The three values sit on very different numeric ranges, so the extractor
emits them raw; the composite pipeline's per-segment normalization (or
any downstream weighting) handles commensuration, same as for the other
extractors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor
from repro.image.core import Image
from repro.image.filters import sobel_gradients

__all__ = [
    "tamura_coarseness",
    "tamura_contrast",
    "tamura_directionality",
    "TamuraFeatures",
]


def _integral_image(gray: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top row/left column."""
    integral = np.zeros((gray.shape[0] + 1, gray.shape[1] + 1))
    integral[1:, 1:] = gray.cumsum(axis=0).cumsum(axis=1)
    return integral


def _window_means(integral: np.ndarray, half: int) -> np.ndarray:
    """Mean over the ``2*half``-sized square centred at each valid pixel.

    Pixels too close to the border (within ``half``) are excluded from
    the output, which is shaped accordingly smaller.
    """
    size = 2 * half
    height = integral.shape[0] - 1 - size + 1
    width = integral.shape[1] - 1 - size + 1
    if height <= 0 or width <= 0:
        raise FeatureError("window does not fit inside the image")
    total = (
        integral[size:, size:]
        - integral[:-size, size:]
        - integral[size:, :-size]
        + integral[:-size, :-size]
    )
    return total[:height, :width] / float(size * size)


def tamura_coarseness(gray: np.ndarray, *, levels: int = 4) -> float:
    """Mean optimal texture-element size, in pixels.

    For each pixel and each window size ``2^k`` (k = 1..levels), the
    absolute difference between the mean intensities of the opposite
    half-neighborhoods is evaluated horizontally and vertically; the
    pixel's best size is the ``2^k`` maximizing that difference, and the
    image's coarseness is the average best size.
    """
    gray = np.asarray(gray, dtype=np.float64)
    if gray.ndim != 2:
        raise FeatureError(f"coarseness expects a 2-D array; got shape {gray.shape}")
    if levels < 1:
        raise FeatureError(f"levels must be >= 1; got {levels}")
    # Auto-reduce levels until the double-margin interior is non-empty
    # (each pixel needs room for the largest window on both sides).
    max_half = 2 ** (levels - 1)
    while max_half > 1 and 4 * max_half >= min(gray.shape):
        levels -= 1
        max_half = 2 ** (levels - 1)

    integral = _integral_image(gray)
    # Common interior where every window size is defined.
    margin = 2 * max_half
    height = gray.shape[0] - 2 * margin
    width = gray.shape[1] - 2 * margin
    if height <= 0 or width <= 0:
        raise FeatureError(
            f"image {gray.shape} too small for coarseness at {levels} levels"
        )
    best_energy = np.full((height, width), -1.0)
    best_size = np.ones((height, width))
    for k in range(1, levels + 1):
        half = 2 ** (k - 1)
        means = _window_means(integral, half)
        # means[y, x] is the window mean centred at pixel (y + half, x + half).
        # The horizontal difference at pixel p compares windows centred at
        # p - half and p + half; likewise vertically.
        def mean_at(dy: int, dx: int) -> np.ndarray:
            y0 = margin - half + dy
            x0 = margin - half + dx
            return means[y0 : y0 + height, x0 : x0 + width]

        horizontal = np.abs(mean_at(0, half) - mean_at(0, -half))
        vertical = np.abs(mean_at(half, 0) - mean_at(-half, 0))
        energy = np.maximum(horizontal, vertical)
        improved = energy > best_energy
        best_energy[improved] = energy[improved]
        best_size[improved] = 2.0 * half
    return float(best_size.mean())


def tamura_contrast(gray: np.ndarray) -> float:
    """``sigma / kurtosis^(1/4)`` — spread corrected for peakedness."""
    gray = np.asarray(gray, dtype=np.float64)
    if gray.ndim != 2:
        raise FeatureError(f"contrast expects a 2-D array; got shape {gray.shape}")
    sigma = float(gray.std())
    if sigma == 0.0:
        return 0.0
    centered = gray - gray.mean()
    kurtosis = float(np.mean(centered**4)) / sigma**4
    return sigma / kurtosis**0.25


def tamura_directionality(
    gray: np.ndarray, *, bins: int = 16, threshold: float = 0.05, peak_factor: float = 2.0
) -> float:
    """Peak concentration of the edge-orientation histogram, in [0, 1].

    Gradient orientations (modulo pi) of pixels whose gradient magnitude
    exceeds ``threshold`` are histogrammed; each histogram peak
    contributes the second moment of its mass around the peak position.
    The score is ``1 - normalized moment``: 1 for a single razor-sharp
    direction, near 0 for isotropic texture.

    A bin counts as a peak when it is a circular local maximum holding at
    least ``peak_factor`` times the uniform share ``1/bins`` — without the
    prominence requirement every wiggle of a flat (isotropic) histogram
    would count as a peak and the score would saturate at 1.
    """
    gray = np.asarray(gray, dtype=np.float64)
    if gray.ndim != 2:
        raise FeatureError(
            f"directionality expects a 2-D array; got shape {gray.shape}"
        )
    if bins < 4:
        raise FeatureError(f"bins must be >= 4; got {bins}")
    if peak_factor < 1.0:
        raise FeatureError(f"peak_factor must be >= 1; got {peak_factor}")
    gx, gy = sobel_gradients(gray)
    magnitude = np.hypot(gx, gy)
    mask = magnitude > threshold
    if not mask.any():
        return 0.0
    theta = np.mod(np.arctan2(gy[mask], gx[mask]), np.pi)
    histogram, _ = np.histogram(theta, bins=bins, range=(0.0, np.pi))
    mass = histogram / histogram.sum()

    # Prominent circular local maxima; every bin belongs to the nearest
    # peak and contributes (distance to peak)^2.
    prominence = peak_factor / bins
    peaks = [
        index
        for index in range(bins)
        if mass[index] >= mass[(index - 1) % bins]
        and mass[index] >= mass[(index + 1) % bins]
        and mass[index] >= prominence
    ]
    if not peaks:
        return 0.0
    moment = 0.0
    for index in range(bins):
        gaps = [
            min(abs(index - peak), bins - abs(index - peak)) for peak in peaks
        ]
        moment += (min(gaps) ** 2) * mass[index]
    worst = (bins / 2.0) ** 2  # all mass half a circle from any peak
    return float(1.0 - moment / worst)


class TamuraFeatures(FeatureExtractor):
    """The (coarseness, contrast, directionality) triple.

    Parameters
    ----------
    levels:
        Largest coarseness window is ``2^levels`` pixels (default 4).
    bins:
        Orientation histogram resolution for directionality (default 16).
    working_size:
        Square resampling size before extraction (default 64).
    """

    def __init__(
        self, *, levels: int = 4, bins: int = 16, working_size: int = 64
    ) -> None:
        if working_size < 16:
            raise FeatureError(f"working_size too small: {working_size}")
        if levels < 1:
            raise FeatureError(f"levels must be >= 1; got {levels}")
        if bins < 4:
            raise FeatureError(f"bins must be >= 4; got {bins}")
        self._levels = levels
        self._bins = bins
        self._working_size = working_size
        self._name = f"tamura_{levels}l_{bins}b"
        self._dim = 3

    def _extract(self, image: Image) -> np.ndarray:
        gray = image.to_gray().resize(self._working_size, self._working_size)
        pixels = gray.pixels
        return np.array(
            [
                tamura_coarseness(pixels, levels=self._levels),
                tamura_contrast(pixels),
                tamura_directionality(pixels, bins=self._bins),
            ]
        )
