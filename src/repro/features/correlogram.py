"""Color auto-correlogram: color layout, not just color mass.

The histogram's blind spot is layout — a red-on-top/blue-on-bottom flag
and its inverted copy have identical histograms.  The correlogram (Huang
et al.) encodes spatial correlation: entry ``(c, d)`` is the probability
that a pixel at distance ``d`` from a pixel of color ``c`` also has color
``c``.  Coherent color regions give high short-range values; scattered
color gives flat profiles.

Distance is the L-infinity (chessboard) norm and, following the original
implementation, is sampled along the 8 compass directions at each radius,
which keeps extraction linear in image size per (color, distance) pair.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor
from repro.image.color import quantize_rgb
from repro.image.core import Image

__all__ = ["ColorAutoCorrelogram", "auto_correlogram"]

#: The 8 compass directions used to sample the L-infinity ring.
_DIRECTIONS = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]


def _shift_pairs(
    codes: np.ndarray, dy: int, dx: int
) -> tuple[np.ndarray, np.ndarray]:
    """Overlapping views of ``codes`` and its (dy, dx)-shifted copy."""
    height, width = codes.shape
    y0, y1 = max(0, dy), min(height, height + dy)
    x0, x1 = max(0, dx), min(width, width + dx)
    base = codes[y0:y1, x0:x1]
    shifted = codes[y0 - dy : y1 - dy, x0 - dx : x1 - dx]
    return base, shifted


def auto_correlogram(
    codes: np.ndarray, n_colors: int, distances: Sequence[int]
) -> np.ndarray:
    """Auto-correlogram of a 2-D integer code image.

    Parameters
    ----------
    codes:
        2-D array of color codes in ``0 .. n_colors-1``.
    n_colors:
        Size of the color code alphabet.
    distances:
        Positive L-infinity radii to evaluate (e.g. ``(1, 3, 5, 7)``).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(distances), n_colors)``; row ``k`` holds, for
        each color, the probability that a ring-``d_k`` neighbour of a pixel
        of that color shares its color.  Colors absent from the image get 0.
    """
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise FeatureError(f"codes must be 2-D; got shape {codes.shape}")
    if any(d <= 0 for d in distances):
        raise FeatureError(f"distances must be positive; got {tuple(distances)}")

    result = np.zeros((len(distances), n_colors), dtype=np.float64)
    for row, distance in enumerate(distances):
        same = np.zeros(n_colors, dtype=np.float64)
        total = np.zeros(n_colors, dtype=np.float64)
        for dy_unit, dx_unit in _DIRECTIONS:
            dy, dx = dy_unit * distance, dx_unit * distance
            base, shifted = _shift_pairs(codes, dy, dx)
            if base.size == 0:
                continue
            total += np.bincount(base.ravel(), minlength=n_colors)
            matches = base[base == shifted]
            if matches.size:
                same += np.bincount(matches.ravel(), minlength=n_colors)
        present = total > 0
        result[row, present] = same[present] / total[present]
    return result


class ColorAutoCorrelogram(FeatureExtractor):
    """Auto-correlogram feature over a quantized RGB palette.

    Parameters
    ----------
    levels_per_channel:
        RGB quantization per channel; the palette has ``levels**3`` colors
        (default 4 -> 64 colors, the original paper's setting).
    distances:
        L-infinity radii (default ``(1, 3, 5, 7)``).
    working_size:
        Square resampling size before extraction (default 64; the
        correlogram is O(pixels x distances)).
    """

    def __init__(
        self,
        levels_per_channel: int = 4,
        distances: Sequence[int] = (1, 3, 5, 7),
        *,
        working_size: int = 64,
    ) -> None:
        if levels_per_channel < 1:
            raise FeatureError(
                f"levels_per_channel must be >= 1; got {levels_per_channel}"
            )
        if not distances:
            raise FeatureError("at least one distance is required")
        if working_size <= 2 * max(distances):
            raise FeatureError(
                f"working_size {working_size} too small for max distance {max(distances)}"
            )
        self._levels = levels_per_channel
        self._distances = tuple(int(d) for d in distances)
        self._working_size = working_size
        self._n_colors = levels_per_channel**3
        self._name = f"correlogram_{self._n_colors}c_{len(self._distances)}d"
        self._dim = self._n_colors * len(self._distances)

    @property
    def distances(self) -> tuple[int, ...]:
        """The L-infinity radii sampled."""
        return self._distances

    def _extract(self, image: Image) -> np.ndarray:
        small = image.resize(self._working_size, self._working_size)
        codes = quantize_rgb(small, self._levels)
        table = auto_correlogram(codes, self._n_colors, self._distances)
        return table.ravel()
