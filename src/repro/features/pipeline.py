"""Composite features and the feature schema.

A real image database does not extract one feature — it extracts a
*schema* of them at insertion time and lets queries choose which to use
and how to weight them.  Two pieces implement that here:

:class:`FeatureSchema`
    An ordered, named collection of extractors.  The database layer uses
    it to size store records and to extract everything for a new image in
    one call.

:class:`CompositeExtractor`
    Presents several extractors as one: the segments are concatenated
    into a single vector after per-segment normalization and weighting,
    so a plain Euclidean metric over the composite approximates a
    weighted sum of per-feature distances.  This is the cheap fusion
    scheme; proper per-feature fusion lives in :mod:`repro.db.query`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor, l1_normalize, l2_normalize
from repro.features.edges import EdgeOrientationHistogram
from repro.features.histogram import HSVHistogram, RGBJointHistogram
from repro.features.moments import ColorMoments
from repro.features.texture import GLCMFeatures
from repro.features.wavelet import WaveletSignature
from repro.image.core import Image

__all__ = ["FeatureSchema", "CompositeExtractor", "default_schema"]

_NORMALIZERS = {
    "none": lambda v: v,
    "l1": l1_normalize,
    "l2": l2_normalize,
}


class FeatureSchema:
    """An ordered, named set of feature extractors.

    Iteration yields extractors in registration order; lookup is by name.
    """

    def __init__(self, extractors: Iterable[FeatureExtractor] = ()) -> None:
        self._extractors: dict[str, FeatureExtractor] = {}
        for extractor in extractors:
            self.add(extractor)

    def add(self, extractor: FeatureExtractor) -> "FeatureSchema":
        """Register an extractor; names must be unique.  Returns self."""
        if extractor.name in self._extractors:
            raise FeatureError(f"duplicate feature name {extractor.name!r} in schema")
        self._extractors[extractor.name] = extractor
        return self

    def __contains__(self, name: str) -> bool:
        return name in self._extractors

    def __len__(self) -> int:
        return len(self._extractors)

    def __iter__(self) -> Iterator[FeatureExtractor]:
        return iter(self._extractors.values())

    @property
    def names(self) -> tuple[str, ...]:
        """Feature names in registration order."""
        return tuple(self._extractors)

    def get(self, name: str) -> FeatureExtractor:
        """Look up an extractor by name."""
        try:
            return self._extractors[name]
        except KeyError:
            raise FeatureError(
                f"unknown feature {name!r}; schema has {list(self._extractors)}"
            ) from None

    def extract_all(self, image: Image) -> dict[str, np.ndarray]:
        """Extract every feature of ``image``, keyed by feature name."""
        return {name: ext.extract(image) for name, ext in self._extractors.items()}

    def total_dim(self) -> int:
        """Sum of all feature dimensionalities (the store record width)."""
        return sum(ext.dim for ext in self)

    def __repr__(self) -> str:
        parts = ", ".join(f"{e.name}[{e.dim}]" for e in self)
        return f"FeatureSchema({parts})"


class CompositeExtractor(FeatureExtractor):
    """Concatenation of several extractors into one weighted vector.

    Parameters
    ----------
    extractors:
        The component extractors, in concatenation order.
    weights:
        Per-component scale factors (default: all 1).  Because Euclidean
        distance over a concatenation is the root of the sum of squared
        per-segment distances, weighting a segment by ``w`` weights its
        squared contribution by ``w**2``.
    normalize:
        Per-segment normalization applied before weighting: ``'none'``,
        ``'l1'`` or ``'l2'`` (default ``'l2'``, which equalizes segment
        magnitudes so weights mean what they say).
    """

    def __init__(
        self,
        extractors: Sequence[FeatureExtractor],
        weights: Sequence[float] | None = None,
        *,
        normalize: str = "l2",
        name: str | None = None,
    ) -> None:
        if not extractors:
            raise FeatureError("CompositeExtractor needs at least one extractor")
        if weights is None:
            weights = [1.0] * len(extractors)
        if len(weights) != len(extractors):
            raise FeatureError(
                f"{len(extractors)} extractors but {len(weights)} weights"
            )
        if any(w < 0 for w in weights):
            raise FeatureError(f"weights must be non-negative; got {tuple(weights)}")
        if normalize not in _NORMALIZERS:
            raise FeatureError(
                f"normalize must be one of {sorted(_NORMALIZERS)}; got {normalize!r}"
            )
        self._components = list(extractors)
        self._weights = [float(w) for w in weights]
        self._normalize = _NORMALIZERS[normalize]
        self._name = name or "composite_" + "+".join(e.name for e in extractors)
        self._dim = sum(e.dim for e in extractors)

    @property
    def segments(self) -> list[tuple[str, int]]:
        """(name, dim) of each component, in order."""
        return [(e.name, e.dim) for e in self._components]

    def _extract(self, image: Image) -> np.ndarray:
        parts = [
            weight * self._normalize(component.extract(image))
            for component, weight in zip(self._components, self._weights)
        ]
        return np.concatenate(parts)


def default_schema(*, working_size: int = 64) -> FeatureSchema:
    """The stock schema used by examples, tests and benchmarks.

    Color (HSV + joint RGB + moments), texture (GLCM + wavelet) and shape
    (edge orientation) — one representative per family, tuned small enough
    that corpus builds stay fast.
    """
    return FeatureSchema(
        [
            HSVHistogram((18, 3, 3), working_size=working_size),
            RGBJointHistogram(4, working_size=working_size),
            ColorMoments("rgb"),
            GLCMFeatures(16, working_size=working_size),
            WaveletSignature(3, working_size=64),
            EdgeOrientationHistogram(18, working_size=working_size),
        ]
    )


def normalize_weights(weights: Mapping[str, float], names: Sequence[str]) -> dict[str, float]:
    """Validate and L1-normalize a name->weight mapping over ``names``.

    Unknown names raise; missing names get weight 0.  Used by the query
    layer for weighted multi-feature search.
    """
    unknown = set(weights) - set(names)
    if unknown:
        raise FeatureError(f"weights refer to unknown features: {sorted(unknown)}")
    total = sum(weights.values())
    if total <= 0:
        raise FeatureError("at least one weight must be positive")
    return {name: weights.get(name, 0.0) / total for name in names}
