"""Edge features: orientation histograms and edge density.

Edge orientation histograms encode coarse shape without segmentation: the
distribution of edge directions distinguishes horizontal stripes from
diagonal ones, boxy scenes from round ones.  Following the reproduced
pipeline, every edge contributes to the histogram *weighted by its
gradient magnitude* instead of being thresholded — spurious weak edges are
softly suppressed rather than cut at an arbitrary level.

Unlike color histograms, orientation histograms are **not** rotation
invariant; the matching side compensates with circular-shift matching
(:class:`repro.metrics.shifted.CircularShiftDistance`), which experiment
F4 quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor, l1_normalize
from repro.image.core import Image
from repro.image.filters import (
    edge_map,
    gaussian_blur,
    gradient_magnitude,
    gradient_orientation,
    sobel_gradients,
)

__all__ = ["EdgeOrientationHistogram", "EdgeDensity"]


class EdgeOrientationHistogram(FeatureExtractor):
    """Magnitude-weighted histogram of edge orientations in ``[0, pi)``.

    Parameters
    ----------
    bins:
        Number of orientation cells (default 18, i.e. 10-degree resolution).
    sigma:
        Gaussian pre-smoothing before the Sobel operator (0 disables).
    magnitude_weighted:
        If True (default, the paper's choice) each pixel votes with its
        gradient magnitude; if False, only pixels above Otsu's threshold
        vote, each with weight 1.
    working_size:
        Square resampling size before extraction.
    """

    def __init__(
        self,
        bins: int = 18,
        *,
        sigma: float = 1.0,
        magnitude_weighted: bool = True,
        working_size: int = 128,
    ) -> None:
        if bins < 2:
            raise FeatureError(f"bins must be >= 2; got {bins}")
        if sigma < 0.0:
            raise FeatureError(f"sigma must be non-negative; got {sigma}")
        self._bins = bins
        self._sigma = sigma
        self._magnitude_weighted = magnitude_weighted
        self._working_size = working_size
        self._name = f"edge_orient_{bins}"
        self._dim = bins

    def _extract(self, image: Image) -> np.ndarray:
        gray = image.to_gray().resize(self._working_size, self._working_size).pixels
        if self._sigma > 0.0:
            gray = gaussian_blur(gray, self._sigma)
        gx, gy = sobel_gradients(gray)
        magnitude = gradient_magnitude(gx, gy)
        orientation = gradient_orientation(gx, gy)

        bin_index = np.minimum(
            (orientation / np.pi * self._bins).astype(np.int64), self._bins - 1
        )
        if self._magnitude_weighted:
            weights = magnitude.ravel()
        else:
            from repro.image.filters import otsu_threshold

            weights = (magnitude > otsu_threshold(magnitude)).astype(np.float64).ravel()
        histogram = np.bincount(
            bin_index.ravel(), weights=weights, minlength=self._bins
        )
        return l1_normalize(histogram)


class EdgeDensity(FeatureExtractor):
    """Fraction of pixels on an (Otsu-thresholded) edge — scene busyness.

    A one-dimensional feature; useful as the cheap pre-filter tier of a
    multi-tier search and as a sanity baseline in the quality experiments.
    """

    def __init__(self, *, sigma: float = 1.0, working_size: int = 128) -> None:
        if sigma < 0.0:
            raise FeatureError(f"sigma must be non-negative; got {sigma}")
        self._sigma = sigma
        self._working_size = working_size
        self._name = "edge_density"
        self._dim = 1

    def _extract(self, image: Image) -> np.ndarray:
        resized = image.to_gray().resize(self._working_size, self._working_size)
        edges = edge_map(resized, sigma=self._sigma)
        return np.array([float(edges.mean())])
