"""Color histogram extractors.

The color histogram is the workhorse feature of early CBIR: count how many
pixels fall into each quantized color cell and L1-normalize the counts so
images of different sizes are comparable.  Histograms are robust to
translation and rotation about the view axis and change slowly with scale
— and, famously, they carry *no layout information*, the limitation the
correlogram (:mod:`repro.features.correlogram`) addresses.

Four variants are provided:

* :class:`GrayHistogram` — intensity histogram of the luma channel;
* :class:`RGBJointHistogram` — joint quantization of (R, G, B), the
  ``b^3``-cell histogram of the original QBIC line of work;
* :class:`RGBMarginalHistogram` — per-channel histograms concatenated
  (the "lossy but viewable" decomposition the paper describes);
* :class:`HSVHistogram` — joint histogram in HSV with most resolution
  given to hue (default 18x3x3 = 162 cells).

All images are resampled to a fixed working size before counting so the
signature is independent of the stored resolution (the paper normalizes
to 512x512; the default here is 128x128, which is statistically identical
for synthetic corpora and far cheaper).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor, l1_normalize
from repro.image.color import quantize_gray, quantize_hsv, quantize_rgb
from repro.image.core import Image

__all__ = [
    "GrayHistogram",
    "RGBJointHistogram",
    "RGBMarginalHistogram",
    "HSVHistogram",
]


def _counts(codes: np.ndarray, n_cells: int) -> np.ndarray:
    """Histogram integer codes into ``n_cells`` normalized frequencies."""
    counts = np.bincount(codes.ravel(), minlength=n_cells).astype(np.float64)
    return l1_normalize(counts)


class _ResizingExtractor(FeatureExtractor):
    """Shared base: resample the image to a fixed square working size."""

    def __init__(self, working_size: int) -> None:
        if working_size <= 0:
            raise FeatureError(f"working_size must be positive; got {working_size}")
        self._working_size = working_size

    @property
    def working_size(self) -> int:
        """Side of the square the image is resampled to before counting."""
        return self._working_size

    def _resized(self, image: Image) -> Image:
        return image.resize(self._working_size, self._working_size)


class GrayHistogram(_ResizingExtractor):
    """Normalized intensity histogram of the grayscale image.

    Parameters
    ----------
    bins:
        Number of intensity cells (default 64; the paper quantizes 256
        levels into fewer bins "to achieve low computational complexity").
    working_size:
        Square resampling size applied before counting.
    """

    def __init__(self, bins: int = 64, *, working_size: int = 128) -> None:
        super().__init__(working_size)
        if bins < 1:
            raise FeatureError(f"bins must be >= 1; got {bins}")
        self._bins = bins
        self._name = f"gray_hist_{bins}"
        self._dim = bins

    def _extract(self, image: Image) -> np.ndarray:
        codes = quantize_gray(self._resized(image), self._bins)
        return _counts(codes, self._bins)


class RGBJointHistogram(_ResizingExtractor):
    """Joint RGB histogram with ``levels_per_channel ** 3`` cells."""

    def __init__(self, levels_per_channel: int = 4, *, working_size: int = 128) -> None:
        super().__init__(working_size)
        if levels_per_channel < 1:
            raise FeatureError(
                f"levels_per_channel must be >= 1; got {levels_per_channel}"
            )
        self._levels = levels_per_channel
        self._name = f"rgb_hist_{levels_per_channel}"
        self._dim = levels_per_channel**3

    def _extract(self, image: Image) -> np.ndarray:
        codes = quantize_rgb(self._resized(image), self._levels)
        return _counts(codes, self._dim)


class RGBMarginalHistogram(_ResizingExtractor):
    """Per-channel histograms concatenated into one ``3 * bins`` vector.

    Cheaper than the joint histogram and easy to visualize, at the cost of
    losing inter-channel correlation.
    """

    def __init__(self, bins: int = 32, *, working_size: int = 128) -> None:
        super().__init__(working_size)
        if bins < 1:
            raise FeatureError(f"bins must be >= 1; got {bins}")
        self._bins = bins
        self._name = f"rgb_marginal_{bins}"
        self._dim = 3 * bins

    def _extract(self, image: Image) -> np.ndarray:
        rgb = self._resized(image).to_rgb()
        parts = []
        for channel in range(3):
            codes = np.clip(
                (rgb.channel(channel) * self._bins).astype(np.int64), 0, self._bins - 1
            )
            parts.append(_counts(codes, self._bins))
        # Each channel is normalized independently so the three sections
        # have equal weight under L1/L2 metrics.
        return np.concatenate(parts)


class HSVHistogram(_ResizingExtractor):
    """Joint HSV histogram; default 18 hue x 3 saturation x 3 value cells."""

    def __init__(
        self, bins: tuple[int, int, int] = (18, 3, 3), *, working_size: int = 128
    ) -> None:
        super().__init__(working_size)
        if len(bins) != 3 or min(bins) < 1:
            raise FeatureError(f"bins must be three positive ints; got {bins}")
        self._hsv_bins = tuple(int(b) for b in bins)
        self._name = "hsv_hist_{}x{}x{}".format(*self._hsv_bins)
        self._dim = int(np.prod(self._hsv_bins))

    def _extract(self, image: Image) -> np.ndarray:
        codes = quantize_hsv(self._resized(image), self._hsv_bins)
        return _counts(codes, self._dim)
