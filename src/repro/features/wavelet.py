"""Haar wavelet transform and multi-resolution wavelet signatures.

The 2-D Haar transform splits an image into a half-resolution approximation
(LL) and three detail subbands (LH, HL, HH — horizontal, vertical and
diagonal structure).  Recursing on LL for ``k`` levels yields ``3k + 1``
subbands; the reproduced pipeline uses three iterations, i.e. the **10
subimages** the paper describes, and summarizes each subband by a single
energy value — the 10-dimensional *wavelet signature*.

The transform here is the orthonormal Haar ( ``(a±b)/sqrt(2)`` ), so it is
exactly invertible and energy preserving (Parseval), both of which the
test suite pins.  Subband signatures use root-mean-square energy, making
them independent of subband size, image resolution, and dithering — the
properties the paper credits wavelet features with.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor
from repro.image.core import Image

__all__ = ["haar2d", "haar2d_inverse", "haar_decompose", "WaveletSignature"]

_SQRT2 = np.sqrt(2.0)


def haar2d(array: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One level of the 2-D orthonormal Haar transform.

    Parameters
    ----------
    array:
        2-D array with even height and width.

    Returns
    -------
    tuple
        ``(ll, lh, hl, hh)`` quarter-size subbands: approximation,
        horizontal detail, vertical detail, diagonal detail.
    """
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 2:
        raise FeatureError(f"haar2d expects a 2-D array; got shape {array.shape}")
    height, width = array.shape
    if height % 2 or width % 2:
        raise FeatureError(f"haar2d requires even dimensions; got {array.shape}")

    # Rows: pairwise average/difference.
    low_rows = (array[:, 0::2] + array[:, 1::2]) / _SQRT2
    high_rows = (array[:, 0::2] - array[:, 1::2]) / _SQRT2
    # Columns.
    ll = (low_rows[0::2] + low_rows[1::2]) / _SQRT2
    hl = (low_rows[0::2] - low_rows[1::2]) / _SQRT2
    lh = (high_rows[0::2] + high_rows[1::2]) / _SQRT2
    hh = (high_rows[0::2] - high_rows[1::2]) / _SQRT2
    return ll, lh, hl, hh


def haar2d_inverse(
    ll: np.ndarray, lh: np.ndarray, hl: np.ndarray, hh: np.ndarray
) -> np.ndarray:
    """Exact inverse of :func:`haar2d`."""
    ll, lh, hl, hh = (np.asarray(band, dtype=np.float64) for band in (ll, lh, hl, hh))
    if not (ll.shape == lh.shape == hl.shape == hh.shape):
        raise FeatureError("all four subbands must have identical shape")
    half_h, half_w = ll.shape

    low_rows = np.empty((2 * half_h, half_w))
    high_rows = np.empty((2 * half_h, half_w))
    low_rows[0::2] = (ll + hl) / _SQRT2
    low_rows[1::2] = (ll - hl) / _SQRT2
    high_rows[0::2] = (lh + hh) / _SQRT2
    high_rows[1::2] = (lh - hh) / _SQRT2

    array = np.empty((2 * half_h, 2 * half_w))
    array[:, 0::2] = (low_rows + high_rows) / _SQRT2
    array[:, 1::2] = (low_rows - high_rows) / _SQRT2
    return array


def haar_decompose(array: np.ndarray, levels: int) -> list[np.ndarray]:
    """Multi-level Haar decomposition.

    Repeatedly transforms the approximation band.  Returns the subbands in
    coarse-to-fine order::

        [ll_k, lh_k, hl_k, hh_k, lh_{k-1}, hl_{k-1}, hh_{k-1}, ..., hh_1]

    i.e. ``3 * levels + 1`` arrays, the final approximation first.

    Raises
    ------
    FeatureError
        If any intermediate level has odd dimensions.
    """
    if levels < 1:
        raise FeatureError(f"levels must be >= 1; got {levels}")
    detail_stack: list[np.ndarray] = []
    current = np.asarray(array, dtype=np.float64)
    for _ in range(levels):
        current, lh, hl, hh = haar2d(current)
        detail_stack.append(hh)
        detail_stack.append(hl)
        detail_stack.append(lh)
    return [current] + detail_stack[::-1]


class WaveletSignature(FeatureExtractor):
    """RMS subband energies of a ``levels``-deep Haar decomposition.

    The image is converted to grayscale and resampled to a
    ``working_size`` square (a power of two at least ``2**levels``), then
    decomposed; each of the ``3 * levels + 1`` subbands contributes its
    root-mean-square coefficient magnitude.  The default (3 levels, 64x64)
    yields the paper's 10-value signature.

    Parameters
    ----------
    levels:
        Decomposition depth (default 3).
    working_size:
        Square working resolution; must be divisible by ``2**levels``.
    """

    def __init__(self, levels: int = 3, *, working_size: int = 64) -> None:
        if levels < 1:
            raise FeatureError(f"levels must be >= 1; got {levels}")
        if working_size % (1 << levels):
            raise FeatureError(
                f"working_size {working_size} not divisible by 2**levels = {1 << levels}"
            )
        self._levels = levels
        self._working_size = working_size
        self._name = f"wavelet_sig_{levels}l"
        self._dim = 3 * levels + 1

    @property
    def levels(self) -> int:
        """Decomposition depth."""
        return self._levels

    def _extract(self, image: Image) -> np.ndarray:
        gray = image.to_gray().resize(self._working_size, self._working_size)
        subbands = haar_decompose(gray.pixels, self._levels)
        return np.array(
            [float(np.sqrt(np.mean(band * band))) for band in subbands], dtype=np.float64
        )
