"""Feature extraction: images -> fixed-length signatures.

Every extractor maps an :class:`~repro.image.Image` to a 1-D ``float64``
vector of a fixed, declared dimensionality.  The database layer stores
these signatures, the metric layer compares them, and the index layer
organizes them for sub-linear search — the image itself plays no part
after extraction.

Extractors implemented (the canonical QBIC-era set):

======================  =====================================================
Extractor               Captures
======================  =====================================================
GrayHistogram           global intensity distribution
RGBJointHistogram       joint color distribution (r,g,b quantized together)
RGBMarginalHistogram    per-channel color distributions, concatenated
HSVHistogram            hue-weighted color distribution (18x3x3 by default)
ColorMoments            mean / spread / skew per channel (compact color)
ColorAutoCorrelogram    color *layout*: same-color co-occurrence vs distance
GLCMFeatures            texture statistics from co-occurrence matrices
GaborFeatures           multi-scale oriented frequency energy (filter bank)
TamuraFeatures          perceptual texture (coarseness/contrast/directionality)
WaveletSignature        multi-resolution texture/shape energy (Haar, 10 dims)
EdgeOrientationHistogram edge direction distribution (magnitude weighted)
EdgeDensity             fraction of edge pixels (image busyness)
ShapeHistogram          distance-transform profile (scene sparseness/shape)
RegionMoments           area / centroid / eccentricity of the salient region
======================  =====================================================
"""

from repro.features.base import (
    FeatureExtractor,
    PresetSignature,
    l1_normalize,
    l2_normalize,
)
from repro.features.histogram import (
    GrayHistogram,
    HSVHistogram,
    RGBJointHistogram,
    RGBMarginalHistogram,
)
from repro.features.moments import ColorMoments
from repro.features.correlogram import ColorAutoCorrelogram
from repro.features.texture import GLCMFeatures, glcm
from repro.features.gabor import GaborFeatures, gabor_bank, gabor_kernel
from repro.features.tamura import (
    TamuraFeatures,
    tamura_coarseness,
    tamura_contrast,
    tamura_directionality,
)
from repro.features.wavelet import (
    WaveletSignature,
    haar2d,
    haar2d_inverse,
    haar_decompose,
)
from repro.features.edges import EdgeDensity, EdgeOrientationHistogram
from repro.features.shape import (
    RegionMoments,
    ShapeHistogram,
    distance_transform,
    salience_distance_transform,
)
from repro.features.pipeline import CompositeExtractor, FeatureSchema, default_schema

__all__ = [
    "FeatureExtractor",
    "PresetSignature",
    "l1_normalize",
    "l2_normalize",
    "GrayHistogram",
    "RGBJointHistogram",
    "RGBMarginalHistogram",
    "HSVHistogram",
    "ColorMoments",
    "ColorAutoCorrelogram",
    "GLCMFeatures",
    "glcm",
    "GaborFeatures",
    "gabor_bank",
    "gabor_kernel",
    "TamuraFeatures",
    "tamura_coarseness",
    "tamura_contrast",
    "tamura_directionality",
    "WaveletSignature",
    "haar2d",
    "haar2d_inverse",
    "haar_decompose",
    "EdgeOrientationHistogram",
    "EdgeDensity",
    "ShapeHistogram",
    "RegionMoments",
    "distance_transform",
    "salience_distance_transform",
    "CompositeExtractor",
    "FeatureSchema",
    "default_schema",
]
