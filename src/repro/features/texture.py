"""Texture features from gray-level co-occurrence matrices (GLCM).

A co-occurrence matrix ``P_d`` counts, over all pixel pairs separated by a
fixed offset ``d``, how often gray level ``i`` co-occurs with gray level
``j``.  The classic Haralick statistics summarize it:

* energy       ``sum_ij P(i,j)^2``         (textural uniformity)
* entropy      ``-sum_ij P log P``         (randomness)
* contrast     ``sum_ij (i-j)^2 P(i,j)``   (local variation)
* homogeneity  ``sum_ij P(i,j)/(1+|i-j|)`` (closeness to the diagonal)
* correlation  normalized covariance of the (i, j) marginals

These are exactly the four statistics the reproduced pipeline lists
(energy, entropy, contrast, homogeneity) plus correlation, which rounds
out the standard Haralick five.  Offsets default to distance 1 at the four
canonical angles (0, 45, 90, 135 degrees); statistics are averaged over
angles for approximate rotation invariance, or concatenated when the
orientation itself is the signal.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor
from repro.image.color import quantize_gray
from repro.image.core import Image

__all__ = ["glcm", "haralick_stats", "GLCMFeatures", "STAT_NAMES"]

#: Statistic order produced by :func:`haralick_stats`.
STAT_NAMES = ("energy", "entropy", "contrast", "homogeneity", "correlation")

#: Distance-1 offsets at 0, 45, 90, 135 degrees as (dy, dx).
DEFAULT_OFFSETS = ((0, 1), (-1, 1), (-1, 0), (-1, -1))


def glcm(
    codes: np.ndarray,
    levels: int,
    offset: tuple[int, int],
    *,
    symmetric: bool = True,
    normalize: bool = True,
) -> np.ndarray:
    """Gray-level co-occurrence matrix for one offset.

    Parameters
    ----------
    codes:
        2-D integer array of gray codes in ``0 .. levels-1``.
    offset:
        ``(dy, dx)`` displacement between the pair of pixels.
    symmetric:
        Count each pair in both directions (the standard Haralick choice,
        making the matrix symmetric).
    normalize:
        Divide by the number of counted pairs so entries form a joint
        probability mass function.

    Returns
    -------
    numpy.ndarray
        ``(levels, levels)`` float64 matrix.
    """
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise FeatureError(f"codes must be 2-D; got shape {codes.shape}")
    dy, dx = offset
    if dy == 0 and dx == 0:
        raise FeatureError("offset must be non-zero")
    height, width = codes.shape
    if abs(dy) >= height or abs(dx) >= width:
        raise FeatureError(f"offset {offset} exceeds image size {codes.shape}")

    # first = value at p, second = value at p + (dy, dx), over all p for
    # which both are in bounds.
    y0, y1 = max(0, -dy), min(height, height - dy)
    x0, x1 = max(0, -dx), min(width, width - dx)
    first = codes[y0:y1, x0:x1].ravel()
    second = codes[y0 + dy : y1 + dy, x0 + dx : x1 + dx].ravel()

    matrix = np.zeros((levels, levels), dtype=np.float64)
    np.add.at(matrix, (first, second), 1.0)
    if symmetric:
        matrix += matrix.T
    if normalize:
        total = matrix.sum()
        if total > 0:
            matrix /= total
    return matrix


def haralick_stats(matrix: np.ndarray) -> np.ndarray:
    """The five Haralick statistics of a normalized co-occurrence matrix.

    Returns them in :data:`STAT_NAMES` order.  A degenerate matrix (single
    occupied cell) gets correlation 0 by convention.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise FeatureError(f"co-occurrence matrix must be square; got {matrix.shape}")
    levels = matrix.shape[0]
    i = np.arange(levels, dtype=np.float64)[:, None]
    j = np.arange(levels, dtype=np.float64)[None, :]

    energy = float(np.sum(matrix * matrix))
    positive = matrix[matrix > 0.0]
    entropy = float(-np.sum(positive * np.log2(positive))) if positive.size else 0.0
    contrast = float(np.sum((i - j) ** 2 * matrix))
    homogeneity = float(np.sum(matrix / (1.0 + np.abs(i - j))))

    mu_i = float(np.sum(i * matrix))
    mu_j = float(np.sum(j * matrix))
    var_i = float(np.sum((i - mu_i) ** 2 * matrix))
    var_j = float(np.sum((j - mu_j) ** 2 * matrix))
    if var_i > 0.0 and var_j > 0.0:
        correlation = float(
            np.sum((i - mu_i) * (j - mu_j) * matrix) / np.sqrt(var_i * var_j)
        )
    else:
        correlation = 0.0
    return np.array([energy, entropy, contrast, homogeneity, correlation])


class GLCMFeatures(FeatureExtractor):
    """Haralick texture statistics over one or more co-occurrence offsets.

    Parameters
    ----------
    levels:
        Gray quantization (default 16; finer levels dilute the counts).
    offsets:
        ``(dy, dx)`` displacements (default: distance 1 at 4 angles).
    aggregate:
        ``'mean'`` averages statistics over offsets (approximately rotation
        invariant, 5 dims); ``'concat'`` keeps each offset's statistics
        (``5 * len(offsets)`` dims, orientation sensitive).
    working_size:
        Square resampling size before extraction.
    """

    def __init__(
        self,
        levels: int = 16,
        offsets: Sequence[tuple[int, int]] = DEFAULT_OFFSETS,
        *,
        aggregate: str = "mean",
        working_size: int = 64,
    ) -> None:
        if levels < 2:
            raise FeatureError(f"levels must be >= 2; got {levels}")
        if not offsets:
            raise FeatureError("at least one offset is required")
        if aggregate not in ("mean", "concat"):
            raise FeatureError(f"aggregate must be 'mean' or 'concat'; got {aggregate!r}")
        if working_size < 4:
            raise FeatureError(f"working_size too small: {working_size}")
        self._levels = levels
        self._offsets = tuple((int(dy), int(dx)) for dy, dx in offsets)
        self._aggregate = aggregate
        self._working_size = working_size
        self._name = f"glcm_{levels}l_{len(self._offsets)}o_{aggregate}"
        self._dim = len(STAT_NAMES) * (1 if aggregate == "mean" else len(self._offsets))

    def _extract(self, image: Image) -> np.ndarray:
        small = image.resize(self._working_size, self._working_size)
        codes = quantize_gray(small, self._levels)
        stats = [
            haralick_stats(glcm(codes, self._levels, offset)) for offset in self._offsets
        ]
        if self._aggregate == "mean":
            return np.mean(stats, axis=0)
        return np.concatenate(stats)
