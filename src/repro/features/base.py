"""Extractor protocol and shared vector utilities.

A feature extractor is a small, configured, stateless object.  Its contract:

* ``dim`` declares the output dimensionality before any image is seen
  (the feature store allocates fixed-size records from it);
* ``extract`` returns a 1-D float64 array of exactly ``dim`` finite values;
* equal configuration implies equal output — extractors hold no per-image
  state, so one instance can serve a whole database build.

:class:`FeatureExtractor` enforces the output contract centrally so
concrete extractors only implement ``_extract``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import FeatureError
from repro.image.core import Image

__all__ = [
    "FeatureExtractor",
    "PresetSignature",
    "l1_normalize",
    "l2_normalize",
    "minmax_normalize",
]


def l1_normalize(vector: np.ndarray) -> np.ndarray:
    """Scale a non-negative vector to unit L1 mass (sum = 1).

    The zero vector is returned unchanged — an all-empty histogram stays
    empty rather than becoming NaN.
    """
    vector = np.asarray(vector, dtype=np.float64)
    total = vector.sum()
    return vector / total if total > 0.0 else vector.copy()


def l2_normalize(vector: np.ndarray) -> np.ndarray:
    """Scale a vector to unit Euclidean norm (zero vector passes through)."""
    vector = np.asarray(vector, dtype=np.float64)
    norm = float(np.linalg.norm(vector))
    return vector / norm if norm > 0.0 else vector.copy()


def minmax_normalize(vector: np.ndarray) -> np.ndarray:
    """Affinely rescale a vector into [0, 1] (constant vector maps to zeros)."""
    vector = np.asarray(vector, dtype=np.float64)
    lo = float(vector.min())
    hi = float(vector.max())
    span = hi - lo
    return (vector - lo) / span if span > 0.0 else np.zeros_like(vector)


class FeatureExtractor(ABC):
    """Base class for all feature extractors.

    Subclasses implement :meth:`_extract` and set ``_name`` and ``_dim`` in
    their constructor (or override the properties).  :meth:`extract`
    validates every output against the declared contract.
    """

    _name: str
    _dim: int

    @property
    def name(self) -> str:
        """Stable identifier used as the feature's key in schemas/stores."""
        return self._name

    @property
    def dim(self) -> int:
        """Dimensionality of the produced signature vector."""
        return self._dim

    def extract(self, image: Image) -> np.ndarray:
        """Extract the signature of ``image``.

        Returns
        -------
        numpy.ndarray
            1-D float64 array of length :attr:`dim`.

        Raises
        ------
        FeatureError
            If the concrete extractor produced an invalid vector — this
            always indicates a bug in the extractor, so it is loud.
        """
        if not isinstance(image, Image):
            raise FeatureError(
                f"{self.name}: extract() requires an Image, got {type(image).__name__}"
            )
        vector = np.asarray(self._extract(image), dtype=np.float64).ravel()
        if vector.shape != (self.dim,):
            raise FeatureError(
                f"{self.name}: produced shape {vector.shape}, declared dim {self.dim}"
            )
        if not np.all(np.isfinite(vector)):
            raise FeatureError(f"{self.name}: produced non-finite values")
        return vector

    @abstractmethod
    def _extract(self, image: Image) -> np.ndarray:
        """Compute the raw signature (validated by :meth:`extract`)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, dim={self.dim})"


class PresetSignature(FeatureExtractor):
    """A declared-dimension placeholder for vector-only databases.

    Serving benchmarks, load tests, and any ingest path that already
    holds signature vectors (:meth:`repro.db.ImageDatabase.add_vectors`)
    need a schema that names a feature and fixes its dimensionality
    without paying for — or even defining — image feature extraction.
    ``extract`` therefore refuses images outright: a database built on a
    preset feature is populated with precomputed vectors only.
    """

    def __init__(self, dim: int, name: str = "signature") -> None:
        if dim < 1:
            raise FeatureError(f"dim must be >= 1; got {dim}")
        self._dim = int(dim)
        self._name = str(name)

    def _extract(self, image: Image) -> np.ndarray:
        raise FeatureError(
            f"{self.name} holds precomputed signatures; insert vectors with "
            f"ImageDatabase.add_vectors, not images"
        )
