"""repro — content-based image indexing.

A production-quality reproduction of *"Content-Based Image Indexing"*
(VLDB 1994): feature extraction turning images into fixed-length
signatures, metric-space index structures (vantage-point tree, Antipole
tree) answering range and k-nearest-neighbour queries with
triangle-inequality pruning, and an image-database layer (catalog, paged
feature store with an LRU buffer pool, multi-feature query engine) that
ties them together.

Quick start
-----------
>>> import numpy as np
>>> from repro import ImageDatabase
>>> from repro.image import synth
>>> rng = np.random.default_rng(0)
>>> db = ImageDatabase()
>>> for _ in range(8):
...     _ = db.add_image(synth.compose_scene(64, 64, rng), label="scenes")
>>> results = db.query(synth.compose_scene(64, 64, rng), k=3)
>>> [type(r.image_id) for r in results] == [int, int, int]
True

Subpackages
-----------
``repro.image``     image substrate (value type, filters, codecs, synthesis)
``repro.features``  feature extractors (histograms, GLCM, wavelets, edges, shape)
``repro.metrics``   similarity measures (Minkowski, intersection, quadratic, EMD)
``repro.index``     metric-space indexes (VP-tree, Antipole, M-tree, GNAT, LAESA,
                    kd-tree, GEMINI filter-and-refine, linear scan)
``repro.reduce``    dimensionality reduction (KL transform, FastMap)
``repro.db``        database layer (catalog, feature store, buffer pool, queries)
``repro.serve``     concurrent query service (micro-batch scheduler, result
                    cache, HTTP front end + client)
``repro.eval``      evaluation substrate (corpora, ground truth, IR metrics)
"""

from repro.errors import (
    CatalogError,
    CodecError,
    FeatureError,
    ImageError,
    IndexingError,
    MetricError,
    QueryError,
    ReproError,
    ServeError,
    StoreError,
)
from repro.image.core import Image
from repro.features.pipeline import CompositeExtractor, FeatureSchema, default_schema
from repro.metrics import (
    CountingMetric,
    EuclideanDistance,
    HistogramIntersection,
    ManhattanDistance,
)
# repro.db loads before repro.index: the index core arrays sit on the
# storage backends of repro.db.backend, so the db package is the root
# of the import graph (see docs/storage.md).
from repro.db import (
    BufferPool,
    Catalog,
    FeatureStore,
    FeedbackSession,
    ImageDatabase,
    ImageRecord,
    Rocchio,
)
from repro.index import (
    AntipoleTree,
    browse,
    FilterRefineIndex,
    GNAT,
    KDTree,
    LinearScanIndex,
    MetricIndex,
    MTree,
    Neighbor,
    VPTree,
)
from repro.reduce import FastMap, KLTransform
from repro.serve import (
    QueryScheduler,
    QueryServer,
    ResultCache,
    ServedResult,
    ServiceClient,
    ServiceStats,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ImageError",
    "CodecError",
    "FeatureError",
    "MetricError",
    "IndexingError",
    "StoreError",
    "CatalogError",
    "QueryError",
    "ServeError",
    # core types
    "Image",
    "FeatureSchema",
    "CompositeExtractor",
    "default_schema",
    # metrics
    "EuclideanDistance",
    "ManhattanDistance",
    "HistogramIntersection",
    "CountingMetric",
    # indexes
    "MetricIndex",
    "Neighbor",
    "VPTree",
    "AntipoleTree",
    "MTree",
    "GNAT",
    "FilterRefineIndex",
    "KDTree",
    "LinearScanIndex",
    "browse",
    # reducers
    "KLTransform",
    "FastMap",
    # database
    "ImageDatabase",
    "ImageRecord",
    "Catalog",
    "FeatureStore",
    "BufferPool",
    "FeedbackSession",
    "Rocchio",
    # serving
    "QueryScheduler",
    "ServedResult",
    "ResultCache",
    "ServiceStats",
    "QueryServer",
    "ServiceClient",
]
