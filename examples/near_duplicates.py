"""Near-duplicate detection with range queries.

A classic CBIR application: find re-saves, crops, exposure tweaks and
noisy re-scans of the same photo in a collection.  The recipe:

1. build a corpus and plant disguised duplicates of a few originals
   (small brightness shift, added sensor noise, horizontal flip),
2. describe images with **color moments** - unlike quantized histograms
   they degrade *continuously* under photometric edits (a 2% exposure
   shift moves a histogram's mass across bin boundaries wholesale, but
   moves each moment by ~2%),
3. pick a detection radius from the corpus's own distance distribution
   (a small fraction of the median pairwise distance - "much closer
   than unrelated images are to each other"),
4. run a range query around every image and report the suspect pairs.

Run with::

    python examples/near_duplicates.py
"""

from __future__ import annotations

import numpy as np

from repro import ImageDatabase
from repro.eval.datasets import make_corpus_images
from repro.eval.harness import ascii_table
from repro.eval.stats import distance_sample
from repro.features.moments import ColorMoments
from repro.features.pipeline import FeatureSchema
from repro.image import transforms
from repro.metrics.minkowski import EuclideanDistance


def main() -> None:
    rng = np.random.default_rng(21)
    images, labels = make_corpus_images(4, size=48, seed=17)

    # Plant near-duplicates of three originals.
    duplicates = {
        0: ("brightness +0.02", transforms.adjust_brightness(images[0], 0.02)),
        9: ("gaussian noise 0.02", transforms.add_gaussian_noise(images[9], rng, 0.02)),
        17: ("horizontal flip", transforms.flip_horizontal(images[17])),
    }

    schema = FeatureSchema([ColorMoments("rgb")])
    feature = schema.names[0]
    db = ImageDatabase(schema)

    original_ids = {}
    for position, (image, label) in enumerate(zip(images, labels)):
        original_ids[position] = db.add_image(image, label=label, name=f"orig_{position}")
    duplicate_ids = {}
    for position, (edit, dup) in duplicates.items():
        duplicate_ids[position] = db.add_image(
            dup, label=labels[position], name=f"dup_of_{position}"
        )

    # Detection radius: a small fraction of the median pairwise distance.
    ids, matrix = db.feature_matrix(feature)
    sample = distance_sample(EuclideanDistance(), matrix, n_pairs=4000, seed=0)
    radius = 0.1 * float(np.median(sample))
    print(f"collection size: {len(db)}   median pair distance: "
          f"{np.median(sample):.3f}   detection radius: {radius:.4f}\n")

    # Range query around every image; collect non-trivial matches.
    pairs = set()
    for row, image_id in enumerate(ids):
        for result in db.range_query(matrix[row], radius, feature=feature):
            if result.image_id != image_id:
                key = (min(image_id, result.image_id), max(image_id, result.image_id))
                pairs.add((key, round(result.distance, 4)))

    rows = [
        [db.catalog.get(a).name, db.catalog.get(b).name, d]
        for (a, b), d in sorted(pairs)
    ]
    print(ascii_table(["image A", "image B", "distance"], rows,
                      title="suspected near-duplicate pairs"))

    planted = {
        (min(original_ids[p], duplicate_ids[p]), max(original_ids[p], duplicate_ids[p]))
        for p in duplicates
    }
    found = {key for key, _ in pairs}
    recovered = planted & found
    print(f"\nplanted duplicates recovered: {len(recovered)}/{len(planted)}")
    extras = found - planted
    if extras:
        print(f"additional close pairs flagged for review "
              f"(visually similar class-mates): {len(extras)}")


if __name__ == "__main__":
    main()
