"""GEMINI filter-and-refine: searching a 162-D histogram space cheaply.

High-dimensional signatures defeat tree indexes (the curse of
dimensionality), but image features are *correlated* — most of their
variance fits in a few axes.  This example shows the era's standard
answer end to end:

1. extract 162-D HSV histograms for a corpus,
2. fit a Karhunen-Loève transform and print its variance profile,
3. build a :class:`repro.FilterRefineIndex` that searches a k-D
   projection and refines only the survivors with the true distance,
4. verify against a linear scan that *nothing was missed* (the
   contractive guarantee) while most full-distance computations were
   skipped,
5. contrast with FastMap, which needs only the metric, not coordinates.

Run with::

    python examples/gemini_search.py
"""

from __future__ import annotations

import numpy as np

from repro import FilterRefineIndex, KLTransform, LinearScanIndex
from repro.eval.datasets import make_class_image, make_corpus_images
from repro.eval.harness import ascii_table
from repro.features import HSVHistogram
from repro.metrics import EuclideanDistance
from repro.reduce import FastMap

K = 10


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A corpus of 8 classes x 16 images, as 162-D HSV histograms.
    # ------------------------------------------------------------------
    extractor = HSVHistogram((18, 3, 3), working_size=32)
    images, labels = make_corpus_images(16, size=32, seed=23)
    vectors = np.array([extractor.extract(image) for image in images])
    ids = list(range(len(images)))
    print(f"corpus: {len(images)} images -> {vectors.shape[1]}-D signatures\n")

    # ------------------------------------------------------------------
    # 2. How much of this space is real?  The KL spectrum answers.
    # ------------------------------------------------------------------
    probe = KLTransform(vectors.shape[1]).fit(vectors)
    rows = []
    for dim in (2, 4, 8, 16, 32):
        kept = float(probe.eigenvalues[:dim].sum() / probe.eigenvalues.sum())
        rows.append([dim, kept])
    print(
        ascii_table(
            ["kept axes", "variance retained"],
            rows,
            title="KL spectrum of the 162-D histograms",
        )
    )

    # ------------------------------------------------------------------
    # 3. Filter-and-refine at 8 axes vs the full-space scan.
    # ------------------------------------------------------------------
    metric = EuclideanDistance()
    scan = LinearScanIndex(metric).build(ids, vectors)
    gemini = FilterRefineIndex(metric, KLTransform(8)).build(ids, vectors)

    query = extractor.extract(
        make_class_image("blue_gradients", np.random.default_rng(9), size=32)
    )
    truth = scan.knn_search(query, K)
    got = gemini.knn_search(query, K)

    assert [n.id for n in got] == [n.id for n in truth], "contractive guarantee broken?"
    print(
        f"\nk={K} query answered exactly: "
        f"{gemini.last_stats.distance_computations} full-distance computations "
        f"instead of {scan.last_stats.distance_computations} "
        f"({gemini.last_candidate_count} filter survivors, "
        f"{100 * gemini.last_candidate_ratio:.1f}% of the database)"
    )

    # ------------------------------------------------------------------
    # 4. FastMap needs no coordinates — embed via the metric alone.
    # ------------------------------------------------------------------
    fastmap = FastMap(8, metric, seed=1)
    heuristic = FilterRefineIndex(metric, fastmap).build(ids, vectors)
    got_fm = heuristic.knn_search(query, K)
    overlap = len({n.id for n in got_fm} & {n.id for n in truth})
    print(
        f"FastMap(8) filter: {heuristic.last_stats.distance_computations} "
        f"full distances, {overlap}/{K} of the true neighbours recovered "
        f"(heuristic bound — exactness is measured, not guaranteed; "
        f"embedding stress {fastmap.stress(vectors):.3f})"
    )


if __name__ == "__main__":
    main()
