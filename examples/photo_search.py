"""Multi-feature photo search: weighting and rank fusion.

The scenario the paper's introduction motivates: a user searching a photo
collection by example, where no single feature suffices.  Color alone
confuses a red-dominant scene with a red gradient; texture alone confuses
stripes with checkerboards.  This example shows:

1. single-feature queries and where each goes wrong,
2. a weighted multi-feature query (color 2x, texture 1x, edges 1x),
3. Borda-count rank fusion over all features,
4. per-query precision against the known class labels.

Run with::

    python examples/photo_search.py
"""

from __future__ import annotations

import numpy as np

from repro import ImageDatabase
from repro.eval.datasets import make_class_image, make_corpus_images
from repro.eval.harness import ascii_table


def precision_of(results, expected_label, db) -> float:
    """Fraction of results whose class matches the query's class."""
    hits = sum(1 for r in results if db.catalog.get(r.image_id).label == expected_label)
    return hits / len(results) if results else 0.0


def main() -> None:
    images, labels = make_corpus_images(8, size=48, seed=3)
    db = ImageDatabase()
    for image, label in zip(images, labels):
        db.add_image(image, label=label)

    # Unseen queries, one per class.
    rng = np.random.default_rng(99)
    query_classes = ["red_scenes", "checkerboards", "stripes_diagonal", "blue_gradients"]
    queries = {label: make_class_image(label, rng, size=48) for label in query_classes}

    color = "hsv_hist_18x3x3"
    texture = "glcm_16l_4o_mean"
    edges = "edge_orient_18"

    rows = []
    for label, query in queries.items():
        by_color = db.query(query, k=5, feature=color)
        by_texture = db.query(query, k=5, feature=texture)
        weighted = db.query_multi(
            query, k=5, weights={color: 2.0, texture: 1.0, edges: 1.0}
        )
        fused = db.query_fused(query, k=5, features=[color, texture, edges], method="borda")
        rows.append(
            [
                label,
                precision_of(by_color, label, db),
                precision_of(by_texture, label, db),
                precision_of(weighted, label, db),
                precision_of(fused, label, db),
            ]
        )

    mean_row = ["MEAN"] + [
        float(np.mean([row[col] for row in rows])) for col in range(1, 5)
    ]
    print(
        ascii_table(
            ["query class", "color only", "texture only", "weighted 2:1:1", "borda fusion"],
            rows + [mean_row],
            title="precision@5 per query strategy (higher is better)",
        )
    )

    print(
        "\nNote how color alone struggles on the achromatic classes\n"
        "(checkerboards, stripes) while texture alone struggles on the\n"
        "color classes - and the combined strategies cover both."
    )


if __name__ == "__main__":
    main()
