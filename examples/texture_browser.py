"""Texture browsing: GLCM statistics and wavelet signatures in action.

Color-blind retrieval: all images here are near-achromatic textures, so
histograms are useless and the texture features must carry the query.
The example:

1. prints the Haralick statistics (energy/entropy/contrast/homogeneity/
   correlation) for one exemplar of each texture class - the numbers the
   paper's texture section defines,
2. prints the 10-value wavelet signature for the same exemplars,
3. runs leave-one-out retrieval with each texture feature and reports
   which feature separates which classes.

Run with::

    python examples/texture_browser.py
"""

from __future__ import annotations

import numpy as np

from repro import ImageDatabase
from repro.eval.datasets import make_class_image
from repro.eval.harness import ascii_table
from repro.features.pipeline import FeatureSchema
from repro.features.texture import GLCMFeatures, STAT_NAMES
from repro.features.wavelet import WaveletSignature

TEXTURE_CLASSES = ("checkerboards", "stripes_horizontal", "stripes_diagonal",
                   "noise_fine", "smooth_blobs")


def main() -> None:
    rng = np.random.default_rng(5)

    # ------------------------------------------------------------------
    # 1. Haralick statistics per class exemplar.
    # ------------------------------------------------------------------
    glcm = GLCMFeatures(16, working_size=48)
    exemplars = {label: make_class_image(label, rng, size=48) for label in TEXTURE_CLASSES}
    rows = [
        [label] + list(glcm.extract(image))
        for label, image in exemplars.items()
    ]
    print(ascii_table(["class"] + list(STAT_NAMES), rows,
                      title="GLCM (Haralick) statistics per texture class"))

    # ------------------------------------------------------------------
    # 2. Wavelet signatures (3-level Haar, 10 subband energies).
    # ------------------------------------------------------------------
    wavelet = WaveletSignature(3, working_size=32)
    rows = [
        [label, sig[0], float(sig[1:4].sum()), float(sig[4:7].sum()), float(sig[7:10].sum())]
        for label, sig in (
            (label, wavelet.extract(image)) for label, image in exemplars.items()
        )
    ]
    print()
    print(ascii_table(
        ["class", "approx", "coarse detail", "mid detail", "fine detail"],
        rows,
        title="wavelet signature energy by scale (3-level Haar)",
    ))

    # ------------------------------------------------------------------
    # 3. Leave-one-out retrieval per texture feature.
    # ------------------------------------------------------------------
    schema = FeatureSchema([
        GLCMFeatures(16, working_size=48),
        GLCMFeatures(16, aggregate="concat", working_size=48),
        WaveletSignature(3, working_size=32),
    ])
    db = ImageDatabase(schema)
    per_class = 8
    for _ in range(per_class):
        for label in TEXTURE_CLASSES:
            db.add_image(make_class_image(label, rng, size=48), label=label)

    rows = []
    for feature in schema.names:
        ids, matrix = db.feature_matrix(feature)
        correct = 0
        total = 0
        for row, image_id in enumerate(ids):
            results = db.query(matrix[row], k=4, feature=feature)
            neighbours = [r for r in results if r.image_id != image_id][:3]
            query_label = db.catalog.get(image_id).label
            correct += sum(
                1 for r in neighbours if db.catalog.get(r.image_id).label == query_label
            )
            total += len(neighbours)
        rows.append([feature, correct / total])
    print()
    print(ascii_table(["texture feature", "precision@3 (leave-one-out)"], rows,
                      title="retrieval quality on achromatic textures"))
    print(
        "\nThe orientation-sensitive GLCM variant (concat) separates\n"
        "horizontal from diagonal stripes, which the rotation-averaged\n"
        "variant cannot; the wavelet signature separates by scale."
    )


if __name__ == "__main__":
    main()
