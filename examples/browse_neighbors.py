"""Distance browsing: "show me more" without re-running the query.

The standard CBIR interaction is a result page the user keeps
scrolling.  k-NN needs k up front and repeats all earlier work when the
user asks for more; *distance browsing* (incremental nearest-neighbor)
yields results one at a time, nearest first, paying only for what is
actually consumed.  This example:

1. indexes a corpus of color histograms in a VP-tree,
2. opens a browse stream for a query image,
3. pulls three "pages" of 5 results, printing the cumulative number of
   distance computations after each page,
4. compares against the cost of answering the same pages with three
   separate k-NN calls (k=5, 10, 15).

Run with::

    python examples/browse_neighbors.py
"""

from __future__ import annotations

import numpy as np

from repro.eval.datasets import make_class_image, make_corpus_images
from repro.eval.harness import ascii_table
from repro.features import HSVHistogram
from repro.index import VPTree, browse
from repro.metrics import CountingMetric, EuclideanDistance

PAGE = 5
PAGES = 3


def main() -> None:
    # ------------------------------------------------------------------
    # Index 256 images' HSV histograms under a counting metric so every
    # distance evaluation is visible.
    # ------------------------------------------------------------------
    extractor = HSVHistogram((18, 3, 3), working_size=32)
    images, labels = make_corpus_images(32, size=32, seed=77)
    vectors = np.array([extractor.extract(image) for image in images])
    counter = CountingMetric(EuclideanDistance())
    tree = VPTree(counter).build(range(len(images)), vectors)
    print(f"indexed {len(images)} images\n")

    query = extractor.extract(
        make_class_image("blue_gradients", np.random.default_rng(3), size=32)
    )

    # ------------------------------------------------------------------
    # One browse stream, consumed page by page.
    # ------------------------------------------------------------------
    counter.reset()
    stream = browse(tree, query)
    rows = []
    browse_costs = []
    for page in range(1, PAGES + 1):
        hits = [next(stream) for _ in range(PAGE)]
        browse_costs.append(counter.count)
        rows.append(
            [
                f"page {page}",
                ", ".join(labels[nb.id] for nb in hits[:3]) + ", ...",
                counter.count,
            ]
        )
    print(
        ascii_table(
            ["browse", "first labels", "cumulative dists"],
            rows,
            title=f"one stream, {PAGES} pages of {PAGE}",
        )
    )

    # ------------------------------------------------------------------
    # The same pages via repeated k-NN: each call starts from scratch.
    # ------------------------------------------------------------------
    rows = []
    knn_total = 0
    for page in range(1, PAGES + 1):
        counter.reset()
        tree.knn_search(query, PAGE * page)
        knn_total += counter.count
        rows.append([f"k={PAGE * page}", counter.count, knn_total])
    print()
    print(
        ascii_table(
            ["repeated k-NN", "dists this call", "cumulative dists"],
            rows,
            title="same pages via three separate k-NN calls",
        )
    )
    print(
        f"\nbrowsing served {PAGES * PAGE} results for {browse_costs[-1]} "
        f"distance computations; repeated k-NN paid {knn_total} "
        f"({knn_total / browse_costs[-1]:.1f}x more)"
    )


if __name__ == "__main__":
    main()
