"""Quickstart: build an image database, query by example, inspect costs.

Runs entirely on synthetic images (no downloads):

1. generate a small labelled corpus (8 visual classes),
2. insert everything into an :class:`repro.ImageDatabase` (features are
   extracted automatically per the default schema),
3. run a query-by-example k-NN search,
4. show that the VP-tree answered it with far fewer distance
   computations than a linear scan would need,
5. answer a whole batch of queries in one engine pass and check it
   agrees with the scalar path.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ImageDatabase
from repro.eval.datasets import make_corpus_images
from repro.eval.harness import ascii_table
from repro.image import synth


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A labelled corpus: 6 images of each of the 8 classes.
    # ------------------------------------------------------------------
    images, labels = make_corpus_images(6, size=48, seed=42)
    print(f"corpus: {len(images)} images, classes: {sorted(set(labels))}\n")

    # ------------------------------------------------------------------
    # 2. Insert into the database. The default schema extracts HSV and
    #    RGB histograms, color moments, GLCM texture, wavelet signatures
    #    and edge-orientation histograms for every image.
    # ------------------------------------------------------------------
    db = ImageDatabase()
    for image, label in zip(images, labels):
        db.add_image(image, label=label)
    print(f"inserted {len(db)} images; features: {list(db.schema.names)}\n")

    # ------------------------------------------------------------------
    # 3. Query by example: a fresh red scene the database has never seen.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    query = synth.compose_scene(
        48, 48, rng,
        background=synth.solid(48, 48, (0.55, 0.45, 0.40)),
        palette=[(0.85, 0.10, 0.10), (0.95, 0.30, 0.15)],
    )
    results = db.query(query, k=5, feature="hsv_hist_18x3x3")

    rows = [
        [str(r.image_id), r.record.label or "-", r.distance]
        for r in results
    ]
    print(ascii_table(["image id", "label", "distance"], rows,
                      title="top-5 by HSV histogram (query: unseen red scene)"))

    # ------------------------------------------------------------------
    # 4. Cost: the VP-tree vs what a scan would have paid.
    # ------------------------------------------------------------------
    index = db.index_for("hsv_hist_18x3x3")
    stats = index.last_stats
    print(
        f"\nVP-tree cost: {stats.distance_computations} distance computations "
        f"(linear scan would be {len(db)}), "
        f"{stats.nodes_pruned} subtree(s) pruned via the triangle inequality"
    )

    # ------------------------------------------------------------------
    # 5. Batched queries: several examples answered in one engine pass,
    #    with results identical to querying one at a time.
    # ------------------------------------------------------------------
    batch = [synth.compose_scene(48, 48, rng, n_shapes=3) for _ in range(4)]
    batched = db.query_batch(batch, k=3, feature="hsv_hist_18x3x3")
    scalar = [db.query(image, k=3, feature="hsv_hist_18x3x3") for image in batch]
    agree = all(
        [(r.image_id, r.distance) for r in b] == [(r.image_id, r.distance) for r in s]
        for b, s in zip(batched, scalar)
    )
    print(
        f"\nbatched 4 queries in one pass: top labels "
        f"{[results[0].record.label for results in batched]}; "
        f"identical to scalar queries: {agree}"
    )
    if not agree:  # the batch engine's contract — make smoke runs fail loudly
        raise SystemExit("batched results diverged from scalar queries")


if __name__ == "__main__":
    main()
