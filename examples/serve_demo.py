"""Serve demo: concurrent clients, coalescing, caching, live mutations.

Drives the whole :mod:`repro.serve` stack in one process:

1. build a vector database (2,000 signatures under a
   :class:`~repro.features.base.PresetSignature` schema — no image
   extraction, this demo is about *serving*),
2. start the HTTP query service (:class:`repro.serve.QueryServer`) on
   an ephemeral port,
3. unleash 8 concurrent :class:`repro.serve.ServiceClient` threads,
   each issuing a stream of k-NN requests drawn from a shared pool of
   popular queries,
4. show the service's own telemetry — formed batch sizes, cache hit
   rate, latency percentiles — and verify every served answer is
   bit-identical to querying the database directly,
5. mutate the database *live* over HTTP (``POST /add`` /
   ``POST /remove``): the new item is immediately retrievable, and the
   generation-stamped cache invalidates exactly the entries the
   mutation made stale (``docs/mutability.md``),
6. pull one request's **trace** back out of the flight recorder
   (``GET /debug/trace?id=``) and print its per-stage span waterfall —
   queue wait, batch forming, engine time with the exact distance
   computations — the forensic layer of ``docs/observability.md``.

Run with::

    python examples/serve_demo.py

Set ``REPRO_DEMO_N`` to shrink the database (CI smoke runs use a tiny
one).
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro import ImageDatabase
from repro.eval.harness import ascii_table
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.serve import QueryServer, ServiceClient

N_VECTORS = int(os.environ.get("REPRO_DEMO_N", "2000"))
DIM = 32
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 12
POOL_SIZE = 24  # distinct "popular" queries shared by all clients
K = 5


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A vector database: precomputed signatures, no images.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(42)
    db = ImageDatabase(FeatureSchema([PresetSignature(DIM, "signature")]))
    db.add_vectors(rng.random((N_VECTORS, DIM)))
    db.build_indexes()
    print(f"database: {len(db)} vectors of dim {DIM} under a VP-tree\n")

    # ------------------------------------------------------------------
    # 2. The service: HTTP front end + coalescing scheduler + LRU cache.
    # ------------------------------------------------------------------
    server = QueryServer(db, port=0, max_batch=16, max_wait_ms=2.0).start()
    host, port = server.address
    print(f"serving on http://{host}:{port}\n")

    # ------------------------------------------------------------------
    # 3. Concurrent clients hammering a pool of popular queries.
    # ------------------------------------------------------------------
    pool = rng.random((POOL_SIZE, DIM))
    picks = rng.integers(0, POOL_SIZE, size=(N_CLIENTS, REQUESTS_PER_CLIENT))
    responses: dict[tuple[int, int], dict] = {}
    lock = threading.Lock()

    def client_thread(client_id: int) -> None:
        client = ServiceClient(host, port)
        for step, pick in enumerate(picks[client_id]):
            response = client.query(pool[pick], K)
            with lock:
                responses[(client_id, step)] = response

    threads = [
        threading.Thread(target=client_thread, args=(i,)) for i in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # ------------------------------------------------------------------
    # 4. Telemetry + the parity check that makes coalescing safe.
    # ------------------------------------------------------------------
    stats = ServiceClient(host, port).stats()

    rows = [
        ["requests served", stats["completed"]],
        ["throughput (q/s)", f"{stats['throughput_qps']:.0f}"],
        ["mean formed batch", f"{stats['mean_batch_size']:.1f}"],
        ["cache hit rate", f"{stats['cache_hit_rate']:.0%}"],
        ["p50 latency (ms)", f"{stats['latency_p50_ms']:.2f}"],
        ["p95 latency (ms)", f"{stats['latency_p95_ms']:.2f}"],
    ]
    print(ascii_table(["metric", "value"], rows, title="service telemetry"))

    mismatches = 0
    for (client_id, step), response in responses.items():
        direct = db.query(pool[picks[client_id, step]], K)
        served = [(r["image_id"], r["distance"]) for r in response["results"]]
        if served != [(r.image_id, r.distance) for r in direct]:
            mismatches += 1
    verdict = "bit-identical" if mismatches == 0 else f"{mismatches} DIVERGED"
    print(
        f"\nparity: {len(responses)} served answers vs direct db.query: {verdict}"
    )
    if mismatches:
        raise SystemExit("served results diverged from direct queries")

    # ------------------------------------------------------------------
    # 5. Live mutation: insert over HTTP, retrieve it, remove it.
    # ------------------------------------------------------------------
    client = ServiceClient(host, port)
    probe = pool[0]
    client.query(probe, K)  # warm the cache entry the add will stale
    added = client.add(probe[None, :], names=["the-probe-itself"])
    # Same query again: the cached pre-add entry is stale, so it is
    # lazily evicted (counted) and recomputed — never served.
    hit = client.query(probe, K)["results"][0]
    assert hit["image_id"] == added["ids"][0] and hit["distance"] == 0.0
    removed = client.remove(added["ids"])
    after = client.stats()
    print(
        f"live mutation: added id {added['ids'][0]} (generation "
        f"{added['generations']['signature']}), served it at distance 0.0, "
        f"removed {removed['removed']} — "
        f"{after['mutations']} mutations applied, "
        f"{after['cache_invalidations']} cache entries lazily invalidated, "
        f"no stale answer served"
    )

    # ------------------------------------------------------------------
    # 6. One request's trace: where did the milliseconds go?
    # ------------------------------------------------------------------
    from repro.serve import format_trace

    fresh = rng.random(DIM)  # a cache miss, so the full pipeline runs
    response = client.query(fresh, K)
    trace = client.debug_trace(response["trace_id"])
    print(f"\ntrace for that query (id {response['trace_id']}):")
    print(format_trace(trace))
    server.stop()


if __name__ == "__main__":
    main()
