"""Relevance feedback: teach the database what you meant.

The user wants *red* scenes but their example image is ambiguous — its
color signature sits halfway between the red-scene and green-scene
classes (simulated here by blending the two signatures).  One plain
query-by-example therefore returns a mixture.  The Rocchio loop fixes
it:

1. round 0: the ambiguous query retrieves a grab-bag of warm classes,
2. the user marks the red scenes relevant, everything else not,
3. the query vector moves toward the relevant centroid and away from
   the rest, and the re-run retrieval snaps onto the red-scene class,
4. the moved query's hue profile shows *why* it worked.

Run with::

    python examples/relevance_feedback.py
"""

from __future__ import annotations

import numpy as np

from repro.db import FeedbackSession, ImageDatabase, Rocchio
from repro.eval.datasets import make_class_image, make_corpus
from repro.eval.harness import ascii_table
from repro.features import FeatureSchema, HSVHistogram

TARGET_CLASS = "red_scenes"
DECOY_CLASS = "green_scenes"
K = 10
ROUNDS = 3


def precision_at_k(results, label, k=K) -> float:
    labels = [r.record.label for r in results[:k]]
    return labels.count(label) / float(k)


def main() -> None:
    # ------------------------------------------------------------------
    # A database of 8 classes x 12 images, indexed by HSV histogram.
    # ------------------------------------------------------------------
    schema = FeatureSchema([HSVHistogram((18, 3, 3), working_size=32)])
    db = ImageDatabase(schema)
    for image, label in make_corpus(12, size=32, seed=17):
        db.add_image(image, label=label)
    print(f"database: {len(db)} images across 8 classes\n")

    # ------------------------------------------------------------------
    # The ambiguous query: halfway between a red and a green scene.
    # ------------------------------------------------------------------
    extractor = schema.get(db.default_feature)
    rng = np.random.default_rng(4)
    red = extractor.extract(make_class_image(TARGET_CLASS, rng, size=32))
    green = extractor.extract(make_class_image(DECOY_CLASS, rng, size=32))
    ambiguous = 0.5 * (red + green)

    session = FeedbackSession(db, ambiguous, rule=Rocchio(1.0, 0.75, 0.25))
    results = session.search(K)
    round0_labels = sorted({r.record.label for r in results})
    rows = [["0 (no feedback)", precision_at_k(results, TARGET_CLASS), "-", "-"]]

    # ------------------------------------------------------------------
    # Feedback rounds: the simulated user judges by class label.
    # ------------------------------------------------------------------
    for round_number in range(1, ROUNDS + 1):
        relevant = [r.image_id for r in results if r.record.label == TARGET_CLASS]
        non_relevant = [r.image_id for r in results if r.record.label != TARGET_CLASS]
        session.mark_relevant(relevant)
        session.mark_non_relevant(non_relevant)
        results = session.search(K)
        rows.append(
            [
                str(round_number),
                precision_at_k(results, TARGET_CLASS),
                len(relevant),
                len(non_relevant),
            ]
        )

    print(f"round 0 retrieved a mixture: {round0_labels}\n")
    print(
        ascii_table(
            ["round", f"precision@{K}", "marked +", "marked -"],
            rows,
            title=f"Rocchio feedback hunting for '{TARGET_CLASS}' "
            "with an ambiguous query",
        )
    )

    # ------------------------------------------------------------------
    # What moved: compare the hue profile of the original vs moved query.
    # ------------------------------------------------------------------
    moved = session.query_vector
    hue_bins = 18
    original_hue = ambiguous.reshape(hue_bins, -1).sum(axis=1)
    moved_hue = moved.reshape(hue_bins, -1).sum(axis=1)
    gained = np.argsort(moved_hue - original_hue)[::-1][:2]
    lost = np.argsort(moved_hue - original_hue)[:2]
    print(
        f"\nquery movement shifted histogram mass into hue bins "
        f"{sorted(int(b) for b in gained)} (red) and out of bins "
        f"{sorted(int(b) for b in lost)} (green), of {hue_bins} total"
    )


if __name__ == "__main__":
    main()
