"""F17 — Tracing overhead: the observability tax on serving throughput.

Tracing is only free to leave on in production if it costs (almost)
nothing on the hot path, and each span is designed to be exactly one
``time.monotonic()`` read plus one list append.  This experiment runs
the F12 closed-loop workload — 16 concurrent clients, popular-query
pool, F12's "coalesced" configuration (micro-batching on, cache off,
so every request does real engine work and the denominator is honest)
— twice through identical scheduler machinery:

``untraced``
    ``trace_depth=0``: tracing compiled out — no trace objects, no
    spans, no recorder traffic.  The baseline.
``traced``
    The default production configuration: ``trace_depth=256`` with the
    100 ms slow-query log armed.  Every request builds a full span set
    (admit, cache-lookup, queue-wait, batch-form, engine, merge,
    respond), lands in the flight recorder, and feeds the per-stage
    Prometheus histograms.

Reproduction checks (full size): traced throughput stays within **5%**
of untraced (the acceptance ceiling for the tracing subsystem), both
runs return bit-identical results, and — as a live forensic demo — an
injected 25 ms engine stall is captured by the slow-query log with its
``engine`` span showing the bulge.  Results go to
``benchmarks/BENCH_f17_trace_overhead.json``.

Closed-loop concurrent serving is *chaotic* — which requests coalesce
into which batch varies run to run, moving elapsed time by double-digit
percentages in both directions regardless of tracing.  Both configs
therefore run ``_REPEATS`` times and the comparison uses each config's
best run (max qps): noise only ever adds time, so the minimum is the
cleanest estimator of what each configuration can actually do, and the
per-request tracing cost (a handful of microseconds) is what separates
the two minima.

``REPRO_BENCH_N`` shrinks the dataset for CI smoke runs (parity and
slow-capture checks still bite; the overhead ratio is only asserted at
full size, where timing noise is amortized over 640 requests).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_experiment
from repro.db.database import ImageDatabase
from repro.eval.harness import ascii_table
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.serve.scheduler import QueryScheduler

_N = int(os.environ.get("REPRO_BENCH_N", "2000"))
_FULL_SIZE = _N >= 2000
_DIM = 64
_K = 10
_CONCURRENCY = 16
_REQUESTS_PER_CLIENT = 40 if _FULL_SIZE else 4
_POOL_SIZE = max(8, (_CONCURRENCY * _REQUESTS_PER_CLIENT) // 8)
_REPEATS = 5 if _FULL_SIZE else 1  # best-of repeats damp scheduler jitter

_JSON_PATH = Path(__file__).parent / "BENCH_f17_trace_overhead.json"

_CONFIGS = {
    "untraced": dict(trace_depth=0, slow_query_ms=None),
    "traced": dict(trace_depth=256, slow_query_ms=100.0),
}


def _database() -> tuple[ImageDatabase, np.ndarray, np.ndarray]:
    from repro.eval.datasets import gaussian_clusters

    vectors, _ = gaussian_clusters(_N, _DIM, n_clusters=16, cluster_std=0.05, seed=42)
    pool, _ = gaussian_clusters(
        _POOL_SIZE, _DIM, n_clusters=16, cluster_std=0.05, seed=43
    )
    db = ImageDatabase(FeatureSchema([PresetSignature(_DIM, "signature")]))
    db.add_vectors(vectors)
    db.build_indexes()
    picks = np.random.default_rng(7).integers(
        0, _POOL_SIZE, size=(_CONCURRENCY, _REQUESTS_PER_CLIENT)
    )
    return db, pool, picks


def _drive(db: ImageDatabase, pool: np.ndarray, picks: np.ndarray, options: dict):
    """One closed-loop run; returns (responses, elapsed, stats, scheduler facts)."""
    scheduler = QueryScheduler(
        db, max_queue=4096, max_batch=_CONCURRENCY, max_wait_ms=4.0,
        cache_size=0, **options,
    )
    responses: dict[tuple[int, int], list] = {}
    lock = threading.Lock()
    barrier = threading.Barrier(_CONCURRENCY + 1)

    def client(client_id: int) -> None:
        barrier.wait()
        for step, pick in enumerate(picks[client_id]):
            served = scheduler.submit_query(pool[pick], _K).result()
            with lock:
                responses[(client_id, step)] = served.results

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(_CONCURRENCY)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    stats = scheduler.stats()
    recorded = scheduler.flight_recorder.recorded
    scheduler.close()

    total = _CONCURRENCY * _REQUESTS_PER_CLIENT
    assert len(responses) == total
    return responses, elapsed, stats, recorded


def _slow_capture_demo(db: ImageDatabase, pool: np.ndarray) -> dict:
    """Inject a 25 ms engine stall and prove the slow log catches it."""
    with QueryScheduler(
        db, max_wait_ms=0.5, trace_depth=64, slow_query_ms=20.0
    ) as scheduler:
        # Patch the shard view itself so the stall lands inside the
        # timed shard call — i.e. inside the trace's engine span.
        view = scheduler.engine.shards[0]
        original = view.query_batch

        def stalled(*args, **kwargs):
            time.sleep(0.025)
            return original(*args, **kwargs)

        view.query_batch = stalled
        try:
            served = scheduler.submit_query(pool[0], _K).result(10)
        finally:
            del view.query_batch
        captured = scheduler.slow_log.traces()
        assert any(t.trace_id == served.trace_id for t in captured), (
            "25 ms stall did not land in the slow-query log"
        )
        trace = next(t for t in captured if t.trace_id == served.trace_id)
        engine_ms = sum(
            s.duration_s for s in trace.spans if s.stage == "engine"
        ) * 1e3
        assert engine_ms >= 20.0, f"engine span missed the stall: {engine_ms:.2f}ms"
        return {
            "injected_stall_ms": 25.0,
            "threshold_ms": 20.0,
            "captured_latency_ms": trace.latency_s * 1e3,
            "engine_span_ms": engine_ms,
        }


def test_f17_trace_overhead(benchmark):
    db, pool, picks = _database()
    direct = {pick: db.query(pool[pick], _K) for pick in range(_POOL_SIZE)}

    rows = []
    report: dict[str, dict] = {}
    for name, options in _CONFIGS.items():
        best = None
        for _ in range(_REPEATS):
            responses, elapsed, stats, recorded = _drive(db, pool, picks, options)
            for (client_id, step), results in responses.items():
                assert results == direct[picks[client_id, step]], (
                    f"{name}: served result diverged for client {client_id} "
                    f"step {step}"
                )
            qps = stats.completed / elapsed
            if best is None or qps > best["qps"]:
                best = {
                    "requests": stats.completed,
                    "elapsed_seconds": elapsed,
                    "qps": qps,
                    "mean_batch_size": stats.mean_batch_size,
                    "cache_hit_rate": stats.cache_hit_rate,
                    "latency_p50_ms": stats.latency_p50_ms,
                    "latency_p95_ms": stats.latency_p95_ms,
                    "traces_recorded": recorded,
                }
        report[name] = best
        rows.append(
            [
                name,
                best["requests"],
                best["elapsed_seconds"],
                best["qps"],
                best["latency_p50_ms"],
                best["latency_p95_ms"],
                best["traces_recorded"],
            ]
        )

    # Tracing-off really is off; tracing-on recorded every request.
    assert report["untraced"]["traces_recorded"] == 0
    assert report["traced"]["traces_recorded"] == (
        _CONCURRENCY * _REQUESTS_PER_CLIENT
    )

    overhead = 1.0 - report["traced"]["qps"] / report["untraced"]["qps"]
    slow_demo = _slow_capture_demo(db, pool)

    print_experiment(
        ascii_table(
            ["config", "requests", "seconds", "q/s", "p50 ms", "p95 ms", "traces"],
            rows,
            title=(
                f"F17: tracing overhead, {_CONCURRENCY} concurrent clients - "
                f"N={_N}, d={_DIM}, k={_K}, pool={_POOL_SIZE} "
                f"(overhead {overhead:+.1%}; slow log caught "
                f"{slow_demo['injected_stall_ms']:.0f}ms stall, engine span "
                f"{slow_demo['engine_span_ms']:.1f}ms)"
            ),
        )
    )

    if _FULL_SIZE:
        _JSON_PATH.write_text(
            json.dumps(
                {
                    "experiment": "f17_trace_overhead",
                    "n": _N,
                    "dim": _DIM,
                    "k": _K,
                    "concurrency": _CONCURRENCY,
                    "requests": _CONCURRENCY * _REQUESTS_PER_CLIENT,
                    "pool_size": _POOL_SIZE,
                    "repeats": _REPEATS,
                    "metric": "L2",
                    "index": "vptree",
                    "configs": report,
                    "throughput_overhead": overhead,
                    "slow_query_capture": slow_demo,
                },
                indent=1,
            )
            + "\n"
        )
        # Headline acceptance: full tracing costs at most 5% throughput.
        assert overhead <= 0.05, (
            f"tracing overhead {overhead:.1%} exceeds the 5% ceiling"
        )

    # Representative op for pytest-benchmark: one traced request
    # end-to-end through the scheduler (span building included).
    with QueryScheduler(db, max_wait_ms=0.0, cache_size=0) as scheduler:
        benchmark(lambda: scheduler.submit_query(pool[0], _K).result(10))
