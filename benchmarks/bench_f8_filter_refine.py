"""F8 — GEMINI filter-and-refine: cost vs reduced dimensionality.

The filter-and-refine tradeoff on 32-D signatures whose variance is
concentrated (rank ~6 plus noise — the spectrum real image features
have): sweep the reduced dimensionality and report the retained
variance, the filter's candidate ratio, the number of *full-metric*
distance computations per k-NN query, and the measured false-dismissal
count against linear-scan ground truth.

Expected shape: KL retains most variance in a handful of axes, so the
candidate ratio collapses quickly with the reduced dimensionality while
false dismissals stay at exactly zero at every dimensionality (the
contractive guarantee).  FastMap tracks KL closely on this (Euclidean)
data but is heuristic: its violations, if any, are small and reported,
not silently absorbed.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_experiment
from repro.eval.harness import ascii_table
from repro.index.filter_refine import FilterRefineIndex
from repro.index.linear import LinearScanIndex
from repro.metrics.minkowski import EuclideanDistance
from repro.reduce import FastMap, KLTransform, contractiveness_violations

_N = 1024
_DIM = 32
_RANK = 6
_K = 10
_N_QUERIES = 20
_REDUCED_DIMS = (1, 2, 4, 8, 16)


def _correlated(n, seed):
    """Rank-limited signatures; one fixed basis so queries share the
    database's subspace (a query drawn from a different basis would be
    near-equidistant from everything and no index could help)."""
    basis = np.random.default_rng(42).normal(size=(_RANK, _DIM))
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(n, _RANK)) * np.linspace(6.0, 1.0, _RANK)
    return weights @ basis + rng.normal(0.0, 0.05, (n, _DIM))


def _false_dismissals(index, linear, queries, k):
    count = 0
    for query in queries:
        truth = {n.id for n in linear.knn_search(query, k)}
        got = {n.id for n in index.knn_search(query, k)}
        count += len(truth - got)
    return count


def test_f8_filter_refine_table(benchmark):
    vectors = _correlated(_N, seed=5)
    queries = _correlated(_N_QUERIES, seed=55)
    ids = list(range(_N))
    metric = EuclideanDistance()
    linear = LinearScanIndex(metric).build(ids, vectors)

    rows = []
    refine_cost = {}
    for reduced_dim in _REDUCED_DIMS:
        for reducer_name, make_reducer in (
            ("kl", lambda d=reduced_dim: KLTransform(d)),
            ("fastmap", lambda d=reduced_dim: FastMap(d, seed=3)),
        ):
            reducer = make_reducer()
            index = FilterRefineIndex(metric, reducer).build(ids, vectors)
            costs, ratios = [], []
            for query in queries:
                index.knn_search(query, _K)
                costs.append(index.last_stats.distance_computations)
                ratios.append(index.last_candidate_ratio)
            dismissals = _false_dismissals(index, linear, queries, _K)
            violation_rate, _ = contractiveness_violations(
                reducer, vectors, metric, n_pairs=300
            )
            quality = (
                reducer.explained_variance_ratio
                if isinstance(reducer, KLTransform)
                else 1.0 - reducer.stress(vectors)
            )
            refine_cost[(reducer_name, reduced_dim)] = float(np.mean(costs))
            rows.append(
                [
                    reducer_name,
                    reduced_dim,
                    quality,
                    float(np.mean(ratios)),
                    float(np.mean(costs)),
                    violation_rate,
                    dismissals,
                ]
            )
    print_experiment(
        ascii_table(
            [
                "reducer",
                "dim",
                "quality",
                "cand. ratio",
                "full dists/query",
                "violations",
                "false dismissals",
            ],
            rows,
            title=f"F8: GEMINI filter-and-refine - N={_N}, {_DIM}-D rank-{_RANK} "
            f"signatures, k={_K} (scan = {_N} dists/query; "
            "quality = KL variance kept / 1 - FastMap stress)",
        )
    )

    # Shape checks.  KL: exact at every dimensionality, and the filter
    # tightens monotonically until the intrinsic rank is covered.
    for reduced_dim in _REDUCED_DIMS:
        index = FilterRefineIndex(metric, KLTransform(reduced_dim)).build(ids, vectors)
        assert _false_dismissals(index, linear, queries, _K) == 0
    assert refine_cost[("kl", 8)] < refine_cost[("kl", 1)]
    # Once the intrinsic rank is covered the filter is sharp: candidates
    # cost an order of magnitude less than the scan.
    assert refine_cost[("kl", 8)] < 0.15 * _N

    index = FilterRefineIndex(metric, KLTransform(8)).build(ids, vectors)
    benchmark(lambda: index.knn_search(queries[0], _K))


@pytest.mark.parametrize("reduced_dim", _REDUCED_DIMS)
def test_f8_range_query_no_false_dismissals(benchmark, reduced_dim):
    """The contractive guarantee, checked for range queries too."""
    vectors = _correlated(_N, seed=5)
    queries = _correlated(5, seed=56)
    ids = list(range(_N))
    metric = EuclideanDistance()
    linear = LinearScanIndex(metric).build(ids, vectors)
    index = FilterRefineIndex(metric, KLTransform(reduced_dim)).build(ids, vectors)
    radius = 0.0
    for query in queries:
        radius = linear.knn_search(query, 20)[-1].distance
        truth = {n.id for n in linear.range_search(query, radius)}
        got = {n.id for n in index.range_search(query, radius)}
        assert got == truth
    benchmark(lambda: index.range_search(queries[0], radius))
