"""F13 — The last loop-fallback metrics get kernels: EMD and Hausdorff.

After the tree-vectorization and serving PRs, the match distance (1-D
EMD via CDF L1) and the Hausdorff distance were the only shipped metrics
still served by the per-row ``distance_batch`` loop fallback — every
tree query over them forfeited the kernel throughput the other metrics
enjoy.  This experiment measures what their new vectorized kernels buy:

* **metric sweeps** — ``distance_batch`` over the full table, kernel vs
  loop fallback (``hide_batch_kernel``), for EMD, circular EMD, and
  Hausdorff over ragged NaN-padded point buffers;
* **shared tree traversals** — GNAT and kd-tree batched range queries
  (the shared traversals this PR added) and GNAT k-NN batches over EMD,
  against the scalar-era cost model (kernel hidden, per-query loops).

Reproduction checks (full size only): the EMD kernel sweep is >= 3x the
loop fallback at n=2000 d=64 and the Hausdorff kernel >= 2x; every path
returns bit-identical answers with bit-identical per-query cost
counters.  Results land in ``benchmarks/BENCH_f13_emd_hausdorff.json``
so the perf trajectory is machine-readable.

``REPRO_BENCH_N`` shrinks the dataset for CI smoke runs (kernel
regressions still surface as parity failures; the wall-clock assertions
only apply at full size, where timing is meaningful).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.harness import ascii_table
from repro.index.gnat import GNAT
from repro.index.kdtree import KDTree
from repro.metrics.base import hide_batch_kernel
from repro.metrics.emd import MatchDistance
from repro.metrics.hausdorff import HausdorffDistance
from repro.metrics.minkowski import EuclideanDistance

_N = int(os.environ.get("REPRO_BENCH_N", "2000"))
_FULL_SIZE = _N >= 2000
_DIM = 64
_POINT_DIM = 2
_N_QUERIES = max(4, _N // 100)
_K = 10

_JSON_PATH = Path(__file__).parent / "BENCH_f13_emd_hausdorff.json"

#: Wall-clock measurements take the best of this many repetitions.
_REPEATS = 3


def _timed(run):
    best = np.inf
    for _ in range(_REPEATS):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return result, best


def _histogram_dataset():
    rng = np.random.default_rng(131)
    vectors = rng.random((_N, _DIM))
    queries = rng.random((_N_QUERIES, _DIM))
    return vectors, queries


def _point_set_dataset():
    """Ragged point sets packed as NaN-padded flat buffers."""
    rng = np.random.default_rng(132)
    max_points = _DIM // _POINT_DIM
    buffers = np.full((_N, _DIM), np.nan)
    for i in range(_N):
        count = int(rng.integers(3, max_points + 1))
        buffers[i, : count * _POINT_DIM] = rng.random(count * _POINT_DIM)
    queries = np.full((_N_QUERIES, _DIM), np.nan)
    for i in range(_N_QUERIES):
        count = int(rng.integers(3, max_points + 1))
        queries[i, : count * _POINT_DIM] = rng.random(count * _POINT_DIM)
    return buffers, queries


def _sweep(metric, queries, vectors):
    return [metric.distance_batch(query, vectors) for query in queries]


def test_f13_emd_hausdorff(benchmark):
    histograms, histogram_queries = _histogram_dataset()
    buffers, buffer_queries = _point_set_dataset()

    cases = [
        ("emd", MatchDistance(), histograms, histogram_queries, 3.0),
        ("circular_emd", MatchDistance(circular=True), histograms, histogram_queries, 3.0),
        ("hausdorff", HausdorffDistance(point_dim=_POINT_DIM), buffers, buffer_queries, 2.0),
    ]

    rows = []
    report: dict[str, dict] = {}
    for name, metric, vectors, queries, required in cases:
        fallback = hide_batch_kernel(metric)
        scalar_sweeps, scalar_seconds = _timed(
            lambda: _sweep(fallback, queries, vectors)
        )
        kernel_sweeps, kernel_seconds = _timed(lambda: _sweep(metric, queries, vectors))
        for scalar_row, kernel_row in zip(scalar_sweeps, kernel_sweeps):
            assert np.array_equal(scalar_row, kernel_row)
        speedup = scalar_seconds / kernel_seconds
        rows.append(
            [
                name,
                _N_QUERIES * _N / scalar_seconds,
                _N_QUERIES * _N / kernel_seconds,
                speedup,
            ]
        )
        report[name] = {
            "rows_per_second_scalar": _N_QUERIES * _N / scalar_seconds,
            "rows_per_second_kernel": _N_QUERIES * _N / kernel_seconds,
            "kernel_speedup": speedup,
            "required_speedup": required,
        }

    print_experiment(
        ascii_table(
            ["metric", "rows/s scalar", "rows/s kernel", "kernel x"],
            rows,
            title=(
                f"F13: distance_batch sweeps, loop fallback vs kernel - "
                f"N={_N}, d={_DIM}, {_N_QUERIES} queries (identical floats)"
            ),
        )
    )

    # ------------------------------------------------------------------
    # Shared tree traversals over the freed metrics
    # ------------------------------------------------------------------
    ids = list(range(_N))
    emd = MatchDistance()
    radius = 0.35

    gnat = GNAT(emd, degree=8).build(ids, histograms)
    scalar_range, scalar_range_stats = [], []
    for query in histogram_queries:
        scalar_range.append(gnat.range_search(query, radius))
        scalar_range_stats.append(gnat.last_stats)
    scalar_knn = [gnat.knn_search(query, _K) for query in histogram_queries]

    # The scalar-era cost model: kernel hidden, per-query entry points.
    gnat_hidden = GNAT(hide_batch_kernel(emd), degree=8).build(ids, histograms)
    _, hidden_range_seconds = _timed(
        lambda: [gnat_hidden.range_search(q, radius) for q in histogram_queries]
    )
    batch_range, shared_range_seconds = _timed(
        lambda: gnat.range_search_batch(histogram_queries, radius)
    )
    assert batch_range == scalar_range
    assert gnat.last_batch_stats == scalar_range_stats
    batch_knn, _ = _timed(lambda: gnat.knn_search_batch(histogram_queries, _K))
    assert batch_knn == scalar_knn

    gnat_speedup = hidden_range_seconds / shared_range_seconds
    report["gnat_range_emd"] = {
        "qps_scalar_era": _N_QUERIES / hidden_range_seconds,
        "qps_shared_batch": _N_QUERIES / shared_range_seconds,
        "speedup": gnat_speedup,
        "range_distance_computations": sum(
            stats.distance_computations for stats in gnat.last_batch_stats
        ),
    }

    l2 = EuclideanDistance()
    kd = KDTree(l2).build(ids, histograms)
    kd_radius = 2.4
    kd_scalar_range, kd_scalar_stats = [], []
    for query in histogram_queries:
        kd_scalar_range.append(kd.range_search(query, kd_radius))
        kd_scalar_stats.append(kd.last_stats)
    kd_hidden = KDTree(hide_batch_kernel(l2)).build(ids, histograms)
    _, kd_hidden_seconds = _timed(
        lambda: [kd_hidden.range_search(q, kd_radius) for q in histogram_queries]
    )
    kd_batch_range, kd_shared_seconds = _timed(
        lambda: kd.range_search_batch(histogram_queries, kd_radius)
    )
    assert kd_batch_range == kd_scalar_range
    assert kd.last_batch_stats == kd_scalar_stats
    report["kdtree_range_l2"] = {
        "qps_scalar_era": _N_QUERIES / kd_hidden_seconds,
        "qps_shared_batch": _N_QUERIES / kd_shared_seconds,
        "speedup": kd_hidden_seconds / kd_shared_seconds,
    }

    print_experiment(
        ascii_table(
            ["path", "q/s scalar era", "q/s shared batch", "x"],
            [
                [
                    "gnat range (EMD)",
                    _N_QUERIES / hidden_range_seconds,
                    _N_QUERIES / shared_range_seconds,
                    gnat_speedup,
                ],
                [
                    "kdtree range (L2)",
                    _N_QUERIES / kd_hidden_seconds,
                    _N_QUERIES / kd_shared_seconds,
                    kd_hidden_seconds / kd_shared_seconds,
                ],
            ],
            title="F13: shared batched range traversals (identical results + counters)",
        )
    )

    if _FULL_SIZE:
        _JSON_PATH.write_text(
            json.dumps(
                {
                    "experiment": "f13_emd_hausdorff",
                    "n": _N,
                    "dim": _DIM,
                    "point_dim": _POINT_DIM,
                    "n_queries": _N_QUERIES,
                    "k": _K,
                    "paths": report,
                },
                indent=1,
            )
            + "\n"
        )
        # The headline acceptance numbers.
        assert report["emd"]["kernel_speedup"] >= 3.0
        assert report["hausdorff"]["kernel_speedup"] >= 2.0

    benchmark(lambda: _sweep(emd, histogram_queries, histograms))
