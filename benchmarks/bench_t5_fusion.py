"""T5 — Multi-feature fusion vs. single features.

Leave-one-out retrieval on the labelled corpus comparing:

* each single feature (color, texture, edges) alone,
* the weighted score combination at several weightings,
* Borda and reciprocal-rank fusion.

Expected shape: the best single feature is color (the corpus has color
classes), but it stumbles on the achromatic texture classes; fusion
covers both families and beats every single feature on mean
precision@5.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_experiment
from repro.db.query import borda_fuse, combine_feature_distances, reciprocal_rank_fuse
from repro.eval.groundtruth import RelevanceJudgments
from repro.eval.harness import ascii_table
from repro.eval.metrics import mean_precision_at_k
from repro.metrics.minkowski import EuclideanDistance

_COLOR = "hsv_hist_18x3x3"
_TEXTURE = "glcm_16l_4o_concat"
_EDGES = "edge_orient_18"
_K = 5
_POOL = 20


def _distance_table(matrix, metric):
    """query row -> {candidate row: distance}, excluding self."""
    n = matrix.shape[0]
    table = {}
    for i in range(n):
        distances = {}
        for j in range(n):
            if i != j:
                distances[j] = metric.distance(matrix[i], matrix[j])
        table[i] = distances
    return table


def test_t5_fusion_table(corpus_features, benchmark):
    ids, labels, matrices = corpus_features
    judgments = RelevanceJudgments.from_labels(ids, labels)
    metric = EuclideanDistance()

    features = {name: matrices[name] for name in (_COLOR, _TEXTURE, _EDGES)}
    distance_tables = {
        name: _distance_table(matrix, metric) for name, matrix in features.items()
    }

    def single_rankings(feature):
        rankings = {}
        for query in ids:
            ordered = sorted(distance_tables[feature][query].items(), key=lambda kv: kv[1])
            rankings[query] = [candidate for candidate, _ in ordered[:_POOL]]
        return rankings

    def weighted_rankings(weights):
        rankings = {}
        for query in ids:
            per_feature = {
                name: distance_tables[name][query] for name in weights
            }
            combined = combine_feature_distances(per_feature, weights)
            ordered = sorted(combined.items(), key=lambda kv: kv[1][0])
            rankings[query] = [candidate for candidate, _ in ordered[:_POOL]]
        return rankings

    def fused_rankings(fuse):
        per_feature_rankings = {name: single_rankings(name) for name in features}
        rankings = {}
        for query in ids:
            rankings[query] = fuse(
                [per_feature_rankings[name][query] for name in features], _POOL
            )
        return rankings

    strategies = {
        "color only": single_rankings(_COLOR),
        "texture only": single_rankings(_TEXTURE),
        "edges only": single_rankings(_EDGES),
        "weighted 1:1:1": weighted_rankings({_COLOR: 1.0, _TEXTURE: 1.0, _EDGES: 1.0}),
        "weighted 2:1:1": weighted_rankings({_COLOR: 2.0, _TEXTURE: 1.0, _EDGES: 1.0}),
        "weighted 4:1:1": weighted_rankings({_COLOR: 4.0, _TEXTURE: 1.0, _EDGES: 1.0}),
        "borda fusion": fused_rankings(borda_fuse),
        "rrf fusion": fused_rankings(reciprocal_rank_fuse),
    }

    rows = []
    scores = {}
    for name, rankings in strategies.items():
        p5 = mean_precision_at_k(rankings, judgments, _K)
        scores[name] = p5
        rows.append([name, p5])
    print_experiment(
        ascii_table(
            ["strategy", f"precision@{_K}"],
            rows,
            title="T5: multi-feature fusion vs single features (leave-one-out)",
        )
    )

    best_single = max(scores["color only"], scores["texture only"], scores["edges only"])
    best_fused = max(
        scores["weighted 1:1:1"],
        scores["weighted 2:1:1"],
        scores["weighted 4:1:1"],
        scores["borda fusion"],
        scores["rrf fusion"],
    )
    assert best_fused >= best_single  # fusion covers both class families

    weights = {_COLOR: 2.0, _TEXTURE: 1.0, _EDGES: 1.0}
    benchmark(lambda: weighted_rankings(weights))
