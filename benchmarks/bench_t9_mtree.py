"""T9 — M-tree page capacity and split-promotion ablation.

The M-tree is the only *dynamic* index in the roster, and the only one
whose pages model disk I/O directly.  This experiment sweeps page
capacity x promotion policy at N=2048 and reports, per configuration:
build cost (distance computations, splits), tree shape (pages, height),
and query cost (distance computations and page reads for k=10).

Expected shape: the informed promotions (mmrad, maxdist) buy fewer
query-time distance computations than random promotion at equal
capacity, at a higher build cost (mmrad is quadratic in page size at
each split); larger pages mean fewer page reads but more distances per
visited page — the classic B-tree-style fan-out tradeoff.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_experiment
from repro.eval.datasets import gaussian_clusters
from repro.eval.harness import ascii_table, run_knn_workload
from repro.index.mtree import MTree, PROMOTION_POLICIES
from repro.metrics.minkowski import EuclideanDistance

_N = 2048
_K = 10
_N_QUERIES = 20
_CAPACITIES = (4, 8, 16, 32)


def _data():
    vectors, _ = gaussian_clusters(_N, 16, n_clusters=16, cluster_std=0.04, seed=7)
    queries, _ = gaussian_clusters(
        _N_QUERIES, 16, n_clusters=16, cluster_std=0.04, seed=77
    )
    return vectors, queries


def test_t9_mtree_ablation_table(benchmark):
    vectors, queries = _data()
    ids = list(range(_N))

    rows = []
    query_cost = {}
    build_cost = {}
    for promotion in PROMOTION_POLICIES:
        for capacity in _CAPACITIES:
            tree = MTree(
                EuclideanDistance(), capacity=capacity, promotion=promotion
            ).build(ids, vectors)
            result = run_knn_workload(tree, queries, _K)
            pages_read = result.mean_nodes_visited + np.mean(
                [s.leaves_visited for s in result.stats]
            )
            query_cost[(promotion, capacity)] = result.mean_distance_computations
            build_cost[(promotion, capacity)] = tree.build_stats.distance_computations
            rows.append(
                [
                    promotion,
                    capacity,
                    tree.build_stats.distance_computations,
                    tree.n_pages,
                    tree.height,
                    tree.n_splits,
                    result.mean_distance_computations,
                    pages_read,
                ]
            )
    print_experiment(
        ascii_table(
            [
                "promotion",
                "capacity",
                "build dists",
                "pages",
                "height",
                "splits",
                "dists/query",
                "pages/query",
            ],
            rows,
            title=f"T9: M-tree ablation - N={_N}, 16-D clustered, k={_K}",
        )
    )

    # Shape checks: every configuration beats the scan; the informed
    # policy is no worse than random at the default capacity, and pays
    # for it with a costlier build.
    for key, cost in query_cost.items():
        assert cost < _N, key
    assert query_cost[("mmrad", 8)] <= 1.1 * query_cost[("random", 8)]
    assert build_cost[("mmrad", 8)] > build_cost[("random", 8)]

    tree = MTree(EuclideanDistance(), capacity=8).build(ids, vectors)
    benchmark(lambda: tree.knn_search(queries[0], _K))


@pytest.mark.parametrize("capacity", _CAPACITIES)
def test_t9_insert_throughput(benchmark, capacity):
    """Timed incremental insertion — the M-tree's unique capability.

    Each round starts from a fresh 1024-item tree and inserts a 64-item
    batch, so the timed work is pure insertion at a realistic tree size.
    """
    vectors, _ = _data()
    base_ids = list(range(1024))

    def fresh_tree():
        tree = MTree(EuclideanDistance(), capacity=capacity).build(
            base_ids, vectors[:1024]
        )
        return (tree,), {}

    def insert_batch(tree):
        for item in range(1024, 1024 + 64):
            tree.insert(item, vectors[item])

    benchmark.pedantic(insert_batch, setup=fresh_tree, rounds=5, iterations=1)
