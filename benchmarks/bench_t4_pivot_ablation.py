"""T4 — Pivot-selection ablation for the VP-tree.

Same data, same queries, three vantage-point selection strategies:
random, max-spread (two-sweep farthest point), and max-variance
(Yianilos' criterion over samples).  Reports build cost and mean query
cost.

Expected shape: the variance criterion (Yianilos) should prune at least
as well as random pivots, at a build-time premium.  A finding this
ablation surfaces on clustered data: the pure farthest-point heuristic
(max-spread) can *lose* to random pivots - its extreme-outlier pivots
see most of the data inside one thin distance shell, which splits
poorly.  Variance, not distance, is what makes a good vantage point.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_experiment
from repro.eval.datasets import gaussian_clusters
from repro.eval.harness import ascii_table, run_knn_workload
from repro.index.pivot import MaxSpreadPivot, MaxVariancePivot, RandomPivot
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance

_N = 2048
_K = 10
_N_QUERIES = 25

_STRATEGIES = {
    "random": RandomPivot,
    "max_spread": MaxSpreadPivot,
    "max_variance": MaxVariancePivot,
}


def test_t4_pivot_table(clustered_vectors, benchmark):
    vectors = clustered_vectors[:_N]
    ids = list(range(_N))
    queries, _ = gaussian_clusters(
        _N_QUERIES, vectors.shape[1], n_clusters=16, cluster_std=0.04, seed=79
    )

    rows = []
    query_cost = {}
    for name, strategy_cls in _STRATEGIES.items():
        # Average over several build seeds so random pivots get a fair trial.
        build_costs = []
        query_costs = []
        for seed in range(3):
            tree = VPTree(
                EuclideanDistance(), pivot_strategy=strategy_cls(), seed=seed
            ).build(ids, vectors)
            build_costs.append(tree.build_stats.distance_computations)
            result = run_knn_workload(tree, queries, _K)
            query_costs.append(result.mean_distance_computations)
        query_cost[name] = float(np.mean(query_costs))
        rows.append(
            [name, float(np.mean(build_costs)), query_cost[name], query_cost[name] / _N]
        )
    print_experiment(
        ascii_table(
            ["pivot strategy", "build dists", "mean query dists", "fraction of scan"],
            rows,
            title=f"T4: VP-tree pivot ablation (N={_N}, k={_K}, clustered, 3 seeds)",
        )
    )
    # Shape check: the variance criterion should not lose to random
    # pivots.  (max_spread legitimately can - see the module docstring.)
    assert query_cost["max_variance"] <= query_cost["random"] * 1.1

    tree = VPTree(EuclideanDistance(), pivot_strategy=MaxSpreadPivot()).build(ids, vectors)
    benchmark(lambda: tree.knn_search(queries[0], _K))


@pytest.mark.parametrize("name", list(_STRATEGIES), ids=list(_STRATEGIES))
def test_t4_build_time(benchmark, name, clustered_vectors):
    vectors = clustered_vectors[:512]
    ids = list(range(512))
    benchmark(
        lambda: VPTree(
            EuclideanDistance(), pivot_strategy=_STRATEGIES[name]()
        ).build(ids, vectors)
    )
