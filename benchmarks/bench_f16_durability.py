"""F16 — Durability: journaled mutation throughput and recovery replay.

PR 7 added crash-safe durability (``docs/durability.md``): every
acknowledged mutation is written to a per-shard write-ahead journal and
fsync'd *before* the future resolves, so a ``kill -9`` at any moment
loses nothing a client was told succeeded.  Durability is not free —
each mutation batch pays one group fsync — and this benchmark prices
it.

Two measurements:

``journaled vs journal-off throughput``
    The same closed-loop multi-writer mutation workload through
    :class:`QueryScheduler` with and without a journal.  Group commit
    (one fsync per formed batch, not per mutation) must keep the
    journaled path within **3x** of the in-memory-only path at full
    size.  The journaled run ends with a crash-recovery parity check:
    the state replayed from disk must match the live database
    bit for bit.
``replay time vs journal length``
    Recovery cost scales with the un-compacted journal suffix, not
    database size.  Measured by appending N single-row adds and timing
    :func:`recover`'s replay phase for increasing N.

Results go to ``benchmarks/BENCH_f16_durability.json`` for the perf
trajectory.  ``REPRO_BENCH_N`` shrinks the dataset for CI smoke runs
(the parity checks still bite; wall-clock assertions only apply at
full size).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_experiment
from repro.db.database import ImageDatabase
from repro.db.journal import JournalRecord, JournalSet
from repro.db.recovery import open_serving_root, recover
from repro.eval.harness import ascii_table
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.serve.scheduler import QueryScheduler

_N = int(os.environ.get("REPRO_BENCH_N", "2000"))
_FULL_SIZE = _N >= 2000
_DIM = 64
_WRITERS = 4
_ROUNDS = 24 if _FULL_SIZE else 3  # mutation round trips per writer
_BLOCK = 4  # rows per add
_REPLAY_LENGTHS = [64, 256, 1024] if _FULL_SIZE else [8, 16]

_JSON_PATH = Path(__file__).parent / "BENCH_f16_durability.json"


def _schema() -> FeatureSchema:
    return FeatureSchema([PresetSignature(_DIM, "signature")])


def _vectors(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).random((max(n, 1), _DIM))


def _seed_db() -> ImageDatabase:
    db = ImageDatabase(_schema())
    db.add_vectors(_vectors(_N, seed=42))
    return db


def _drive(db: ImageDatabase, journal_set: JournalSet | None) -> dict:
    """Closed-loop writers hammering the mutation path; returns rates."""
    scheduler = QueryScheduler(
        db,
        journal=journal_set,
        max_batch=16,
        max_wait_ms=2.0,
        max_queue=4096,
        cache_size=0,
    )
    blocks = [
        _vectors(_ROUNDS * _BLOCK, seed=100 + writer).reshape(
            _ROUNDS, _BLOCK, _DIM
        )
        for writer in range(_WRITERS)
    ]

    def writer(writer_id: int) -> None:
        for block in blocks[writer_id]:
            scheduler.submit_add(block).result()

    threads = [
        threading.Thread(target=writer, args=(i,)) for i in range(_WRITERS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    stats = scheduler.stats()
    scheduler.close()
    total = _WRITERS * _ROUNDS
    assert stats.mutations == total
    return {
        "mutations": total,
        "rows_added": total * _BLOCK,
        "elapsed_seconds": elapsed,
        "mutations_per_second": total / elapsed,
        "journal_records": stats.journal_records,
        "journal_syncs": stats.journal_syncs,
    }


def test_f16_durability(benchmark, tmp_path):
    # --------------------------------------------------------------
    # Journaled vs journal-off mutation throughput.
    # --------------------------------------------------------------
    root = tmp_path / "root"
    journaled_db, journal_set, _ = open_serving_root(root, _seed_db())
    journaled = _drive(journaled_db, journal_set)
    plain = _drive(_seed_db(), None)

    # Group commit must coalesce: strictly fewer fsyncs than records
    # whenever batches formed, and never more.
    assert journaled["journal_records"] == journaled["mutations"]
    assert 0 < journaled["journal_syncs"] <= journaled["journal_records"]
    group_factor = journaled["journal_records"] / journaled["journal_syncs"]
    slowdown = (
        plain["mutations_per_second"] / journaled["mutations_per_second"]
    )

    # Crash-recovery parity: everything the scheduler acknowledged is
    # on disk, bit for bit.
    recovered, report = recover(root, _schema())
    assert report.records_applied == journaled["journal_records"]
    assert set(recovered.catalog.ids) == set(journaled_db.catalog.ids)
    for image_id in journaled_db.catalog.ids:
        assert (
            recovered.vector_of("signature", image_id).tobytes()
            == journaled_db.vector_of("signature", image_id).tobytes()
        ), f"recovered vector diverged for id {image_id}"

    # --------------------------------------------------------------
    # Replay time vs journal length.
    # --------------------------------------------------------------
    replay_points = []
    for length in _REPLAY_LENGTHS:
        replay_root = tmp_path / f"replay-{length}"
        db, journals, _ = open_serving_root(replay_root, _seed_db())
        base = max(db.catalog.ids) + 1
        for step in range(length):
            row = _vectors(1, seed=7000 + step)
            db.add_vectors(row, ids=[base + step])
            seq = journals.next_seq()
            journals.append_records(
                {0: JournalRecord.add(seq, [base + step], {"signature": row}, None, None)}
            )
        journals.sync()
        journals.close()
        replayed, rep = recover(replay_root, _schema())
        assert rep.adds_applied == length
        assert len(replayed) == _N + length
        replay_points.append(
            {
                "records": length,
                "replay_seconds": rep.replay_s,
                "records_per_second": length / rep.replay_s
                if rep.replay_s > 0
                else float("inf"),
            }
        )

    rows_out = [
        [
            "journal off",
            f"{plain['mutations_per_second']:.0f} mut/s",
            "no fsync",
        ],
        [
            "journaled",
            f"{journaled['mutations_per_second']:.0f} mut/s",
            f"{journaled['journal_syncs']} fsyncs for "
            f"{journaled['journal_records']} records "
            f"(group factor x{group_factor:.1f})",
        ],
        ["durability cost", f"x{slowdown:.2f} slower", "bound: 3x at full size"],
    ] + [
        [
            f"replay {point['records']} records",
            f"{point['replay_seconds'] * 1e3:.1f} ms",
            f"{point['records_per_second']:.0f} rec/s",
        ]
        for point in replay_points
    ]
    print_experiment(
        ascii_table(
            ["measurement", "headline", "detail"],
            rows_out,
            title=(
                f"F16: durability - N={_N}, d={_DIM}, {_WRITERS} writers x "
                f"{_ROUNDS} mutations of {_BLOCK} rows "
                f"(recovered state bit-identical)"
            ),
        )
    )

    if _FULL_SIZE:
        _JSON_PATH.write_text(
            json.dumps(
                {
                    "experiment": "f16_durability",
                    "n": _N,
                    "dim": _DIM,
                    "writers": _WRITERS,
                    "rounds_per_writer": _ROUNDS,
                    "rows_per_mutation": _BLOCK,
                    "journaled": journaled,
                    "journal_off": plain,
                    "slowdown": slowdown,
                    "group_commit_factor": group_factor,
                    "replay": replay_points,
                },
                indent=1,
            )
            + "\n"
        )
        # Headline acceptance: group commit keeps the durable path
        # within 3x of in-memory-only mutation throughput.
        assert slowdown <= 3.0, f"journaling cost x{slowdown:.2f} exceeds 3x"

    # Representative op for pytest-benchmark: one durable group commit
    # (append + fsync) against a standing journal.
    bench_root = tmp_path / "bench-op"
    _db, bench_journals, _ = open_serving_root(bench_root, _seed_db())
    row = _vectors(1, seed=9999)
    counter = iter(range(10_000_000))

    def durable_append():
        step = next(counter)
        seq = bench_journals.next_seq()
        bench_journals.append_records(
            {0: JournalRecord.add(seq, [10_000_000 + step], {"signature": row}, None, None)},
            sync=True,
        )

    benchmark(durable_append)
    bench_journals.close()
