"""T8 — LAESA pivot-count ablation and tree-vs-table comparison.

LAESA's knob is the number of pivots ``m``: each query pays ``m``
mandatory pivot evaluations, and in exchange the per-object lower bound
tightens, eliminating more true-distance computations.

Expected shape: total query cost is U-shaped in m - too few pivots leave
the bound loose (many survivors), too many waste mandatory evaluations;
near the optimum LAESA is competitive with (often better than) the
trees, at O(n·m) extra memory - the trade the 1994 papers debated.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.datasets import gaussian_clusters
from repro.eval.harness import ascii_table, run_knn_workload
from repro.index.antipole import AntipoleTree
from repro.index.laesa import LAESAIndex
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance

_N = 2048
_K = 10
_N_QUERIES = 20
_PIVOT_COUNTS = (2, 4, 8, 16, 32, 64)


def test_t8_laesa_pivot_sweep(clustered_vectors, benchmark):
    vectors = clustered_vectors[:_N]
    ids = list(range(_N))
    queries, _ = gaussian_clusters(
        _N_QUERIES, vectors.shape[1], n_clusters=16, cluster_std=0.04, seed=82
    )
    metric = EuclideanDistance()

    rows = []
    costs = {}
    for m in _PIVOT_COUNTS:
        laesa = LAESAIndex(metric, n_pivots=m).build(ids, vectors)
        result = run_knn_workload(laesa, queries, _K)
        costs[m] = result.mean_distance_computations
        rows.append(
            [
                f"laesa m={m}",
                result.mean_distance_computations,
                m,
                result.mean_distance_computations - m,
                result.mean_distance_computations / _N,
            ]
        )

    for name, index in (
        ("vptree", VPTree(metric).build(ids, vectors)),
        ("antipole", AntipoleTree(metric).build(ids, vectors)),
    ):
        result = run_knn_workload(index, queries, _K)
        rows.append(
            [name, result.mean_distance_computations, "-", "-",
             result.mean_distance_computations / _N]
        )

    print_experiment(
        ascii_table(
            ["index", "mean dists/query", "pivot evals", "candidate evals",
             "fraction of scan"],
            rows,
            title=f"T8: LAESA pivot-count ablation vs trees (N={_N}, k={_K})",
        )
    )

    # Shape checks: candidate evaluations shrink monotonically with m;
    # the best m beats the scan by a wide margin.
    assert costs[64] - 64 < costs[2] - 2
    assert min(costs.values()) < 0.4 * _N

    laesa = LAESAIndex(metric, n_pivots=16).build(ids, vectors)
    benchmark(lambda: laesa.knn_search(queries[0], _K))
