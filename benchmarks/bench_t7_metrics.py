"""T7 — Similarity-measure comparison: retrieval quality and cost.

Every similarity measure from the paper's section 4 (and the QBIC
standards) is evaluated on the same HSV-histogram features:

* leave-one-out precision@5 against class ground truth,
* time per distance evaluation,
* whether the measure admits tree indexing (metric or not).

Expected shape: on L1-normalized histograms the ranking quality of L1,
intersection and match distance cluster together (intersection *is*
half-L1 there); chi-square and Bhattacharyya reweight rare bins and may
edge ahead; the quadratic form tolerates cross-bin color shifts; L2 and
L-infinity trail slightly.  Cost varies by an order of magnitude, which
is what made cheap measures attractive at scale.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.groundtruth import RelevanceJudgments
from repro.eval.harness import ascii_table
from repro.eval.metrics import mean_precision_at_k
from repro.index.linear import LinearScanIndex
from repro.metrics.emd import MatchDistance
from repro.metrics.histogram import (
    BhattacharyyaDistance,
    ChiSquareDistance,
    HistogramIntersection,
)
from repro.metrics.minkowski import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
)
from repro.metrics.quadratic import QuadraticFormDistance, color_similarity_matrix

_K = 5


def _metrics_under_test(dim: int):
    measures = {
        "L1": ManhattanDistance(),
        "L2 (paper eq.)": EuclideanDistance(),
        "L-infinity": ChebyshevDistance(),
        "intersection": HistogramIntersection(),
        "chi-square": ChiSquareDistance(),
        "bhattacharyya": BhattacharyyaDistance(),
        "match (1-D EMD)": MatchDistance(),
    }
    return measures


def test_t7_metric_comparison(corpus_features, benchmark):
    ids, labels, matrices = corpus_features
    judgments = RelevanceJudgments.from_labels(ids, labels)

    # HSV histograms for most measures; RGB histograms for the quadratic
    # form (its similarity matrix is defined over RGB bin centers).
    hsv = matrices["hsv_hist_18x3x3"]
    rgb = matrices["rgb_hist_4"]
    quadratic = QuadraticFormDistance(color_similarity_matrix(4))

    rows = []
    quality = {}
    for name, metric in list(_metrics_under_test(hsv.shape[1]).items()) + [
        ("quadratic (QBIC)", quadratic)
    ]:
        matrix = rgb if name.startswith("quadratic") else hsv
        index = LinearScanIndex(metric).build(ids, matrix)
        rankings = {}
        started = time.perf_counter()
        for row, query_id in enumerate(ids):
            neighbors = index.knn_search(matrix[row], _K + 1)
            rankings[query_id] = [n.id for n in neighbors if n.id != query_id][:_K]
        elapsed = time.perf_counter() - started
        n_dists = len(ids) * len(ids)
        p5 = mean_precision_at_k(rankings, judgments, _K)
        quality[name] = p5
        rows.append(
            [
                name,
                p5,
                elapsed / n_dists * 1e6,
                "yes" if metric.is_metric else "no (scan only)",
            ]
        )
    rows.sort(key=lambda r: -r[1])
    print_experiment(
        ascii_table(
            ["measure", f"precision@{_K}", "us / distance", "tree-indexable"],
            rows,
            title="T7: similarity measures on color histograms (leave-one-out)",
        )
    )

    # Shape checks.
    chance = 1.0 / 8.0
    for name, p5 in quality.items():
        assert p5 > chance, name
    # Intersection == half L1 on normalized histograms: identical rankings.
    assert quality["intersection"] == quality["L1"]

    metric = EuclideanDistance()
    benchmark(lambda: metric.distance(hsv[0], hsv[1]))
