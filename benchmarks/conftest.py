"""Shared fixtures for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one table/figure from DESIGN.md's
reconstructed evaluation.  Everything expensive (corpus generation,
feature extraction) is session-scoped and seeded, so the full suite is
deterministic and runs in minutes.

Every experiment prints its result table to stdout (run with ``-s`` or
check the captured output); pytest-benchmark additionally times one
representative operation per experiment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.datasets import make_corpus_images
from repro.features.correlogram import ColorAutoCorrelogram
from repro.features.edges import EdgeOrientationHistogram
from repro.features.histogram import HSVHistogram, RGBJointHistogram
from repro.features.moments import ColorMoments
from repro.features.pipeline import FeatureSchema
from repro.features.shape import ShapeHistogram
from repro.features.texture import GLCMFeatures
from repro.features.wavelet import WaveletSignature


def quality_schema() -> FeatureSchema:
    """The full extractor roster used by the quality experiments."""
    return FeatureSchema(
        [
            HSVHistogram((18, 3, 3), working_size=32),
            RGBJointHistogram(4, working_size=32),
            ColorMoments("rgb"),
            ColorAutoCorrelogram(3, (1, 3), working_size=32),
            GLCMFeatures(16, working_size=32),
            GLCMFeatures(16, aggregate="concat", working_size=32),
            WaveletSignature(3, working_size=32),
            EdgeOrientationHistogram(18, working_size=32),
            ShapeHistogram(16, working_size=32),
        ]
    )


@pytest.fixture(scope="session")
def corpus():
    """Labelled corpus: 8 classes x 8 images at 32x32."""
    images, labels = make_corpus_images(8, size=32, seed=100)
    return images, labels


@pytest.fixture(scope="session")
def corpus_features(corpus):
    """All quality-schema features of the corpus, extracted once.

    Returns ``(ids, labels, {feature_name: (n, d) matrix})``.
    """
    images, labels = corpus
    schema = quality_schema()
    matrices: dict[str, np.ndarray] = {}
    for extractor in schema:
        matrices[extractor.name] = np.array([extractor.extract(im) for im in images])
    return list(range(len(images))), labels, matrices


@pytest.fixture(scope="session")
def clustered_vectors():
    """Feature-like clustered vectors for the index experiments.

    16-dimensional, 16 Gaussian clusters - the structure real image
    signatures exhibit (low intrinsic dimensionality in a higher
    embedding dimension).
    """
    from repro.eval.datasets import gaussian_clusters

    vectors, _ = gaussian_clusters(4096, 16, n_clusters=16, cluster_std=0.04, seed=7)
    return vectors


def print_experiment(table: str) -> None:
    """Emit an experiment table, framed so it is easy to grep in CI logs."""
    print()
    print("=" * 72)
    print(table)
    print("=" * 72)
