"""F12 — Serving throughput: micro-batch coalescing vs per-request handling.

The serving layer exists to turn concurrent independent requests into
the large batches the vectorized engine is fast at, and to
short-circuit repeated queries through its LRU result cache.  This
experiment measures what that buys under a closed-loop load of 16
concurrent clients issuing k-NN requests drawn from a pool of popular
query signatures (each distinct query recurs ~8 times — the shape of
interactive retrieval traffic, where hot examples dominate):

``sequential``
    One-request-at-a-time handling (``max_batch=1``, cache off) — what
    a naive server would do with the same engine underneath.
``coalesced``
    Micro-batching on (``max_batch=16``), cache off: the pure
    batch-forming win (shared VP-tree traversals across the batch).
``service``
    The full service: coalescing + the LRU result cache.

Every configuration runs the identical workload through the identical
:class:`~repro.serve.scheduler.QueryScheduler` machinery, and every
served answer is checked bit-identical against direct
``ImageDatabase.query`` calls — the scheduler's parity contract.

Reproduction checks (full size): the full service clears **3x** the
sequential throughput at concurrency 16, and pure coalescing beats
sequential handling outright.  Results go to
``benchmarks/BENCH_f12_serve_throughput.json`` for the perf trajectory.

``REPRO_BENCH_N`` shrinks the dataset for CI smoke runs (the parity
checks still bite; wall-clock assertions only apply at full size).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_experiment
from repro.db.database import ImageDatabase
from repro.eval.harness import ascii_table
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.serve.scheduler import QueryScheduler

_N = int(os.environ.get("REPRO_BENCH_N", "2000"))
_FULL_SIZE = _N >= 2000
_DIM = 64
_K = 10
_CONCURRENCY = 16
_REQUESTS_PER_CLIENT = 40 if _FULL_SIZE else 4
_POOL_SIZE = max(8, (_CONCURRENCY * _REQUESTS_PER_CLIENT) // 8)

_JSON_PATH = Path(__file__).parent / "BENCH_f12_serve_throughput.json"

_CONFIGS = {
    "sequential": dict(max_batch=1, max_wait_ms=0.0, cache_size=0),
    "coalesced": dict(max_batch=_CONCURRENCY, max_wait_ms=4.0, cache_size=0),
    "service": dict(max_batch=_CONCURRENCY, max_wait_ms=4.0, cache_size=4096),
}


def _database() -> tuple[ImageDatabase, np.ndarray, np.ndarray]:
    from repro.eval.datasets import gaussian_clusters

    vectors, _ = gaussian_clusters(_N, _DIM, n_clusters=16, cluster_std=0.05, seed=42)
    pool, _ = gaussian_clusters(
        _POOL_SIZE, _DIM, n_clusters=16, cluster_std=0.05, seed=43
    )
    db = ImageDatabase(FeatureSchema([PresetSignature(_DIM, "signature")]))
    db.add_vectors(vectors)
    db.build_indexes()
    picks = np.random.default_rng(7).integers(
        0, _POOL_SIZE, size=(_CONCURRENCY, _REQUESTS_PER_CLIENT)
    )
    return db, pool, picks


def _drive(db: ImageDatabase, pool: np.ndarray, picks: np.ndarray, options: dict):
    """Run the closed-loop workload against one scheduler configuration."""
    scheduler = QueryScheduler(db, max_queue=4096, **options)
    responses: dict[tuple[int, int], list] = {}
    lock = threading.Lock()
    barrier = threading.Barrier(_CONCURRENCY + 1)

    def client(client_id: int) -> None:
        barrier.wait()
        for step, pick in enumerate(picks[client_id]):
            served = scheduler.submit_query(pool[pick], _K).result()
            with lock:
                responses[(client_id, step)] = served.results

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(_CONCURRENCY)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    stats = scheduler.stats()
    scheduler.close()

    total = _CONCURRENCY * _REQUESTS_PER_CLIENT
    assert len(responses) == total  # nothing dropped, nothing duplicated
    return responses, elapsed, stats


def test_f12_serve_throughput(benchmark):
    db, pool, picks = _database()

    # The parity oracle: every distinct pool query answered directly.
    direct = {pick: db.query(pool[pick], _K) for pick in range(_POOL_SIZE)}

    rows = []
    report: dict[str, dict] = {}
    for name, options in _CONFIGS.items():
        responses, elapsed, stats = _drive(db, pool, picks, options)
        # Bit-identical to direct queries — ids, distances, order.
        for (client_id, step), results in responses.items():
            assert results == direct[picks[client_id, step]], (
                f"{name}: served result diverged for client {client_id} "
                f"step {step}"
            )
        qps = stats.completed / elapsed
        rows.append(
            [
                name,
                stats.completed,
                elapsed,
                qps,
                stats.mean_batch_size,
                f"{stats.cache_hit_rate:.0%}",
                stats.latency_p50_ms,
                stats.latency_p95_ms,
            ]
        )
        report[name] = {
            "requests": stats.completed,
            "elapsed_seconds": elapsed,
            "qps": qps,
            "mean_batch_size": stats.mean_batch_size,
            "mean_group_size": stats.mean_group_size,
            "cache_hit_rate": stats.cache_hit_rate,
            "latency_p50_ms": stats.latency_p50_ms,
            "latency_p95_ms": stats.latency_p95_ms,
        }

    coalescing_speedup = report["coalesced"]["qps"] / report["sequential"]["qps"]
    service_speedup = report["service"]["qps"] / report["sequential"]["qps"]
    print_experiment(
        ascii_table(
            [
                "config",
                "requests",
                "seconds",
                "q/s",
                "mean batch",
                "hit rate",
                "p50 ms",
                "p95 ms",
            ],
            rows,
            title=(
                f"F12: serve throughput, {_CONCURRENCY} concurrent clients - "
                f"N={_N}, d={_DIM}, k={_K}, pool={_POOL_SIZE} "
                f"(coalescing x{coalescing_speedup:.2f}, "
                f"full service x{service_speedup:.2f}; identical results)"
            ),
        )
    )

    if _FULL_SIZE:
        # Tiny smoke runs (REPRO_BENCH_N) don't pollute the trajectory.
        _JSON_PATH.write_text(
            json.dumps(
                {
                    "experiment": "f12_serve_throughput",
                    "n": _N,
                    "dim": _DIM,
                    "k": _K,
                    "concurrency": _CONCURRENCY,
                    "requests": _CONCURRENCY * _REQUESTS_PER_CLIENT,
                    "pool_size": _POOL_SIZE,
                    "metric": "L2",
                    "index": "vptree",
                    "configs": report,
                    "coalescing_speedup": coalescing_speedup,
                    "service_speedup": service_speedup,
                },
                indent=1,
            )
            + "\n"
        )
        # Headline acceptance: the full service clears 3x one-at-a-time
        # handling, and batch forming alone already wins.
        assert service_speedup >= 3.0
        assert coalescing_speedup >= 1.1

    # Representative op for pytest-benchmark: one coalesced engine pass
    # over a full formed batch.
    matrix = pool[: min(_CONCURRENCY, _POOL_SIZE)]
    benchmark(lambda: db.query_batch(matrix, _K, precomputed=True))
