"""F6 — Buffer-pool hit ratio vs. capacity under a query workload.

The feature store keeps vectors in 64-record pages behind an LRU pool.
Vectors are bulk-loaded in **cluster order** (the layout a clustering
index naturally produces), so a k-NN query's neighbour set lands on few
pages.  Two workloads read vectors through the store:

* **uniform** - queries spread over all clusters,
* **skewed**  - 90% of queries hit 10% of the clusters (hot photos).

Expected shape: hit ratio rises with capacity and saturates once the
working set is resident; the skewed workload saturates at a far smaller
pool (its working set is a few hot pages), which is the argument for a
buffer pool in the first place.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_experiment
from repro.db.store import FeatureStore
from repro.eval.datasets import gaussian_clusters
from repro.eval.harness import ascii_table
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance

_N = 2048
_DIM = 16
_N_CLUSTERS = 16
_PAGE_RECORDS = 64
_CAPACITIES = (1, 2, 4, 8, 16, 32)
_N_QUERIES = 60
_HOT_CLUSTERS = 2  # the "10%" the skewed workload hammers


@pytest.fixture(scope="module")
def cluster_ordered():
    """Vectors sorted by cluster (slot order == page locality)."""
    vectors, labels = gaussian_clusters(
        _N, _DIM, n_clusters=_N_CLUSTERS, cluster_std=0.04, seed=7
    )
    order = np.argsort(labels, kind="stable")
    return vectors[order], labels[order]


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, cluster_ordered):
    vectors, _ = cluster_ordered
    path = tmp_path_factory.mktemp("f6") / "vectors.feat"
    with FeatureStore.create(path, dim=_DIM, page_records=_PAGE_RECORDS) as store:
        for vector in vectors:
            store.append(vector)
    return path


def _access_trace(cluster_ordered, skewed: bool, seed: int) -> list[int]:
    """Slot-access trace from a k-NN workload over the clustered data."""
    vectors, labels = cluster_ordered
    tree = VPTree(EuclideanDistance()).build(list(range(_N)), vectors)
    rng = np.random.default_rng(seed)
    hot = np.flatnonzero(labels < _HOT_CLUSTERS)
    trace: list[int] = []
    for _ in range(_N_QUERIES):
        if skewed and rng.random() < 0.9:
            anchor = vectors[int(rng.choice(hot))]
        else:
            anchor = vectors[int(rng.integers(_N))]
        query = anchor + rng.normal(0.0, 0.01, anchor.shape)
        for neighbor in tree.knn_search(query, 10):
            trace.append(neighbor.id)
    return trace


def test_f6_hit_ratio_table(store_path, cluster_ordered, benchmark):
    rows = []
    ratios = {}
    for workload in ("uniform", "skewed"):
        trace = _access_trace(cluster_ordered, workload == "skewed", seed=12)
        for capacity in _CAPACITIES:
            with FeatureStore.open(store_path, buffer_pages=capacity) as store:
                store.pool.reset_counters()
                for slot in trace:
                    store.get(slot)
                ratios[(workload, capacity)] = store.pool.hit_ratio()
                rows.append(
                    [
                        workload,
                        capacity,
                        len(trace),
                        store.pool.hits,
                        store.pool.misses,
                        store.pool.hit_ratio(),
                    ]
                )
    print_experiment(
        ascii_table(
            ["workload", "pool pages", "accesses", "hits", "page reads", "hit ratio"],
            rows,
            title=f"F6: LRU buffer pool vs capacity "
            f"({_N} records, {_PAGE_RECORDS}/page = {_N // _PAGE_RECORDS} pages, "
            f"cluster-ordered layout)",
        )
    )

    # Shape checks: monotone in capacity; skew shrinks the working set;
    # full residency saturates.
    for workload in ("uniform", "skewed"):
        assert ratios[(workload, 32)] >= ratios[(workload, 1)]
    assert ratios[("skewed", 4)] > ratios[("uniform", 4)] + 0.1
    assert ratios[("uniform", 32)] > 0.9  # everything resident after warmup
    assert ratios[("skewed", 4)] > 0.5    # hot working set fits in 4 pages

    trace = _access_trace(cluster_ordered, True, seed=12)

    def replay():
        with FeatureStore.open(store_path, buffer_pages=8) as store:
            for slot in trace[:200]:
                store.get(slot)

    benchmark(replay)
